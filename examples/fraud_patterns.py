"""Complex event processing with MATCH_RECOGNIZE (paper §6.1).

Section 6.1 singles out SQL:2016's MATCH_RECOGNIZE as the feature that,
"when combined with event time semantics, enables a new class of stream
processing use case, namely complex event processing and pattern
matching".  This example watches card transactions for a classic fraud
signature: a probe (a burst of small charges) followed by a large
charge — matched per card, over *event time*, robust to out-of-order
arrival.

Run with::

    python examples/fraud_patterns.py
"""

import random

from repro import (
    Schema,
    StreamEngine,
    TimeVaryingRelation,
    fmt_time,
    int_col,
    seconds,
    t,
    timestamp_col,
)

schema = Schema(
    [
        int_col("card"),
        timestamp_col("at", event_time=True),
        int_col("amount"),
    ]
)

rng = random.Random(7)
txns = TimeVaryingRelation(schema)
ptime = t("12:00")

# background traffic: ordinary charges on cards 1-5
events = []
for i in range(120):
    events.append((rng.randrange(1, 6), t("12:00") + i * seconds(30),
                   rng.randrange(20, 200)))
# the fraud signature on card 9: three probes then a big hit
events += [
    (9, t("12:10:00"), 1),
    (9, t("12:10:20"), 2),
    (9, t("12:10:40"), 1),
    (9, t("12:11:00"), 950),
]
# deliver out of order within a bounded 45-second skew, with a sound
# bounded-out-of-orderness watermark trailing the max seen event time
events.sort(key=lambda e: e[1] + rng.randrange(0, seconds(45)))
max_seen = 0
for card, at, amount in events:
    ptime += seconds(1)
    txns.insert(ptime, (card, at, amount))
    max_seen = max(max_seen, at)
    if rng.random() < 0.2:
        txns.advance_watermark(ptime, max_seen - seconds(46))
txns.advance_watermark(ptime + 1, max_seen + 1)

engine = StreamEngine()
engine.register_stream("Txn", txns)

FRAUD = """
SELECT *
FROM Txn MATCH_RECOGNIZE (
  PARTITION BY card
  ORDER BY at
  MEASURES
    FIRST(PROBE.at)   AS probe_start,
    COUNT(PROBE.amount) AS probes,
    HIT.amount        AS hit_amount,
    HIT.at            AS hit_at
  ONE ROW PER MATCH
  AFTER MATCH SKIP PAST LAST ROW
  PATTERN ( PROBE PROBE+ HIT )
  DEFINE
    PROBE AS amount < 5,
    HIT   AS amount > 500
)
"""

print("suspicious card activity (probe burst followed by a big charge):")
rel = engine.query(FRAUD).table()
for card, probe_start, probes, hit_amount, hit_at in rel.tuples:
    print(
        f"  card {card}: {probes} probes starting {fmt_time(probe_start)}, "
        f"then ${hit_amount} at {fmt_time(hit_at)}"
    )
assert len(rel) == 1 and rel.tuples[0][0] == 9
print("\n(the pattern matched despite out-of-order delivery — rows are")
print(" sequenced by event time as the watermark stabilizes them)")
