"""A real-time auction dashboard over generated NEXMark traffic.

Scenario from Section 3.3.2 of the paper: "for a real-time dashboard
viewed by a human operator, updates on the order of seconds are
probably sufficient".  We run a per-window hot-items aggregation over
5,000 generated auction events and compare the update volume a
dashboard consumer would see under the three materialization modes —
then render the final dashboard table.

Run with::

    python examples/auction_dashboard.py
"""

from repro import StreamEngine
from repro.nexmark import NexmarkConfig, generate

streams = generate(NexmarkConfig(num_events=5_000, seed=11))
engine = StreamEngine()
streams.register_on(engine)

DASHBOARD = """
SELECT TB.wend, TB.auction, COUNT(*) AS bids, MAX(TB.price) AS top
FROM Tumble(
  data    => TABLE(Bid),
  timecol => DESCRIPTOR(bidtime),
  dur     => INTERVAL '30' SECONDS) TB
GROUP BY TB.wend, TB.auction
"""

raw = engine.query(DASHBOARD + " EMIT STREAM").stream()
periodic = engine.query(
    DASHBOARD + " EMIT STREAM AFTER DELAY INTERVAL '5' SECONDS"
).stream()
final_only = engine.query(DASHBOARD + " EMIT STREAM AFTER WATERMARK").stream()

print("Updates pushed to the dashboard consumer per materialization mode:")
print(f"  instantaneous (EMIT STREAM):          {len(raw):>6} updates")
print(f"  periodic (AFTER DELAY '5' SECONDS):   {len(periodic):>6} updates")
print(f"  final-only (AFTER WATERMARK):         {len(final_only):>6} updates")
reduction = 100 * (1 - len(periodic) / len(raw))
print(f"  -> periodic delay removed {reduction:.0f}% of the update torrent\n")

print("Top-5 busiest (window, auction) cells on the finished dashboard:")
top = engine.query(
    DASHBOARD.replace("GROUP BY", "GROUP BY")  # same query, table rendering
    + " ORDER BY bids DESC LIMIT 5"
)
print(top.table().to_table())

result = engine.query(DASHBOARD).run()
print(f"\nlate events dropped (Extension 2): {result.late_dropped}")
print(f"peak operator state (rows):        {result.peak_state_rows}")
