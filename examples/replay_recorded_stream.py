"""Reprocessing a recorded stream with the query that ran live.

Appendix B lists this as adoption reason (4): "In case of faulty
application logic or service outages, a recorded data stream can be
reprocessed by the same query that processes the live data stream."
Because both a stream and its recording are time-varying relations,
the query text does not change — only the registration does.

Run with::

    python examples/replay_recorded_stream.py
"""

from repro import StreamEngine
from repro.core.times import seconds
from repro.nexmark import NexmarkConfig, generate
from repro.nexmark.queries import q7_highest_bid

streams = generate(NexmarkConfig(num_events=3_000, seed=23))
SQL = q7_highest_bid(window=seconds(15))

# live: unbounded streams with watermarks
live = StreamEngine()
streams.register_on(live)
live_result = live.query(SQL).table()

# replay: the recorded streams registered as bounded tables
replay = StreamEngine()
streams.register_recorded_on(replay)
replay_result = replay.query(SQL).table()

print(f"windows answered live:     {len(live_result)}")
print(f"windows answered on replay: {len(replay_result)}")
assert sorted(live_result.tuples) == sorted(replay_result.tuples)
print("replay reproduced the live results exactly — same SQL, same answer")

print("\nfirst rows of the replayed result:")
print(replay_result.sorted(["wstart"]).to_table().split("\n", 8)[0:1][0])
for line in replay_result.sorted(["wstart"]).to_table().splitlines()[:8]:
    print(line)
