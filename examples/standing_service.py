"""Two tenants share one live NEXMark feed through the standing-query
service.

The paper's queries are *standing*: they stay resident while their
inputs grow.  This example drives :class:`repro.service.
StandingQueryService` — the multi-tenant front door behind
``python -m repro serve`` — entirely in-process:

* **alice** runs a market-wide highest-bid-per-window query;
* **bob** (whose ACL only covers ``Bid``) runs per-auction bid counts,
  and is shown being turned away, with a structured error, when he
  strays to the ``Auction`` table;
* both subscribe to their query's changelog, the recorded NEXMark bids
  are replayed event by event as if arriving live, and each tenant's
  subscriber drains deltas at its own pace — including one consumer
  that never drains at all and is evicted under the slow-consumer
  policy;
* the final ``repro_service_*`` scrape summarizes what the service did.

The deltas each tenant sees are byte-identical to running their SQL
one-shot over the full recording — residency changes *when* answers
arrive, never *what* they are.

Run with::

    python examples/standing_service.py
"""

from repro import StreamEngine
from repro.core.tvr import TimeVaryingRelation
from repro.nexmark import NexmarkConfig, generate
from repro.service import AdmissionError, StandingQueryService, TenantPolicy

ALICE_SQL = """
    SELECT TB.wend, MAX(TB.price) AS highest
    FROM Tumble(
      data    => TABLE(Bid),
      timecol => DESCRIPTOR(bidtime),
      dur     => INTERVAL '15' SECONDS) TB
    GROUP BY TB.wend
    EMIT STREAM
"""

BOB_SQL = """
    SELECT TB.auction, TB.wend, COUNT(*) AS bids
    FROM Tumble(
      data    => TABLE(Bid),
      timecol => DESCRIPTOR(bidtime),
      dur     => INTERVAL '15' SECONDS) TB
    GROUP BY TB.auction, TB.wend
    EMIT STREAM
"""

# Record a NEXMark run; its Bid stream will be replayed live.
staging = StreamEngine()
generate(NexmarkConfig(num_events=1_500, seed=11)).register_on(staging)
recorded_bids = staging.source("Bid")
events = list(recorded_bids.events())

# One service, two provisioned tenants. alice is unrestricted; bob's
# ACL covers only the Bid table.
service = StandingQueryService(
    policies={
        "alice": TenantPolicy(name="alice"),
        "bob": TenantPolicy(name="bob", allowed_tables=frozenset({"bid"})),
    },
)
service.register_stream("Bid", TimeVaryingRelation(recorded_bids.schema))
service.register_stream(
    "Auction", TimeVaryingRelation(staging.source("Auction").schema)
)

alice_q = service.submit("alice", ALICE_SQL)
bob_q = service.submit("bob", BOB_SQL)
print(f"admitted {alice_q.query_id} (alice) and {bob_q.query_id} (bob)")

# The ACL gate rejects before any planning happens, with a stable code.
try:
    service.submit("bob", "SELECT * FROM Auction")
except AdmissionError as exc:
    print(f"rejected bob's auction query [{exc.code}]: {exc.detail}")

alice_sub = service.subscribe(alice_q.query_id, "alice-dashboard")
# bob polls rarely, so his buffer must cover the bursts between polls.
bob_sub = service.subscribe(bob_q.query_id, "bob-alerts", capacity=10_000)
# A consumer that never drains: the slow-consumer policy evicts it
# rather than letting it hold the query's memory hostage.
laggard = service.subscribe(bob_q.query_id, "bob-old-phone", capacity=16)

# Replay the recording as a live feed. bob's dashboard polls rarely
# (every 200 events); alice drains after every event — both see the
# same gap-free sequence, just on their own schedules.
alice_deltas, bob_deltas = [], []
for n, event in enumerate(events, start=1):
    service.ingest(event, "Bid")
    alice_deltas.extend(alice_sub.take())
    if n % 200 == 0:
        bob_deltas.extend(bob_sub.take())
bob_deltas.extend(bob_sub.take())

print(
    f"\nreplayed {len(events)} bid events: alice saw "
    f"{len(alice_deltas)} deltas, bob saw {len(bob_deltas)}"
)
assert laggard.evicted
print("bob's old phone never drained and was evicted at 16 buffered deltas")
print("\nalice's last three window results:")
for delta in [d for d in alice_deltas if d.change.is_insert][-3:]:
    print(f"  seq {delta.seq}: {delta.change}")

# Residency never changes the answer: the deltas equal the one-shot run.
oracle = StreamEngine()
oracle.register_stream("Bid", recorded_bids)
for sql, deltas, who in [
    (ALICE_SQL, alice_deltas, "alice"),
    (BOB_SQL, bob_deltas, "bob"),
]:
    expected = oracle.query(sql).run().changes
    assert [d.change for d in deltas] == expected, who
print("\nboth delta streams are byte-identical to the one-shot runs")

print("\nservice scrape (excerpt):")
for line in service.scrape().splitlines():
    if line.startswith("repro_service_") and not line.endswith(" 0"):
        print(f"  {line}")
