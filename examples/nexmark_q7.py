"""The paper's Section 4 walkthrough, end to end.

Reproduces every listing of "One SQL to Rule Them All" that involves
NEXMark Query 7 — the CQL baseline (Listing 1), the proposed SQL
(Listing 2), the table views (Listings 3-4), and all materialization
controls (Listings 9-14) — on the exact example dataset of the paper.

Run with::

    python examples/nexmark_q7.py
"""

from repro import StreamEngine, fmt_time
from repro.nexmark import paper_bid_stream
from repro.nexmark.queries import q7_cql, q7_paper

engine = StreamEngine()
engine.register_stream("Bid", paper_bid_stream())


def show(title, renderable):
    print(f"\n=== {title} ===")
    print(renderable.to_table())


# Listing 1: the CQL formulation, on the CQL baseline engine.
print("=== Listing 1: CQL Rstream output ===")
for tick, values in q7_cql(paper_bid_stream()):
    print(f"  at {fmt_time(tick)}: price=${values[1]} item={values[2]}")

# Listing 2 parses into a plan you can inspect:
print("\n=== Listing 2: optimized plan ===")
print(engine.explain(q7_paper()))

# Listings 3-4: point-in-time table views.
q7 = engine.query(q7_paper())
show("Listing 3: table @ 8:21", q7.table(at="8:21").sorted(["wstart"]))
show("Listing 4: table @ 8:13", q7.table(at="8:13").sorted(["wstart"]))

# Listing 9: the full changelog with undo/ptime/ver metadata.
show(
    "Listing 9: EMIT STREAM",
    engine.query(q7_paper(emit="EMIT STREAM")).stream_table(until="8:21"),
)

# Listings 10-12: completeness-delayed table views.
after_wm = engine.query(q7_paper(emit="EMIT AFTER WATERMARK"))
show("Listing 10: EMIT AFTER WATERMARK @ 8:13", after_wm.table(at="8:13"))
show("Listing 11: EMIT AFTER WATERMARK @ 8:16", after_wm.table(at="8:16"))
show(
    "Listing 12: EMIT AFTER WATERMARK @ 8:21",
    after_wm.table(at="8:21").sorted(["wstart"]),
)

# Listing 13: the notification-style stream (matches CQL's output).
show(
    "Listing 13: EMIT STREAM AFTER WATERMARK",
    engine.query(q7_paper(emit="EMIT STREAM AFTER WATERMARK")).stream_table(
        until="8:21"
    ),
)

# Listing 14: periodic materialization.
show(
    "Listing 14: EMIT STREAM AFTER DELAY '6' MINUTES",
    engine.query(
        q7_paper(emit="EMIT STREAM AFTER DELAY INTERVAL '6' MINUTES")
    ).stream_table(until="8:21"),
)
