"""Crash and recover mid-stream with consistent checkpoints.

Appendix B.2.1 of the paper describes Flink's model: periodically
checkpoint all operator state; on failure, restart and initialize every
operator from the last completed checkpoint.  This example runs NEXMark
Q7 over a live stream, checkpoints every 500 events, kills the dataflow
at a random point, recovers from the last checkpoint, replays the
events since, and verifies the final answer matches an uninterrupted
run exactly.

Run with::

    python examples/fault_tolerance.py
"""

import random

from repro import StreamEngine
from repro.core.times import seconds
from repro.nexmark import NexmarkConfig, generate
from repro.nexmark.queries import q7_highest_bid

streams = generate(NexmarkConfig(num_events=3_000, seed=5))
engine = StreamEngine()
streams.register_on(engine)
SQL = q7_highest_bid(seconds(15))

# merge all source events the way the executor would
events = []
for idx, name in enumerate(["Person", "Auction", "Bid"]):
    for i, event in enumerate(engine.source(name).events()):
        events.append((event.ptime, idx, i, event, name))
events.sort(key=lambda item: (item[0], item[1], item[2]))

query = engine.query(SQL)
reference = query.run()

rng = random.Random(99)
crash_at = rng.randrange(len(events) // 4, len(events))
print(f"{len(events)} events; simulated crash after event {crash_at}")

flow = query.dataflow()
last_checkpoint = None
checkpointed_at = 0
for n, (_, _, _, event, name) in enumerate(events[:crash_at]):
    flow.process(event, name)
    if (n + 1) % 500 == 0:
        last_checkpoint = flow.checkpoint()
        checkpointed_at = n + 1
print(
    f"crash! last checkpoint covered {checkpointed_at} events "
    f"({len(last_checkpoint or b'')} bytes)"
)
del flow

recovered = query.dataflow()
if last_checkpoint is not None:
    recovered.restore(last_checkpoint)
for _, _, _, event, name in events[checkpointed_at:]:
    recovered.process(event, name)
result = recovered.finish()

assert result.changes == reference.changes
assert result.watermarks.as_pairs() == reference.watermarks.as_pairs()
print(
    f"recovered run produced {len(result.changes)} changelog entries — "
    "identical to the uninterrupted run"
)
print(f"final windows answered: {len(result.snapshot())}")
