"""Quickstart: one SQL for tables and streams.

Builds a tiny bid stream with out-of-order event times and watermarks,
then runs the *same* query three ways:

1. as a classic point-in-time table,
2. as a changelog stream (EMIT STREAM),
3. as a completeness-delayed stream (EMIT STREAM AFTER WATERMARK).

Run with::

    python examples/quickstart.py
"""

from repro import (
    Schema,
    StreamEngine,
    TimeVaryingRelation,
    int_col,
    string_col,
    t,
    timestamp_col,
)

# -- 1. define a stream: a time-varying relation with watermarks --------

schema = Schema(
    [
        timestamp_col("bidtime", event_time=True),  # Extension 1
        int_col("price"),
        string_col("item"),
    ]
)

bid = TimeVaryingRelation(schema)
bid.advance_watermark(t("8:07"), t("8:05"))     # WM -> 8:05
bid.insert(t("8:08"), (t("8:07"), 2, "A"))      # arrives at 8:08
bid.insert(t("8:12"), (t("8:11"), 3, "B"))
bid.insert(t("8:13"), (t("8:05"), 4, "C"))      # out of order!
bid.advance_watermark(t("8:14"), t("8:08"))
bid.insert(t("8:15"), (t("8:09"), 5, "D"))
bid.advance_watermark(t("8:16"), t("8:12"))
bid.insert(t("8:18"), (t("8:17"), 6, "F"))
bid.advance_watermark(t("8:21"), t("8:20"))

engine = StreamEngine()
engine.register_stream("Bid", bid)

# -- 2. a windowed aggregation over event time ---------------------------

SQL = """
SELECT TB.wstart, TB.wend, MAX(TB.price) AS maxPrice, COUNT(*) AS bids
FROM Tumble(
  data    => TABLE(Bid),
  timecol => DESCRIPTOR(bidtime),
  dur     => INTERVAL '10' MINUTES) TB
GROUP BY TB.wend
"""

print("== table view at 8:21 (classic SQL semantics) ==")
print(engine.query(SQL).table(at="8:21").sorted(["wend"]).to_table())

print("\n== table view at 8:13 (same query, earlier instant) ==")
print(engine.query(SQL).table(at="8:13").sorted(["wend"]).to_table())

# -- 3. the same relation, rendered as a stream --------------------------

print("\n== EMIT STREAM: the changelog of the same relation ==")
print(engine.query(SQL + " EMIT STREAM").stream_table().to_table())

print("\n== EMIT STREAM AFTER WATERMARK: one final answer per window ==")
print(
    engine.query(SQL + " EMIT STREAM AFTER WATERMARK").stream_table().to_table()
)
