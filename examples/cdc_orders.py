"""Change-data-capture input: a TVR that retracts and updates.

Streams are not always append-only: a CDC feed from an operational
database carries INSERTs *and* DELETEs — precisely the changelog
encoding of a time-varying relation (Section 3.3.1).  Because every
operator here is retraction-correct, the same SQL works unchanged: the
revenue aggregate below tracks order updates and cancellations, and the
EMIT STREAM rendering shows the bookkeeping.

Run with::

    python examples/cdc_orders.py
"""

from repro import (
    Schema,
    StreamEngine,
    TimeVaryingRelation,
    fmt_time,
    int_col,
    string_col,
    t,
    timestamp_col,
)

orders = TimeVaryingRelation(
    Schema(
        [
            int_col("id"),
            string_col("status"),
            int_col("amount"),
            timestamp_col("placed", event_time=True),
        ]
    )
)

# a CDC tail: inserts, an update (delete+insert), and a cancellation
orders.insert(t("9:00"), (1, "open", 100, t("9:00")))
orders.insert(t("9:01"), (2, "open", 250, t("9:01")))
orders.retract(t("9:05"), (1, "open", 100, t("9:00")))      # update:
orders.insert(t("9:05"), (1, "open", 120, t("9:00")))       #   100 -> 120
orders.insert(t("9:06"), (3, "open", 80, t("9:06")))
orders.retract(t("9:10"), (2, "open", 250, t("9:01")))      # cancelled
orders.advance_watermark(t("9:30"), t("9:29"))

engine = StreamEngine()
engine.register_stream("Orders", orders)

REVENUE = "SELECT COUNT(*) AS open_orders, SUM(amount) AS revenue FROM Orders"

print("== revenue over time (the aggregate follows the CDC feed) ==")
query = engine.query(REVENUE)
for at in ("9:02", "9:05", "9:10"):
    (count, revenue), = query.table(at=at).tuples
    print(f"  at {at}: {count} open orders, ${revenue} expected revenue")

print("\n== the changelog the dashboard consumer would see ==")
for change in engine.query(REVENUE + " EMIT STREAM").stream():
    marker = "undo " if change.undo else "     "
    print(f"  [{fmt_time(change.ptime)}] {marker}{change.values}")

# updates/cancellations flow through joins and windows identically
BIG = (
    "SELECT id, amount FROM Orders "
    "WHERE amount = (SELECT MAX(amount) FROM Orders)"
)
print("\n== largest open order (tracks updates and cancellations) ==")
for change in engine.query(BIG + " EMIT STREAM").stream():
    marker = "undo " if change.undo else "     "
    print(f"  [{fmt_time(change.ptime)}] {marker}order {change.values}")

final = engine.query(BIG).table()
assert final.tuples == [(1, 120)]
print("\nfinal largest order:", final.tuples[0])
