"""Notification pipelines: completeness-driven streams + session windows.

Two use cases the paper calls out:

* **Auction-close notifications** (Section 3.2.2's motivating example):
  notify exactly once per window, when the watermark proves all bids
  are in — ``EMIT STREAM AFTER WATERMARK``.  Polling an eventually
  consistent table cannot express this.
* **Session summaries** (Section 8's custom-windowing future work,
  implemented here): one notification per burst of bidder activity,
  using the Session windowing TVF.

Run with::

    python examples/notifications.py
"""

from repro import (
    Schema,
    StreamEngine,
    TimeVaryingRelation,
    fmt_time,
    int_col,
    t,
    timestamp_col,
)

schema = Schema(
    [
        timestamp_col("bidtime", event_time=True),
        int_col("bidder"),
        int_col("price"),
    ]
)

bid = TimeVaryingRelation(schema)
# bidder 1 bids in a quick burst; bidder 2 in two separate sessions
bid.insert(t("9:00"), (t("9:00"), 1, 10))
bid.insert(t("9:01"), (t("9:01"), 1, 12))
bid.insert(t("9:02"), (t("9:02"), 2, 7))
bid.advance_watermark(t("9:05"), t("9:03"))
bid.insert(t("9:08"), (t("9:07"), 1, 15))
bid.insert(t("9:20"), (t("9:19"), 2, 9))
bid.advance_watermark(t("9:30"), t("9:29"))

engine = StreamEngine()
engine.register_stream("Bid", bid)

# -- auction-close notifications ----------------------------------------

CLOSE = """
SELECT TB.wend, MAX(TB.price) AS winning
FROM Tumble(
  data    => TABLE(Bid),
  timecol => DESCRIPTOR(bidtime),
  dur     => INTERVAL '10' MINUTES) TB
GROUP BY TB.wend
EMIT STREAM AFTER WATERMARK
"""

print("== auction-close notifications (one per complete window) ==")
for change in engine.query(CLOSE).stream():
    wend, winning = change.values
    print(
        f"  [{fmt_time(change.ptime)}] window ending {fmt_time(wend)} "
        f"closed; winning bid ${winning}"
    )

# -- per-bidder session summaries ----------------------------------------

SESSIONS = """
SELECT SB.wstart, SB.wend, SB.bidder, COUNT(*) AS bids, MAX(SB.price) AS best
FROM Session(
  data    => TABLE(Bid),
  timecol => DESCRIPTOR(bidtime),
  gap     => INTERVAL '5' MINUTES,
  keycol  => DESCRIPTOR(bidder)) SB
GROUP BY SB.wend, SB.bidder
EMIT STREAM AFTER WATERMARK
"""

print("\n== per-bidder activity sessions (5-minute inactivity gap) ==")
for change in engine.query(SESSIONS).stream():
    wstart, wend, bidder, bids, best = change.values
    print(
        f"  [{fmt_time(change.ptime)}] bidder {bidder} active "
        f"{fmt_time(wstart)}-{fmt_time(wend)}: {bids} bids, best ${best}"
    )
