"""CI telemetry smoke check: one NEXMark query, both exporters, validated.

Runs the per-auction tumbling-window bid count over a generated NEXMark
workload with the Prometheus and JSON-lines exporters attached, then:

* parses the exposition text with :func:`repro.obs.export.parse_exposition`
  (the dependency-free validator) and asserts the stable counter, gauge,
  and histogram families are present with samples;
* re-reads the JSONL event log and asserts every line round-trips to a
  :class:`~repro.obs.TraceEvent`;
* writes both artifacts (``TELEMETRY_smoke.prom``,
  ``TELEMETRY_events.jsonl``) for CI to upload.

With ``--fault-plan`` the run goes through the supervised recovery path:
the plan is injected into every shard worker, workers restart from
checkpoints, and the check additionally asserts that restarts actually
fired (``repro_recovery_shard_restarts_total > 0``) and that the JSONL
log carries the ``"recovery"`` trace events annotating them.

Runs under plain pytest and as a script::

    PYTHONPATH=src python benchmarks/telemetry_smoke.py
    PYTHONPATH=src python benchmarks/telemetry_smoke.py \\
        --fault-plan crash-after-checkpoint
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro import ExecutionConfig, RetryPolicy, StreamEngine
from repro.obs.export import (
    JsonLinesExporter,
    PrometheusExporter,
    parse_exposition,
    read_events,
)
from repro.nexmark import NexmarkConfig, generate

NUM_EVENTS = 2_000
SHARDS = 4

SQL = """
    SELECT TB.auction, TB.wend, COUNT(*) AS bids
    FROM Tumble(
      data    => TABLE(Bid),
      timecol => DESCRIPTOR(bidtime),
      dur     => INTERVAL '10' SECONDS) TB
    GROUP BY TB.auction, TB.wend
"""

ROOT = Path(__file__).resolve().parents[1]
PROM_ARTIFACT = ROOT / "TELEMETRY_smoke.prom"
JSONL_ARTIFACT = ROOT / "TELEMETRY_events.jsonl"

# The stable families the smoke check insists on; a rename here must be
# deliberate and documented in docs/OBSERVABILITY.md.
REQUIRED_FAMILIES = {
    "repro_operator_rows_in_total": "counter",
    "repro_operator_rows_out_total": "counter",
    "repro_operator_wm_advances_total": "counter",
    "repro_operator_state_rows": "gauge",
    "repro_emit_latency_ms": "histogram",
    "repro_root_watermark_lag_ms": "histogram",
}

# Additionally required when the run executes under a fault plan.
RECOVERY_FAMILIES = {
    "repro_recovery_shard_restarts_total": "counter",
    "repro_recovery_rows_replayed_total": "counter",
    "repro_recovery_dedup_drops_total": "counter",
    "repro_recovery_wm_regressions_total": "counter",
}


class _Tee:
    """Fan one run's callbacks out to several exporters."""

    def __init__(self, *exporters):
        self.exporters = exporters

    def on_event(self, event):
        for exporter in self.exporters:
            exporter.on_event(event)

    def export(self, result):
        for exporter in self.exporters:
            exporter.export(result)

    def close(self):
        for exporter in self.exporters:
            exporter.close()


def run_smoke(fault_plan: str | None = None) -> dict:
    """Execute the query with both exporters; return the validated pieces."""
    prom = PrometheusExporter(str(PROM_ARTIFACT))
    jsonl = JsonLinesExporter(str(JSONL_ARTIFACT))
    config = ExecutionConfig(
        parallelism=SHARDS,
        backend="threads",
        telemetry=_Tee(prom, jsonl),
        retry=RetryPolicy(max_restarts=4, checkpoint_interval=50),
        fault_plan=fault_plan,
    )
    engine = StreamEngine(config=config)
    generate(NexmarkConfig(num_events=NUM_EVENTS, seed=42)).register_on(engine)
    result = engine.query(SQL).run()
    engine.telemetry.close()

    required = dict(REQUIRED_FAMILIES)
    if fault_plan is not None:
        required.update(RECOVERY_FAMILIES)
    families = parse_exposition(PROM_ARTIFACT.read_text())
    for name, kind in required.items():
        if name not in families:
            raise AssertionError(f"exposition is missing family {name}")
        if families[name]["type"] != kind:
            raise AssertionError(
                f"{name} should be a {kind}, got {families[name]['type']}"
            )
        if not families[name]["samples"]:
            raise AssertionError(f"family {name} has no samples")

    lines = [
        line for line in JSONL_ARTIFACT.read_text().splitlines() if line.strip()
    ]
    for line in lines:
        json.loads(line)  # every line is one valid JSON object
    events = read_events(str(JSONL_ARTIFACT))
    if len(events) != len(lines):
        raise AssertionError("JSONL log did not round-trip event for event")
    if not any(event.kind == "batch" for event in events):
        raise AssertionError("JSONL log has no batch events")

    if fault_plan is not None:
        recovery = result.metrics.recovery
        if recovery is None or recovery.shard_restarts < 1:
            raise AssertionError(
                f"fault plan {fault_plan!r} produced no shard restarts — "
                "the injected faults never fired"
            )
        recoveries = [event for event in events if event.kind == "recovery"]
        if len(recoveries) < recovery.shard_restarts:
            raise AssertionError(
                "JSONL log is missing recovery events: "
                f"{len(recoveries)} logged vs {recovery.shard_restarts} restarts"
            )
        # The faulted run must still produce the fault-free answer.
        baseline_engine = StreamEngine(
            config=ExecutionConfig(parallelism=1, backend="sync")
        )
        generate(NexmarkConfig(num_events=NUM_EVENTS, seed=42)).register_on(
            baseline_engine
        )
        baseline = baseline_engine.query(SQL).run()
        if result.changes != baseline.changes:
            raise AssertionError(
                "recovered output diverged from the fault-free serial run"
            )

    return {"result": result, "families": families, "events": events}


def test_telemetry_smoke():
    """The smoke check is also a test: both artifacts validate and land."""
    pieces = run_smoke()
    assert pieces["result"].metrics.telemetry.emit_latency.count > 0
    assert PROM_ARTIFACT.exists() and PROM_ARTIFACT.stat().st_size > 0
    assert JSONL_ARTIFACT.exists() and JSONL_ARTIFACT.stat().st_size > 0


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fault-plan", default=None, metavar="PLAN",
        help="run under a deterministic fault plan (e.g. "
             "'crash-after-checkpoint') and assert recovery happened",
    )
    args = parser.parse_args(argv)
    pieces = run_smoke(args.fault_plan)
    telemetry = pieces["result"].metrics.telemetry
    print(
        f"ok: {len(pieces['families'])} metric families, "
        f"{len(pieces['events'])} trace events, "
        f"emit-latency n={telemetry.emit_latency.count}"
    )
    recovery = pieces["result"].metrics.recovery
    if args.fault_plan is not None and recovery is not None:
        print(
            f"recovery: {recovery.shard_restarts} restart(s), "
            f"{recovery.rows_replayed} rows replayed, "
            f"{recovery.dedup_drops} dedup drops"
        )
    print(f"wrote {PROM_ARTIFACT}")
    print(f"wrote {JSONL_ARTIFACT}")


if __name__ == "__main__":
    main()
