"""Ablation: what each optimizer capability buys on NEXMark Q7.

The optimized plan evaluates Q7's join with hash keys and watermark-
driven state expiry; the unoptimized plan runs the same query as a
cross join + filter with unbounded state.  Same results, very different
state and time — quantifying the Section 5 lesson that "some operations
only work (efficiently) on watermarked event time attributes".
"""

import pytest

from repro import StreamEngine
from repro.core.times import seconds
from repro.exec.executor import Dataflow
from repro.nexmark import NexmarkConfig, generate
from repro.nexmark.queries import q7_highest_bid
from repro.plan.optimizer import optimize
from repro.plan.planner import Planner

SQL = q7_highest_bid(seconds(10))
N = 2_000


@pytest.fixture(scope="module")
def engine():
    streams = generate(NexmarkConfig(num_events=N, seed=31))
    eng = StreamEngine()
    streams.register_on(eng)
    return eng


def run(engine, optimized: bool):
    planner = Planner(engine._catalog, engine.functions)
    plan = planner.plan_sql(SQL)
    if optimized:
        plan = optimize(plan)
    dataflow = Dataflow(plan, engine._sources)
    dataflow.run()
    return dataflow


def test_q7_optimized(benchmark, engine):
    dataflow = benchmark(lambda: run(engine, optimized=True))
    assert dataflow.result().peak_state_rows < N


def test_q7_unoptimized(benchmark, engine):
    dataflow = benchmark(lambda: run(engine, optimized=False))
    assert dataflow.result().snapshot()


def test_ablation_same_results_less_state(benchmark, engine):
    def compare():
        fast = run(engine, optimized=True)
        slow = run(engine, optimized=False)
        return fast, slow

    fast, slow = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert sorted(fast.result().snapshot().tuples) == sorted(
        slow.result().snapshot().tuples
    )
    # expiry + hash keys: the optimized join retains a fraction of the
    # unoptimized plan's state
    assert fast.result().peak_state_rows < slow.result().peak_state_rows / 2
