"""Listing 9: EMIT STREAM — the changelog rendering with undo/ptime/ver."""

from conftest import fresh_paper_engine, stream_row

from repro.nexmark.queries import q7_paper


def test_listing09_emit_stream(benchmark):
    engine = fresh_paper_engine()
    query = engine.query(q7_paper(emit="EMIT STREAM"))
    query.run()

    out = benchmark(lambda: query.stream(until="8:21"))

    assert [c.as_tuple() for c in out] == [
        stream_row("8:00", "8:10", "8:07", 2, "A", "", "8:08", 0),
        stream_row("8:10", "8:20", "8:11", 3, "B", "", "8:12", 0),
        stream_row("8:00", "8:10", "8:07", 2, "A", "undo", "8:13", 1),
        stream_row("8:00", "8:10", "8:05", 4, "C", "", "8:13", 2),
        stream_row("8:00", "8:10", "8:05", 4, "C", "undo", "8:15", 3),
        stream_row("8:00", "8:10", "8:09", 5, "D", "", "8:15", 4),
        stream_row("8:10", "8:20", "8:11", 3, "B", "undo", "8:18", 1),
        stream_row("8:10", "8:20", "8:17", 6, "F", "", "8:18", 2),
    ]
