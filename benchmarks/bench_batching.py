"""Micro-batching benchmark: columnar throughput sweep and compaction.

Sweeps ``batch_size`` x ``columnar`` x ``coalesce_updates`` over four
NEXMark-shaped workloads on a *bursty* generated stream
(``events_per_instant=64``, so same-instant runs actually exist for the
scheduler to batch) and writes ``BENCH_batching.json`` — the artifact
CI uploads:

* **tumble** — tumbling-window MAX grouped by window end: one running
  extreme per window, the shape where columnar batches amortize best.
  This workload carries the headline throughput gate.
* **tumble_churn** — the same window with ``COUNT(*)``: every bid in a
  burst retracts and re-emits the running count, so the changelog is
  churn-dominated.  It carries the coalescing gate (compaction must
  remove >= 30% of propagated changes) and pins byte-identity on the
  worst-case retraction pattern.
* **q3** — NEXMark Q3, an incremental two-stream join;
* **q7** — NEXMark Q7, whose plan scans ``Bid`` twice; its multi-leaf
  source is deliberately *excluded* from batching by the scheduler, so
  it benchmarks the fallback path and proves it stays correct.

Every default-mode run (``coalesce_updates=False``) — serial or
sharded, columnar on or off, codegen on or off, two-phase or
single-phase, plan-shared or not — is asserted change-for-change
identical to the ``batch_size=1`` row-at-a-time baseline: the batching
invariant of ``docs/RUNTIME.md`` sections 7 and 9.  Coalesced runs are
asserted snapshot-equivalent at every distinct processing instant,
with the churn they removed reported as ``changes_coalesced``.

``batch_size=0`` in the sweep is shorthand for *per-instant* batching
(no size cap: one batch per same-instant run), spelled
``PER_INSTANT_BATCH`` at the execution layer.

The generator's watermark cadence is widened to ``WATERMARK_INTERVAL``
events: a watermark must break a scheduler run (the input watermark
may not move inside a batch), so the default cadence of 20 would cap
every effective batch at ~18 bids no matter what ``batch_size`` says.
192 leaves three full 64-event bursts between watermarks — batching is
measured at the sizes the sweep names, while still exercising hundreds
of watermark advances per run.

Runs under plain pytest (no pytest-benchmark fixtures) and as a
script::

    PYTHONPATH=src python benchmarks/bench_batching.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import ExecutionConfig, StreamEngine
from repro.exec import codegen
from repro.nexmark import NexmarkConfig, generate
from repro.nexmark.queries import Q3_LOCAL_ITEM_SUGGESTION, q7_highest_bid
from repro.service import StandingQueryService

NUM_EVENTS = 5_000
EVENTS_PER_INSTANT = 64
WATERMARK_INTERVAL = 192
SEED = 42

#: sweep values; 0 means "per-instant" (no cap on the same-instant run).
BATCH_SWEEP = [1, 16, 64, 256, 0]
PER_INSTANT_BATCH = 1 << 30

#: the headline gate: columnar batch=64 vs row-at-a-time batch=1.
GATE_BATCH = 64
GATE_SPEEDUP = 5.0
GATE_RETRIES = 2

TUMBLE_SQL = """
    SELECT TB.wend, MAX(TB.price) AS high
    FROM Tumble(
      data    => TABLE(Bid),
      timecol => DESCRIPTOR(bidtime),
      dur     => INTERVAL '10' SECONDS) TB
    GROUP BY TB.wend
"""

TUMBLE_CHURN_SQL = """
    SELECT TB.wend, COUNT(*) AS bids
    FROM Tumble(
      data    => TABLE(Bid),
      timecol => DESCRIPTOR(bidtime),
      dur     => INTERVAL '10' SECONDS) TB
    GROUP BY TB.wend
"""

WORKLOADS = {
    "tumble": TUMBLE_SQL,
    "tumble_churn": TUMBLE_CHURN_SQL,
    "q3": Q3_LOCAL_ITEM_SUGGESTION,
    "q7": q7_highest_bid(),
}

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_batching.json"
SCHEMA_VERSION = 4


def _streams():
    return generate(
        NexmarkConfig(
            num_events=NUM_EVENTS,
            seed=SEED,
            events_per_instant=EVENTS_PER_INSTANT,
            watermark_interval=WATERMARK_INTERVAL,
        )
    )


def _engine(streams, **config) -> StreamEngine:
    engine = StreamEngine(config=ExecutionConfig(**config))
    streams.register_on(engine)
    return engine


def _run(
    streams,
    sql: str,
    batch_size: int,
    coalesce: bool,
    columnar: str = "off",
    use_codegen: bool = True,
) -> tuple:
    """One serial configuration; returns (record, RunResult)."""
    effective = batch_size if batch_size >= 1 else PER_INSTANT_BATCH
    engine = _engine(
        streams,
        batch_size=effective,
        coalesce_updates=coalesce,
        columnar=columnar,
    )
    was_enabled = codegen.ENABLED
    codegen.ENABLED = use_codegen
    try:
        flow = engine.query(sql).dataflow()
    finally:
        codegen.ENABLED = was_enabled
    start = time.perf_counter()
    result = flow.run()
    elapsed = time.perf_counter() - start
    totals = result.metrics.totals
    record = {
        "batch_size": batch_size or "per-instant",
        "coalesce_updates": coalesce,
        "columnar": columnar,
        "codegen": use_codegen,
        "backend": "serial",
        "seconds": elapsed,
        "events_per_second": NUM_EVENTS / elapsed,
        "root_changes": len(result.changes),
        "rows_out": totals["rows_out"],
        "retracts_out": totals["retracts_out"],
        "changes_coalesced": totals["changes_coalesced"],
    }
    return record, result


def _run_sharded(
    streams, sql: str, batch_size: int, columnar: str, two_phase: str
) -> tuple:
    """Sharded default-mode run (None when the plan is not partitionable)."""
    engine = _engine(
        streams,
        parallelism=4,
        backend="threads",
        batch_size=batch_size,
        columnar=columnar,
        two_phase=two_phase,
    )
    query = engine.query(sql)
    if not query.partition_decision().partitionable:
        return None, None
    start = time.perf_counter()
    result = query.run()
    elapsed = time.perf_counter() - start
    record = {
        "batch_size": batch_size,
        "coalesce_updates": False,
        "columnar": columnar,
        "codegen": True,
        "backend": "threads(4)",
        "two_phase": two_phase,
        "seconds": elapsed,
        "events_per_second": NUM_EVENTS / elapsed,
        "root_changes": len(result.changes),
    }
    return record, result


def _assert_identical(baseline, result, label: str) -> None:
    assert result.changes == baseline.changes, f"{label}: changelog diverged"
    assert result.watermarks.as_pairs() == baseline.watermarks.as_pairs(), (
        f"{label}: watermark track diverged"
    )


def _assert_snapshot_equivalent(baseline, result, label: str) -> None:
    instants = sorted(
        {c.ptime for c in baseline.changes} | {c.ptime for c in result.changes}
    )
    for at in instants:
        assert baseline.snapshot(at) == result.snapshot(at), (
            f"{label}: snapshot diverged at ptime {at}"
        )


def _mqo_deltas(streams, share_plans: bool, **config) -> list:
    """Run the tumble workload as a standing query; return its deltas."""
    from repro.core.tvr import TimeVaryingRelation

    service = StandingQueryService(
        config=ExecutionConfig(share_plans=share_plans, **config)
    )
    # register an *empty* stream with the generated schema, then replay
    # the recording through the live ingest path (the registered TVR
    # records what the service ingests, so it must start empty).
    service.register_stream("Bid", TimeVaryingRelation(streams.bids.schema))
    query = service.submit("bench", TUMBLE_SQL)
    for event in streams.bids.events():
        service.ingest(event, "Bid")
    return query.flow.output_slice_of(query.output_id, 0)


def _check_mqo(streams) -> dict:
    """Plan-shared columnar service vs unshared row service: same deltas."""
    shared = _mqo_deltas(
        streams, share_plans=True, batch_size=GATE_BATCH, columnar="on"
    )
    unshared = _mqo_deltas(streams, share_plans=False, columnar="off")
    assert shared == unshared, "mqo: shared columnar deltas diverged"
    return {
        "workload": "tumble",
        "deltas": len(shared),
        "identical": True,
    }


def collect() -> dict:
    streams = _streams()
    workloads = []
    for name, sql in WORKLOADS.items():
        baseline = None
        runs = []
        for batch_size in BATCH_SWEEP:
            modes = [("off", False), ("off", True)]
            if batch_size != 1:
                # columnar is a no-op at batch_size=1 (single events
                # take the row path); sweep it where batches exist.
                modes.insert(1, ("on", False))
            for columnar, coalesce in modes:
                record, result = _run(
                    streams, sql, batch_size, coalesce, columnar=columnar
                )
                label = (
                    f"{name} batch={record['batch_size']} "
                    f"columnar={columnar} coalesce={coalesce}"
                )
                if baseline is None:
                    baseline = result  # batch=1, columnar=off, no coalesce
                elif not coalesce:
                    _assert_identical(baseline, result, label)
                else:
                    _assert_snapshot_equivalent(baseline, result, label)
                runs.append(record)
        # codegen-off arm: the interpreted pipeline path must match too.
        record, result = _run(
            streams, sql, GATE_BATCH, False, columnar="on", use_codegen=False
        )
        _assert_identical(baseline, result, f"{name} codegen=off")
        runs.append(record)
        for two_phase in ("auto", "on"):
            sharded, sharded_result = _run_sharded(
                streams, sql, GATE_BATCH, columnar="on", two_phase=two_phase
            )
            if sharded is None:
                break  # not partitionable; "on" would not be either
            _assert_identical(
                baseline, sharded_result, f"{name} sharded two_phase={two_phase}"
            )
            runs.append(sharded)
        workloads.append(
            {
                "name": name,
                "query": " ".join(sql.split()),
                "events": NUM_EVENTS,
                "seed": SEED,
                "events_per_instant": EVENTS_PER_INSTANT,
                "watermark_interval": WATERMARK_INTERVAL,
                "runs": runs,
            }
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "workloads": workloads,
        "mqo": _check_mqo(streams),
    }


def write_artifact(payload: dict) -> Path:
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return ARTIFACT


def _find(workload: dict, batch_size, coalesce: bool, columnar: str) -> dict:
    for run in workload["runs"]:
        if (
            run["batch_size"] == batch_size
            and run["coalesce_updates"] is coalesce
            and run["columnar"] == columnar
            and run["backend"] == "serial"
        ):
            return run
    raise AssertionError(
        f"missing run batch={batch_size} coalesce={coalesce} "
        f"columnar={columnar}"
    )


def test_batching_bench_produces_artifact():
    """The bench is also the regression gate: columnar batching must
    actually pay (>= 5x events/s on the tumble workload at batch 64,
    columnar on, vs the batch=1 row baseline), coalescing must actually
    shrink the changelog (>= 30% fewer propagated changes on the churn
    workload), and the artifact must land on disk for CI to upload.
    The change-for-change and snapshot equivalence checks already ran
    inside :func:`collect`."""
    payload = collect()
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["mqo"]["identical"]
    tumble = payload["workloads"][0]
    assert tumble["name"] == "tumble"

    serial = _find(tumble, 1, False, "off")
    batched = _find(tumble, GATE_BATCH, False, "on")
    # The gate pair shares the machine with every other sweep point; on
    # a miss, re-measure both arms (best-of accumulates across
    # attempts) before declaring a regression.
    streams = _streams()
    for _ in range(GATE_RETRIES):
        speedup = batched["events_per_second"] / serial["events_per_second"]
        if speedup >= GATE_SPEEDUP:
            break
        refreshed_serial, _res = _run(streams, TUMBLE_SQL, 1, False)
        if refreshed_serial["seconds"] < serial["seconds"]:
            serial.update(refreshed_serial)  # in place: artifact sees it
        refreshed_batched, _res = _run(
            streams, TUMBLE_SQL, GATE_BATCH, False, columnar="on"
        )
        if refreshed_batched["seconds"] < batched["seconds"]:
            batched.update(refreshed_batched)
    speedup = batched["events_per_second"] / serial["events_per_second"]
    assert speedup >= GATE_SPEEDUP, (
        f"columnar batch={GATE_BATCH} speedup only {speedup:.2f}x"
    )

    churn = payload["workloads"][1]
    assert churn["name"] == "tumble_churn"
    churn_serial = _find(churn, 1, False, "off")
    coalesced = _find(churn, GATE_BATCH, True, "off")
    before = churn_serial["rows_out"] + churn_serial["retracts_out"]
    after = coalesced["rows_out"] + coalesced["retracts_out"]
    reduction = 1 - after / before
    assert coalesced["changes_coalesced"] > 0
    assert reduction >= 0.30, f"coalesce reduction only {reduction:.1%}"

    path = write_artifact(payload)
    assert path.exists() and path.stat().st_size > 0


if __name__ == "__main__":
    data = collect()
    path = write_artifact(data)
    for workload in data["workloads"]:
        print(f"== {workload['name']}")
        for run in workload["runs"]:
            extras = "" if run["codegen"] else "  codegen=off"
            if run.get("two_phase") == "on":
                extras += "  two_phase=on"
            print(
                f"  batch={run['batch_size']!s:>11} "
                f"columnar={run['columnar']:<4} "
                f"coalesce={str(run['coalesce_updates']):<5} "
                f"({run['backend']:>10}): {run['seconds']:.3f}s  "
                f"{run['events_per_second']:>9,.0f} ev/s  "
                f"changes={run['root_changes']}{extras}"
            )
    mqo = data["mqo"]
    print(f"== mqo  shared-plan deltas={mqo['deltas']} identical={mqo['identical']}")
    print(f"wrote {path}")
