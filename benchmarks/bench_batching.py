"""Micro-batching benchmark: throughput sweep and compaction savings.

Sweeps ``batch_size`` x ``coalesce_updates`` over three NEXMark-shaped
workloads on a *bursty* generated stream (``events_per_instant=64``,
so same-instant runs actually exist for the scheduler to batch) and
writes ``BENCH_batching.json`` — the artifact CI uploads:

* **tumble** — tumbling-window count grouped by window end only, the
  single-hot-group shape where intra-instant insert/retract churn is
  maximal (every bid in a burst updates the same running count);
* **q3** — NEXMark Q3, an incremental two-stream join;
* **q7** — NEXMark Q7, whose plan scans ``Bid`` twice; its multi-leaf
  source is deliberately *excluded* from batching by the scheduler, so
  it benchmarks the fallback path and proves it stays correct.

Every default-mode run (``coalesce_updates=False``) is asserted
change-for-change identical to the ``batch_size=1`` baseline — the
batching invariant of ``docs/RUNTIME.md`` section 7 — including a
sharded (N=4, threads) run per partitionable workload.  Coalesced runs
are asserted snapshot-equivalent at every distinct processing instant,
with the churn they removed reported as ``changes_coalesced``.

``batch_size=0`` in the sweep is shorthand for *per-instant* batching
(no size cap: one batch per same-instant run), spelled
``PER_INSTANT_BATCH`` at the execution layer.

Runs under plain pytest (no pytest-benchmark fixtures) and as a
script::

    PYTHONPATH=src python benchmarks/bench_batching.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import ExecutionConfig, StreamEngine
from repro.nexmark import NexmarkConfig, generate
from repro.nexmark.queries import Q3_LOCAL_ITEM_SUGGESTION, q7_highest_bid

NUM_EVENTS = 5_000
EVENTS_PER_INSTANT = 64
SEED = 42

#: sweep values; 0 means "per-instant" (no cap on the same-instant run).
BATCH_SWEEP = [1, 16, 64, 256, 0]
PER_INSTANT_BATCH = 1 << 30

TUMBLE_SQL = """
    SELECT TB.wend, COUNT(*) AS bids
    FROM Tumble(
      data    => TABLE(Bid),
      timecol => DESCRIPTOR(bidtime),
      dur     => INTERVAL '10' SECONDS) TB
    GROUP BY TB.wend
"""

WORKLOADS = {
    "tumble": TUMBLE_SQL,
    "q3": Q3_LOCAL_ITEM_SUGGESTION,
    "q7": q7_highest_bid(),
}

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_batching.json"
SCHEMA_VERSION = 1


def _streams():
    return generate(
        NexmarkConfig(
            num_events=NUM_EVENTS,
            seed=SEED,
            events_per_instant=EVENTS_PER_INSTANT,
        )
    )


def _engine(streams, **config) -> StreamEngine:
    engine = StreamEngine(config=ExecutionConfig(**config))
    streams.register_on(engine)
    return engine


def _run(streams, sql: str, batch_size: int, coalesce: bool) -> tuple:
    """One serial configuration; returns (record, RunResult)."""
    effective = batch_size if batch_size >= 1 else PER_INSTANT_BATCH
    engine = _engine(
        streams, batch_size=effective, coalesce_updates=coalesce
    )
    flow = engine.query(sql).dataflow()
    start = time.perf_counter()
    result = flow.run()
    elapsed = time.perf_counter() - start
    totals = result.metrics.totals
    record = {
        "batch_size": batch_size or "per-instant",
        "coalesce_updates": coalesce,
        "backend": "serial",
        "seconds": elapsed,
        "events_per_second": NUM_EVENTS / elapsed,
        "root_changes": len(result.changes),
        "rows_out": totals["rows_out"],
        "retracts_out": totals["retracts_out"],
        "changes_coalesced": totals["changes_coalesced"],
    }
    return record, result


def _run_sharded(streams, sql: str, batch_size: int) -> tuple:
    """Sharded default-mode run (None when the plan is not partitionable)."""
    engine = _engine(
        streams, parallelism=4, backend="threads", batch_size=batch_size
    )
    query = engine.query(sql)
    if not query.partition_decision().partitionable:
        return None, None
    start = time.perf_counter()
    result = query.run()
    elapsed = time.perf_counter() - start
    record = {
        "batch_size": batch_size,
        "coalesce_updates": False,
        "backend": "threads(4)",
        "seconds": elapsed,
        "events_per_second": NUM_EVENTS / elapsed,
        "root_changes": len(result.changes),
    }
    return record, result


def _assert_identical(baseline, result, label: str) -> None:
    assert result.changes == baseline.changes, f"{label}: changelog diverged"
    assert result.watermarks.as_pairs() == baseline.watermarks.as_pairs(), (
        f"{label}: watermark track diverged"
    )


def _assert_snapshot_equivalent(baseline, result, label: str) -> None:
    instants = sorted(
        {c.ptime for c in baseline.changes} | {c.ptime for c in result.changes}
    )
    for at in instants:
        assert baseline.snapshot(at) == result.snapshot(at), (
            f"{label}: snapshot diverged at ptime {at}"
        )


def collect() -> dict:
    streams = _streams()
    workloads = []
    for name, sql in WORKLOADS.items():
        baseline = None
        runs = []
        for batch_size in BATCH_SWEEP:
            for coalesce in (False, True):
                record, result = _run(streams, sql, batch_size, coalesce)
                label = f"{name} batch={record['batch_size']} coalesce={coalesce}"
                if baseline is None:
                    baseline = result  # batch_size=1, coalesce=False
                elif not coalesce:
                    _assert_identical(baseline, result, label)
                else:
                    _assert_snapshot_equivalent(baseline, result, label)
                runs.append(record)
        sharded, sharded_result = _run_sharded(streams, sql, batch_size=64)
        if sharded is not None:
            _assert_identical(baseline, sharded_result, f"{name} sharded")
            runs.append(sharded)
        workloads.append(
            {
                "name": name,
                "query": " ".join(sql.split()),
                "events": NUM_EVENTS,
                "seed": SEED,
                "events_per_instant": EVENTS_PER_INSTANT,
                "runs": runs,
            }
        )
    return {"schema_version": SCHEMA_VERSION, "workloads": workloads}


def write_artifact(payload: dict) -> Path:
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return ARTIFACT


def _find(workload: dict, batch_size, coalesce: bool) -> dict:
    for run in workload["runs"]:
        if (
            run["batch_size"] == batch_size
            and run["coalesce_updates"] is coalesce
            and run["backend"] == "serial"
        ):
            return run
    raise AssertionError(f"missing run batch={batch_size} coalesce={coalesce}")


def test_batching_bench_produces_artifact():
    """The bench is also the regression gate: batching must actually
    pay (>= 2x events/s on the tumble workload at batch 64), coalescing
    must actually shrink the changelog (>= 30% fewer propagated changes
    on tumble), and the artifact must land on disk for CI to upload.
    The change-for-change and snapshot equivalence checks already ran
    inside :func:`collect`."""
    payload = collect()
    assert payload["schema_version"] == SCHEMA_VERSION
    tumble = payload["workloads"][0]
    assert tumble["name"] == "tumble"

    serial = _find(tumble, 1, False)
    batched = _find(tumble, 64, False)
    speedup = batched["events_per_second"] / serial["events_per_second"]
    assert speedup >= 2.0, f"batch=64 speedup only {speedup:.2f}x"

    coalesced = _find(tumble, 64, True)
    before = serial["rows_out"] + serial["retracts_out"]
    after = coalesced["rows_out"] + coalesced["retracts_out"]
    reduction = 1 - after / before
    assert coalesced["changes_coalesced"] > 0
    assert reduction >= 0.30, f"coalesce reduction only {reduction:.1%}"

    path = write_artifact(payload)
    assert path.exists() and path.stat().st_size > 0


if __name__ == "__main__":
    data = collect()
    path = write_artifact(data)
    for workload in data["workloads"]:
        print(f"== {workload['name']}")
        for run in workload["runs"]:
            print(
                f"  batch={run['batch_size']!s:>11} "
                f"coalesce={str(run['coalesce_updates']):<5} "
                f"({run['backend']:>10}): {run['seconds']:.3f}s  "
                f"{run['events_per_second']:>9,.0f} ev/s  "
                f"changes={run['root_changes']}"
            )
    print(f"wrote {path}")
