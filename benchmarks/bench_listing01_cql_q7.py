"""Listing 1: NEXMark Query 7 in CQL, on the CQL baseline engine.

Regenerates the CQL formulation's output on the Section 4 dataset: one
top bid per complete ten-minute window, emitted at the window boundary
by ``Rstream``.
"""

from repro.core.times import t
from repro.cql import CqlStream, parse_cql
from repro.nexmark import paper_bid_stream
from repro.nexmark.queries import q7_cql

LISTING_1 = """
SELECT
  Rstream(B.price, B.item)
FROM
  Bid [RANGE 10 MINUTE SLIDE 10 MINUTE] B
WHERE
  B.price =
  (SELECT MAX(B1.price) FROM Bid
   [RANGE 10 MINUTE SLIDE 10 MINUTE] B1);
"""


def test_listing01_cql_q7(benchmark):
    bid = paper_bid_stream()

    out = benchmark(lambda: list(q7_cql(bid)))

    assert [(ts, values[1], values[2]) for ts, values in out] == [
        (t("8:10"), 5, "D"),
        (t("8:20"), 6, "F"),
    ]


def test_listing01_verbatim_cql_text(benchmark):
    """The paper's exact CQL text, parsed and executed."""
    stream = CqlStream.from_tvr(
        paper_bid_stream(), "bidtime", keep_time_column=True
    )

    out = benchmark(
        lambda: list(parse_cql(LISTING_1).evaluate({"bid": stream}))
    )

    assert out == [(t("8:10"), (5, "D")), (t("8:20"), (6, "F"))]
