"""NEXMark query suite throughput on the streaming engine.

One benchmark per NEXMark query, executing the full dataflow over a
5,000-event generated workload.  Q4 and Q6 run over recorded tables
(their groupings carry no event-time key; Extension 2 forbids them on
unbounded inputs), every other query runs in streaming mode.
"""

import pytest

from repro import StreamEngine
from repro.core.times import seconds
from repro.exec.executor import Dataflow
from repro.nexmark.queries import (
    Q0_PASSTHROUGH,
    Q1_CURRENCY,
    Q3_LOCAL_ITEM_SUGGESTION,
    Q4_AVERAGE_PRICE_FOR_CATEGORY,
    Q6_AVERAGE_SELLING_PRICE_BY_SELLER,
    q2_selection,
    q5_hot_items,
    q7_highest_bid,
    q8_monitor_new_users,
    register_udfs,
)


def run_dataflow(engine, sql):
    plan = engine.query(sql).plan
    dataflow = Dataflow(plan, engine._sources)
    return dataflow.run()


def test_q0_passthrough(benchmark, nexmark_engine, nexmark):
    result = benchmark(lambda: run_dataflow(nexmark_engine, Q0_PASSTHROUGH))
    assert len(result.changes) == len(nexmark.bids.changelog)


def test_q1_currency_conversion(benchmark, nexmark_engine, nexmark):
    result = benchmark(lambda: run_dataflow(nexmark_engine, Q1_CURRENCY))
    assert len(result.changes) == len(nexmark.bids.changelog)


def test_q2_selection(benchmark, nexmark_engine):
    result = benchmark(lambda: run_dataflow(nexmark_engine, q2_selection(5)))
    assert all(c.values[0] % 5 == 0 for c in result.changes)


def test_q3_local_item_suggestion(benchmark, nexmark_engine):
    result = benchmark(
        lambda: run_dataflow(nexmark_engine, Q3_LOCAL_ITEM_SUGGESTION)
    )
    assert all(c.values[2] in ("OR", "ID", "CA") for c in result.changes)


def test_q5_hot_items(benchmark, nexmark_engine):
    result = benchmark(
        lambda: run_dataflow(nexmark_engine, q5_hot_items(seconds(20), seconds(10)))
    )
    assert result.snapshot()


def test_q7_highest_bid(benchmark, nexmark_engine):
    result = benchmark(
        lambda: run_dataflow(nexmark_engine, q7_highest_bid(seconds(10)))
    )
    rel = result.snapshot()
    assert len(rel) > 0
    for wstart, wend, bidtime, price, auction in rel.tuples:
        assert wstart <= bidtime < wend


def test_q8_monitor_new_users(benchmark, nexmark_engine):
    result = benchmark(
        lambda: run_dataflow(nexmark_engine, q8_monitor_new_users(seconds(30)))
    )
    assert result.snapshot() is not None


@pytest.fixture(scope="module")
def recorded_engine(nexmark):
    engine = StreamEngine()
    nexmark.register_recorded_on(engine)
    register_udfs(engine)
    return engine


def test_q4_average_price_for_category(benchmark, recorded_engine):
    result = benchmark(
        lambda: run_dataflow(recorded_engine, Q4_AVERAGE_PRICE_FOR_CATEGORY)
    )
    rel = result.snapshot()
    assert 0 < len(rel) <= 10


def test_q6_average_selling_price_by_seller(benchmark, recorded_engine):
    result = benchmark(
        lambda: run_dataflow(recorded_engine, Q6_AVERAGE_SELLING_PRICE_BY_SELLER)
    )
    assert len(result.snapshot()) > 0
