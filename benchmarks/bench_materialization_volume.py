"""The "torrents of updates" experiment (Section 5 lesson).

For a high-throughput stream, continuously materializing every derived
update is very expensive; the EMIT materialization delays exist to
bound that volume.  This bench measures the changelog cardinality of
the same windowed aggregation under the four materialization modes and
asserts the paper's qualitative ordering::

    AFTER WATERMARK  <=  AFTER DELAY (long)  <=  AFTER DELAY (short)
                     <=  instantaneous EMIT STREAM
"""

import pytest

from repro import StreamEngine
from repro.core.times import seconds
from repro.nexmark.queries import q7_highest_bid

BASE = None  # filled per-fixture

AGG = (
    "SELECT TB.wend, COUNT(*) c, MAX(TB.price) m FROM Tumble("
    "data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), "
    "dur => INTERVAL '10' SECONDS) TB GROUP BY TB.wend"
)


@pytest.fixture(scope="module")
def engine(nexmark):
    eng = StreamEngine()
    nexmark.register_on(eng)
    return eng


def volume(engine, emit):
    return len(engine.query(AGG + " " + emit).stream())


def test_update_volume_ordering(benchmark, engine):
    volumes = benchmark(
        lambda: {
            "stream": volume(engine, "EMIT STREAM"),
            "delay_short": volume(
                engine, "EMIT STREAM AFTER DELAY INTERVAL '2' SECONDS"
            ),
            "delay_long": volume(
                engine, "EMIT STREAM AFTER DELAY INTERVAL '30' SECONDS"
            ),
            "watermark": volume(engine, "EMIT STREAM AFTER WATERMARK"),
        }
    )
    assert volumes["watermark"] <= volumes["delay_long"]
    assert volumes["delay_long"] <= volumes["delay_short"]
    assert volumes["delay_short"] <= volumes["stream"]
    # the coalescing must be material, not incidental: the instantaneous
    # changelog re-emits per input record, the watermark rendering emits
    # one row per window
    assert volumes["stream"] > 3 * volumes["watermark"]


def test_instantaneous_stream(benchmark, engine):
    n = benchmark(lambda: volume(engine, "EMIT STREAM"))
    assert n > 0


def test_after_watermark_stream(benchmark, engine):
    n = benchmark(lambda: volume(engine, "EMIT STREAM AFTER WATERMARK"))
    assert n > 0


def test_after_delay_stream(benchmark, engine):
    n = benchmark(
        lambda: volume(engine, "EMIT STREAM AFTER DELAY INTERVAL '5' SECONDS")
    )
    assert n > 0
