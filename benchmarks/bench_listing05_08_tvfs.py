"""Listings 5-8: the Tumble and Hop windowing TVFs and their GROUP BYs."""

from conftest import fresh_paper_engine, row

from repro.core.times import t

TUMBLE = (
    "SELECT * FROM Tumble(data => TABLE(Bid), "
    "timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTES, "
    "offset => INTERVAL '0' MINUTES)"
)
TUMBLE_GROUP = (
    "SELECT TB.wend, MAX(TB.price) maxPrice FROM Tumble(data => TABLE(Bid), "
    "timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTES) TB "
    "GROUP BY TB.wend"
)
HOP = (
    "SELECT * FROM Hop(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), "
    "dur => INTERVAL '10' MINUTES, hopsize => INTERVAL '5' MINUTES)"
)
HOP_GROUP = (
    "SELECT HB.wend, MAX(HB.price) maxPrice FROM Hop(data => TABLE(Bid), "
    "timecol => DESCRIPTOR(bidtime), dur => INTERVAL '10' MINUTES, "
    "hopsize => INTERVAL '5' MINUTES) HB GROUP BY HB.wend"
)


def test_listing05_tumble(benchmark):
    rel = benchmark(lambda: fresh_paper_engine().query(TUMBLE).table(at="8:21"))
    assert len(rel) == 6
    assert row("8:00", "8:10", "8:07", 2, "A") in set(rel.tuples)


def test_listing06_tumble_group_by(benchmark):
    rel = benchmark(
        lambda: fresh_paper_engine().query(TUMBLE_GROUP).table(at="8:21")
    )
    assert rel.sorted(["wend"]).tuples == [(t("8:10"), 5), (t("8:20"), 6)]


def test_listing07_hop(benchmark):
    rel = benchmark(lambda: fresh_paper_engine().query(HOP).table(at="8:21"))
    assert len(rel) == 12  # every bid lands in exactly two windows


def test_listing08_hop_group_by(benchmark):
    rel = benchmark(
        lambda: fresh_paper_engine().query(HOP_GROUP).table(at="8:21")
    )
    assert rel.sorted(["wend"]).tuples == [
        (t("8:10"), 5),
        (t("8:15"), 5),
        (t("8:20"), 6),
        (t("8:25"), 6),
    ]
