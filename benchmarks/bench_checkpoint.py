"""Checkpoint/recovery costs (Appendix B.2.1).

Measures checkpoint size and take/restore time for NEXMark Q7 state,
and asserts the defining recovery property: restored + replayed equals
uninterrupted.
"""

import pytest

from repro import StreamEngine
from repro.core.times import seconds
from repro.nexmark import NexmarkConfig, generate
from repro.nexmark.queries import q7_highest_bid

SQL = q7_highest_bid(seconds(10))


@pytest.fixture(scope="module")
def setup():
    streams = generate(NexmarkConfig(num_events=2_000, seed=8))
    engine = StreamEngine()
    streams.register_on(engine)
    events = []
    for idx, name in enumerate(["Person", "Auction", "Bid"]):
        for i, event in enumerate(engine.source(name).events()):
            events.append((event.ptime, idx, i, event, name))
    events.sort(key=lambda item: (item[0], item[1], item[2]))
    query = engine.query(SQL)
    half = query.dataflow()
    cut = len(events) // 2
    for _, _, _, event, name in events[:cut]:
        half.process(event, name)
    return engine, query, events, cut, half


def test_checkpoint_take(benchmark, setup):
    _, _, _, _, half = setup
    blob = benchmark(half.checkpoint)
    assert len(blob) > 100


def test_checkpoint_restore(benchmark, setup):
    _, query, _, _, half = setup
    blob = half.checkpoint()

    def restore():
        flow = query.dataflow()
        flow.restore(blob)
        return flow

    flow = benchmark(restore)
    assert flow.total_state_rows() == half.total_state_rows()


def test_recovery_end_to_end(benchmark, setup):
    engine, query, events, cut, half = setup
    blob = half.checkpoint()
    reference = query.run()

    def recover_and_finish():
        flow = query.dataflow()
        flow.restore(blob)
        for _, _, _, event, name in events[cut:]:
            flow.process(event, name)
        return flow.finish()

    result = benchmark(recover_and_finish)
    assert result.changes == reference.changes
