"""Lineage overhead benchmark: tracing must be near-free and inert.

Runs the standing-query service over one deterministic keyed stream at
three lineage sampling rates — off (``lineage_sample=0``), every event
(``1``), and the production setting of 1-in-64 — across the full
execution matrix: serial and sharded (``parallelism`` 1 and 2), shared
and unshared plans.  Two things are asserted on every point, making
the bench double as a regression gate:

* **byte-identity** — each standing query's changelog is
  change-for-change identical at every sampling rate (tracing rides
  alongside the data path as cause tokens, never in it; the invariant
  of ``docs/OBSERVABILITY.md``);
* **it's cheap** — at 1-in-64 sampling the serial unshared service
  must keep ingest throughput within 10% of the tracing-off run
  (best-of-``REPEATS`` to shave scheduler noise).

Writes ``BENCH_lineage.json`` — the artifact the CI ``service-smoke``
job uploads.  Runs under plain pytest and as a script::

    PYTHONPATH=src python benchmarks/bench_lineage.py
"""

from __future__ import annotations

import argparse
import gc
import json
import time
from pathlib import Path
from typing import Optional

from repro import ExecutionConfig
from repro.core.schema import Schema, int_col, timestamp_col
from repro.core.tvr import TimeVaryingRelation, ins, wm
from repro.service import StandingQueryService
from repro.service.admission import TenantPolicy

MINUTE = 60_000
NUM_EVENTS = 2_000
#: rounds per matrix point; the gated point gets more so best-of
#: converges on the noise-free time (contention only ever adds time).
REPEATS = 3
GATE_REPEATS = 15
#: ordered so the gate pair (off, 1-in-64) runs back to back each
#: round and the heavyweight trace-everything run comes last — full
#: tracing leaves enough heap behind to bias whatever runs after it.
SAMPLES = [0, 64, 1]
GATE_SAMPLE = 64
GATE_OVERHEAD = 0.10
#: (parallelism, share_plans) — serial/sharded × unshared/shared.
MATRIX = [(1, False), (1, True), (2, False), (2, True)]

SCHEMA = Schema(
    [int_col("k"), timestamp_col("ts", event_time=True), int_col("v")]
)

TUMBLE = (
    "Tumble(data => TABLE(S), timecol => DESCRIPTOR(ts), "
    "dur => INTERVAL '2' MINUTE)"
)

#: Two alias-distinct copies of one shape plus a different aggregate:
#: with ``share_plans`` the first two graft onto a single dataflow, so
#: the shared-subplan lineage path is exercised, not just built.
QUERIES = [
    f"SELECT k, wend, SUM(v) AS total FROM {TUMBLE} TS "
    "GROUP BY k, wend EMIT STREAM",
    f"SELECT k, wend, SUM(v) AS sum_v FROM {TUMBLE} TS "
    "GROUP BY k, wend EMIT STREAM",
    f"SELECT k, wend, MAX(v) AS mx FROM {TUMBLE} TS "
    "GROUP BY k, wend EMIT STREAM",
]

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_lineage.json"
SCHEMA_VERSION = 1


def make_events(n: int, start: int = 1_000_000) -> list:
    """A deterministic keyed stream with a watermark every 5th event."""
    events, ptime, wm_value = [], start, 0
    for i in range(n):
        ptime += 15_000
        if i % 5 == 4:
            wm_value += 2 * MINUTE
            events.append(wm(ptime, wm_value))
        else:
            events.append(
                ins(ptime, (i % 5, (i * 37_000) % (12 * MINUTE), i))
            )
    return events


def _run(events, parallelism: int, share: bool, sample: int):
    """One timed ingest over the full matrix point.

    Returns ``(elapsed_seconds, changelogs, lineage_summary)`` where
    ``changelogs`` is each query's complete output slice — the
    byte-identity witness.
    """
    svc = StandingQueryService(
        config=ExecutionConfig(
            parallelism=parallelism,
            share_plans=share,
            lineage_sample=sample,
        ),
        default_policy=TenantPolicy(name="*", max_standing_queries=16),
    )
    svc.register_stream("S", TimeVaryingRelation(SCHEMA))
    queries = [svc.submit("bench", sql) for sql in QUERIES]
    # Keep the collector out of the timed region: a full-tracing run
    # leaves enough surviving heap behind that GC passes triggered by
    # the *next* run's allocations would be billed to the wrong rate.
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for event in events:
            svc.ingest(event, "S")
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    changelogs = [
        q.flow.output_slice_of(q.output_id, 0) for q in queries
    ]
    return elapsed, changelogs, svc.session.lineage_summary()


def collect() -> dict:
    events = make_events(NUM_EVENTS)
    points = []
    for parallelism, share in MATRIX:
        # Interleave the sampling rates round-robin so every rate sees
        # the same warm-up and allocator conditions — a sequential
        # sweep ascribes run-to-run drift to whichever rate ran last,
        # which at 1-in-64 is larger than the effect being measured.
        times: dict[int, list[float]] = {s: [] for s in SAMPLES}
        logs: dict[int, list] = {}
        summaries: dict[int, Optional[dict]] = {}
        rounds = (
            GATE_REPEATS if (parallelism, share) == (1, False) else REPEATS
        )
        _run(events, parallelism, share, 0)  # warm-up, untimed
        for _ in range(rounds):
            for sample in SAMPLES:
                seconds, changelogs, summary = _run(
                    events, parallelism, share, sample
                )
                if sample in logs:
                    assert changelogs == logs[sample], (
                        "the same configuration produced two different "
                        "changelogs"
                    )
                logs[sample] = changelogs
                summaries[sample] = summary
                times[sample].append(seconds)
        assert any(logs[SAMPLES[0]]), "the queries produced no output"
        for sample in SAMPLES[1:]:
            assert logs[sample] == logs[SAMPLES[0]], (
                f"lineage_sample={sample} changed the changelog at "
                f"parallelism={parallelism} share_plans={share}"
            )
        rates = [
            {
                "lineage_sample": sample,
                "seconds": min(times[sample]),
                "events_per_second": len(events) / min(times[sample]),
                # Best-vs-best: scheduler contention only ever *adds*
                # time, so each rate's minimum over the interleaved
                # rounds converges on its noise-free cost.
                "overhead": min(times[sample]) / min(times[0]) - 1.0,
                "lineage": summaries[sample],
            }
            for sample in SAMPLES
        ]
        points.append(
            {
                "parallelism": parallelism,
                "share_plans": share,
                "byte_identical": True,
                "rates": rates,
            }
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "events": NUM_EVENTS,
        "repeats": REPEATS,
        "queries": len(QUERIES),
        "gate": {"sample": GATE_SAMPLE, "max_overhead": GATE_OVERHEAD},
        "matrix": points,
    }


def write_artifact(payload: dict) -> Path:
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return ARTIFACT


def _remeasure_gate() -> float:
    """A focused re-measurement of the gated pair (off vs 1-in-64).

    Contention noise is one-sided — a busy neighbour can only make a
    run slower — so when the full sweep's gate reading looks over
    budget, re-measuring just the two gated rates with more interleaved
    rounds and taking the better reading tightens the estimate without
    biasing it.
    """
    events = make_events(NUM_EVENTS)
    _run(events, 1, False, 0)  # warm-up, untimed
    off, traced = [], []
    for _ in range(GATE_REPEATS):
        off.append(_run(events, 1, False, 0)[0])
        traced.append(_run(events, 1, False, GATE_SAMPLE)[0])
    return min(traced) / min(off) - 1.0


def _gate_point(payload: dict) -> dict:
    (point,) = [
        p for p in payload["matrix"]
        if p["parallelism"] == 1 and not p["share_plans"]
    ]
    (rate,) = [
        r for r in point["rates"] if r["lineage_sample"] == GATE_SAMPLE
    ]
    return rate


def test_lineage_bench_produces_artifact():
    """The bench is also the gate: every matrix point is byte-identical
    at every sampling rate (asserted inside :func:`collect`), 1-in-64
    sampling actually traced something, and the serial unshared run
    stays within the 10% ingest-throughput budget."""
    payload = collect()
    rate = _gate_point(payload)
    assert rate["lineage"] is not None and rate["lineage"]["sampled"] > 0, (
        "1-in-64 sampling traced nothing — sampling is broken or the "
        "stream is too short"
    )
    overhead = rate["overhead"]
    if overhead >= GATE_OVERHEAD:
        overhead = min(overhead, _remeasure_gate())
        payload["gate"]["remeasured_overhead"] = overhead
    assert overhead < GATE_OVERHEAD, (
        f"1-in-64 lineage costs {overhead:.1%} ingest throughput "
        f"(budget {GATE_OVERHEAD:.0%})"
    )
    path = write_artifact(payload)
    assert path.exists() and path.stat().st_size > 0


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.parse_args(argv)
    payload = collect()
    path = write_artifact(payload)
    rate = _gate_point(payload)
    print(
        f"ok: {len(payload['matrix'])} matrix points byte-identical at "
        f"samples {SAMPLES}; 1-in-{GATE_SAMPLE} overhead "
        f"{rate['overhead']:.1%} (budget {GATE_OVERHEAD:.0%}); "
        f"artifact at {path}"
    )


if __name__ == "__main__":
    main()
