"""Ablation: allowed lateness vs dropped rows vs retained state.

Extension 2 notes that "a configurable amount of allowed lateness is
often needed" in practice.  This bench quantifies the trade-off on a
workload with heavy disorder: more lateness → fewer dropped rows but
more retained state, with zero lateness as the baseline.
"""

import random

import pytest

from repro import ExecutionConfig, StreamEngine
from repro.core.schema import Schema, int_col, timestamp_col
from repro.core.times import seconds, t
from repro.core.tvr import TimeVaryingRelation

SCHEMA = Schema([timestamp_col("ts", event_time=True), int_col("v")])

SQL = (
    "SELECT TB.wend, COUNT(*) c FROM Tumble(data => TABLE(S), "
    "timecol => DESCRIPTOR(ts), dur => INTERVAL '10' SECONDS) TB "
    "GROUP BY TB.wend"
)


@pytest.fixture(scope="module")
def disordered_stream():
    """A stream whose disorder regularly exceeds its watermark slack."""
    rng = random.Random(13)
    tvr = TimeVaryingRelation(SCHEMA)
    ptime = t("9:00")
    max_seen = 0
    for i in range(3_000):
        ptime += 100
        event = ptime - rng.randrange(0, seconds(30))  # up to 30s late
        tvr.insert(ptime, (event, i))
        max_seen = max(max_seen, event)
        if i % 20 == 19:
            # the watermark only allows 5s of slack: genuinely late data
            tvr.advance_watermark(ptime, max_seen - seconds(5))
    return tvr


def run_with_lateness(stream, lateness):
    engine = StreamEngine()
    engine.register_stream("S", stream)
    dataflow = engine.query(
        SQL, config=ExecutionConfig(allowed_lateness=lateness)
    ).dataflow()
    result = dataflow.run()
    return result


def test_zero_lateness_baseline(benchmark, disordered_stream):
    result = benchmark(lambda: run_with_lateness(disordered_stream, 0))
    assert result.late_dropped > 0


def test_generous_lateness_drops_nothing(benchmark, disordered_stream):
    result = benchmark(
        lambda: run_with_lateness(disordered_stream, seconds(60))
    )
    assert result.late_dropped == 0


def test_lateness_tradeoff_curve(benchmark, disordered_stream):
    def curve():
        return {
            lateness: run_with_lateness(disordered_stream, lateness)
            for lateness in (0, seconds(5), seconds(15), seconds(60))
        }

    results = benchmark(curve)
    drops = [results[k].late_dropped for k in sorted(results)]
    states = [results[k].peak_state_rows for k in sorted(results)]
    # more lateness: monotonically fewer drops, no less state
    assert drops == sorted(drops, reverse=True)
    assert drops[-1] == 0
    assert states[0] <= states[-1]
