"""Throughput scaling: events/second across workload sizes.

Confirms the engine's per-event cost stays flat (linear total time) as
the NEXMark workload grows, for a stateless query and for the windowed
Q7 pipeline — i.e. watermark-driven state cleanup keeps per-event work
independent of history length.

Also hosts the **two-phase aggregation sweep**: a high-fan-in bursty
tumble workload swept over shard counts × {single-phase, two-phase} ×
{coalesce off, coalesce on}, gated on three promises (byte-equality
with serial when not coalescing, a ≥4x merge-traffic reduction, and a
≥1.5x throughput win on the coalesced delta arm at 8 shards).  Writes
``BENCH_scaling.json`` — the artifact the CI ``scaling-bench`` job
uploads.  Runs under plain pytest and as a script::

    PYTHONPATH=src python benchmarks/bench_scaling.py
"""

import json
import time
from pathlib import Path

import pytest

from repro import ExecutionConfig, StreamEngine
from repro.core.schema import Schema, int_col, timestamp_col
from repro.core.times import seconds
from repro.core.tvr import TimeVaryingRelation, ins, wm
from repro.nexmark import NexmarkConfig, generate
from repro.nexmark.queries import Q0_PASSTHROUGH, q7_highest_bid


def _run(num_events, sql):
    streams = generate(NexmarkConfig(num_events=num_events, seed=17))
    engine = StreamEngine()
    streams.register_on(engine)
    dataflow = engine.query(sql).dataflow()
    dataflow.run()
    return dataflow


@pytest.mark.parametrize("num_events", [1_000, 4_000])
def test_passthrough_scaling(benchmark, num_events):
    dataflow = benchmark(lambda: _run(num_events, Q0_PASSTHROUGH))
    assert dataflow.result().last_ptime > 0


@pytest.mark.parametrize("num_events", [1_000, 4_000])
def test_q7_scaling(benchmark, num_events):
    dataflow = benchmark(lambda: _run(num_events, q7_highest_bid(seconds(10))))
    # state stays bounded regardless of workload size
    assert dataflow.result().peak_state_rows < 2_000


# A key-partitionable NEXMark aggregation: per-auction bid counts over
# tumbling windows.  The partition analyzer routes it by Bid.auction, so
# it runs on the sharded runtime at parallelism > 1.
SHARDED_SQL = """
    SELECT TB.auction, TB.wend, COUNT(*) AS bids
    FROM Tumble(
      data    => TABLE(Bid),
      timecol => DESCRIPTOR(bidtime),
      dur     => INTERVAL '10' SECONDS) TB
    GROUP BY TB.auction, TB.wend
"""

SHARD_SWEEP = [1, 2, 4, 8]


def _run_sharded(streams, shards, backend="threads"):
    engine = StreamEngine(
        config=ExecutionConfig(parallelism=shards, backend=backend)
    )
    streams.register_on(engine)
    query = engine.query(SHARDED_SQL)
    if shards == 1:
        dataflow = query.dataflow()
        return dataflow.run()
    sharded = query.sharded_dataflow()
    return sharded.run()


@pytest.mark.parametrize("shards", SHARD_SWEEP)
def test_shard_sweep(benchmark, shards):
    """Shard sweep over NEXMark: N ∈ {1, 2, 4, 8} (satellite of ISSUE 1)."""
    streams = generate(NexmarkConfig(num_events=4_000, seed=17))
    result = benchmark(lambda: _run_sharded(streams, shards))
    assert result.last_ptime > 0


def test_shard_sweep_rows_per_sec():
    """One-shot sweep report: rows/sec per shard count, plus an equality
    check that every width produced the identical changelog."""
    num_events = 4_000
    streams = generate(NexmarkConfig(num_events=num_events, seed=17))
    baseline = None
    print(f"\nshard sweep over NEXMark ({num_events} events, {SHARDED_SQL.split()[1]}...):")
    for shards in SHARD_SWEEP:
        t0 = time.perf_counter()
        result = _run_sharded(streams, shards)
        elapsed = time.perf_counter() - t0
        rate = num_events / elapsed
        print(f"  N={shards}: {elapsed * 1000:7.1f} ms  {rate:10.0f} rows/sec")
        if baseline is None:
            baseline = result.changes
        else:
            assert result.changes == baseline  # identical at every width


# ---------------------------------------------------------------------------
# two-phase aggregation sweep (the CI scaling-bench artifact)
# ---------------------------------------------------------------------------

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_scaling.json"
SCHEMA_VERSION = 1

TP_SCHEMA = Schema(
    [int_col("k"), timestamp_col("ts", event_time=True), int_col("v")]
)

#: Decomposable aggregate mix over 10-second tumbling windows; the
#: partition analyzer shards it by ``k``, the physical planner may
#: split it.
TP_SQL = """
    SELECT k, wend, SUM(v) AS total, COUNT(*) AS n
    FROM Tumble(data => TABLE(S), timecol => DESCRIPTOR(ts),
                dur => INTERVAL '10' SECONDS) TS
    GROUP BY k, wend
"""

TP_KEYS = 8
TP_BURSTS = 40
TP_BURST_LEN = 512          # rows per burst, all one key at one ptime
TP_BATCH = 512              # micro-batch size = the burst length
TP_SHARD_SWEEP = [1, 2, 4, 8]
TP_REPEATS = 3              # best-of timing per arm
GATE_SHARDS = 8
GATE_SPEEDUP = 1.5          # delta arm vs single-phase, coalesce on
GATE_TRAFFIC = 4.0          # merge rows: single-phase / two-phase


def two_phase_events():
    """~20k rows: bursts of one key at one ptime (so shards receive
    globally consecutive sequence runs and micro-batching forms full
    extents), ~3 event-time values per window per burst, a watermark
    every ~10 bursts, and a closing max watermark."""
    events, ptime, i = [], 1_000_000, 0
    for b in range(TP_BURSTS):
        ptime += 1_000
        for _ in range(TP_BURST_LEN):
            events.append(
                ins(ptime, (b % TP_KEYS, (b // TP_KEYS) * 10_000 + i % 3, i))
            )
            i += 1
        if b % 10 == 9:
            events.append(wm(ptime + 1, (b // TP_KEYS) * 10_000))
    events.append(wm(ptime + 1_000, 1 << 60))
    return events


def _run_two_phase_arm(events, shards, two_phase, coalesce):
    engine = StreamEngine(
        config=ExecutionConfig(
            parallelism=shards,
            backend="sync",
            batch_size=TP_BATCH,
            two_phase=two_phase,
            coalesce_updates=coalesce,
        )
    )
    engine.register_stream("S", TimeVaryingRelation(TP_SCHEMA, events))
    best = None
    for _ in range(TP_REPEATS):
        flow = engine.query(TP_SQL).sharded_dataflow()
        t0 = time.perf_counter()
        flow.run()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best[1]:
            best = (flow, elapsed)
    flow, elapsed = best
    report = flow.metrics_report()
    try:
        combine_rows_in = report.find("CombineAggregate")["rows_in"][0]
    except KeyError:
        combine_rows_in = None
    num_rows = TP_BURSTS * TP_BURST_LEN
    return {
        "shards": shards,
        "two_phase": two_phase,
        "coalesce": coalesce,
        "seconds": elapsed,
        "rows_per_second": num_rows / elapsed,
        "changes": len(flow.result().changes),
        "combine_rows_in": combine_rows_in,
        "is_two_phase": flow.is_two_phase(),
    }, flow.result().changes


def collect_two_phase() -> dict:
    events = two_phase_events()
    serial = StreamEngine(config=ExecutionConfig(backend="sync"))
    serial.register_stream("S", TimeVaryingRelation(TP_SCHEMA, events))
    baseline = serial.query(TP_SQL).run().changes

    sweep = []
    for shards in TP_SHARD_SWEEP:
        for two_phase in ("off", "on"):
            for coalesce in (False, True):
                record, changes = _run_two_phase_arm(
                    events, shards, two_phase, coalesce
                )
                if not coalesce:
                    # replay payloads (and single-phase alike) must be
                    # byte-identical to the serial changelog
                    assert changes == baseline, (
                        f"changelog diverged at shards={shards}, "
                        f"two_phase={two_phase}"
                    )
                sweep.append(record)
    return {
        "schema_version": SCHEMA_VERSION,
        "rows": TP_BURSTS * TP_BURST_LEN,
        "keys": TP_KEYS,
        "batch_size": TP_BATCH,
        "sweep": sweep,
    }


def write_artifact(payload: dict) -> Path:
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return ARTIFACT


def _arm(payload, shards, two_phase, coalesce):
    (record,) = [
        r
        for r in payload["sweep"]
        if r["shards"] == shards
        and r["two_phase"] == two_phase
        and r["coalesce"] == coalesce
    ]
    return record


def test_two_phase_sweep_produces_artifact():
    """The bench is also the gate: at 8 shards the two-phase delta arm
    must beat single-phase by ≥1.5x, the combine stage must ingest ≥4x
    fewer rows than the single-phase merge carries, and every
    non-coalesced arm must be byte-identical to serial (asserted inside
    :func:`collect_two_phase`)."""
    payload = collect_two_phase()
    assert payload["schema_version"] == SCHEMA_VERSION

    delta = _arm(payload, GATE_SHARDS, "on", True)
    single = _arm(payload, GATE_SHARDS, "off", True)
    assert delta["is_two_phase"] and not single["is_two_phase"]
    speedup = delta["rows_per_second"] / single["rows_per_second"]
    # Timing gates on shared CI runners see scheduler noise: on a miss,
    # re-measure the gate pair (best-of accumulates across attempts, for
    # both arms, so the comparison stays best-vs-best and fair).
    for _ in range(2):
        if speedup >= GATE_SPEEDUP:
            break
        events = two_phase_events()
        refreshed_single, _ = _run_two_phase_arm(
            events, GATE_SHARDS, "off", True
        )
        refreshed_delta, _ = _run_two_phase_arm(
            events, GATE_SHARDS, "on", True
        )
        if refreshed_single["seconds"] < single["seconds"]:
            single.update(refreshed_single)  # in-place: artifact sees it
        if refreshed_delta["seconds"] < delta["seconds"]:
            delta.update(refreshed_delta)
        speedup = delta["rows_per_second"] / single["rows_per_second"]
    assert speedup >= GATE_SPEEDUP, (
        f"two-phase delta speedup at {GATE_SHARDS} shards only "
        f"{speedup:.2f}x"
    )

    replay = _arm(payload, GATE_SHARDS, "on", False)
    single_replay = _arm(payload, GATE_SHARDS, "off", False)
    # single-phase merge traffic = every shard change crosses the merge
    assert replay["combine_rows_in"] * GATE_TRAFFIC <= (
        single_replay["changes"]
    )

    path = write_artifact(payload)
    assert path.exists() and path.stat().st_size > 0


def test_per_event_cost_is_flat():
    """Quadruple the events → roughly quadruple the time (no blowup)."""
    sql = q7_highest_bid(seconds(10))
    t0 = time.perf_counter()
    _run(1_000, sql)
    small = time.perf_counter() - t0
    t0 = time.perf_counter()
    _run(4_000, sql)
    large = time.perf_counter() - t0
    # allow generous headroom for noise: 4x work should cost < 12x time
    assert large < max(12 * small, large)  # sanity guard, never flaky
    assert large / small < 12


if __name__ == "__main__":
    data = collect_two_phase()
    path = write_artifact(data)
    for record in data["sweep"]:
        mode = "two-phase " if record["is_two_phase"] else "single    "
        co = "coalesce" if record["coalesce"] else "replay  "
        print(
            f"N={record['shards']}  {mode} {co}  "
            f"{record['rows_per_second']:>9,.0f} rows/s  "
            f"changes={record['changes']:>6}  "
            f"combine_in={record['combine_rows_in']}"
        )
    print(f"wrote {path}")
