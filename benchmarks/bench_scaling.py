"""Throughput scaling: events/second across workload sizes.

Confirms the engine's per-event cost stays flat (linear total time) as
the NEXMark workload grows, for a stateless query and for the windowed
Q7 pipeline — i.e. watermark-driven state cleanup keeps per-event work
independent of history length.
"""

import time

import pytest

from repro import StreamEngine
from repro.core.times import seconds
from repro.nexmark import NexmarkConfig, generate
from repro.nexmark.queries import Q0_PASSTHROUGH, q7_highest_bid


def _run(num_events, sql):
    streams = generate(NexmarkConfig(num_events=num_events, seed=17))
    engine = StreamEngine()
    streams.register_on(engine)
    dataflow = engine.query(sql).dataflow()
    dataflow.run()
    return dataflow


@pytest.mark.parametrize("num_events", [1_000, 4_000])
def test_passthrough_scaling(benchmark, num_events):
    dataflow = benchmark(lambda: _run(num_events, Q0_PASSTHROUGH))
    assert dataflow.result().last_ptime > 0


@pytest.mark.parametrize("num_events", [1_000, 4_000])
def test_q7_scaling(benchmark, num_events):
    dataflow = benchmark(lambda: _run(num_events, q7_highest_bid(seconds(10))))
    # state stays bounded regardless of workload size
    assert dataflow.result().peak_state_rows < 2_000


def test_per_event_cost_is_flat():
    """Quadruple the events → roughly quadruple the time (no blowup)."""
    sql = q7_highest_bid(seconds(10))
    t0 = time.perf_counter()
    _run(1_000, sql)
    small = time.perf_counter() - t0
    t0 = time.perf_counter()
    _run(4_000, sql)
    large = time.perf_counter() - t0
    # allow generous headroom for noise: 4x work should cost < 12x time
    assert large < max(12 * small, large)  # sanity guard, never flaky
    assert large / small < 12
