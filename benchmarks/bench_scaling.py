"""Throughput scaling: events/second across workload sizes.

Confirms the engine's per-event cost stays flat (linear total time) as
the NEXMark workload grows, for a stateless query and for the windowed
Q7 pipeline — i.e. watermark-driven state cleanup keeps per-event work
independent of history length.
"""

import time

import pytest

from repro import ExecutionConfig, StreamEngine
from repro.core.times import seconds
from repro.nexmark import NexmarkConfig, generate
from repro.nexmark.queries import Q0_PASSTHROUGH, q7_highest_bid


def _run(num_events, sql):
    streams = generate(NexmarkConfig(num_events=num_events, seed=17))
    engine = StreamEngine()
    streams.register_on(engine)
    dataflow = engine.query(sql).dataflow()
    dataflow.run()
    return dataflow


@pytest.mark.parametrize("num_events", [1_000, 4_000])
def test_passthrough_scaling(benchmark, num_events):
    dataflow = benchmark(lambda: _run(num_events, Q0_PASSTHROUGH))
    assert dataflow.result().last_ptime > 0


@pytest.mark.parametrize("num_events", [1_000, 4_000])
def test_q7_scaling(benchmark, num_events):
    dataflow = benchmark(lambda: _run(num_events, q7_highest_bid(seconds(10))))
    # state stays bounded regardless of workload size
    assert dataflow.result().peak_state_rows < 2_000


# A key-partitionable NEXMark aggregation: per-auction bid counts over
# tumbling windows.  The partition analyzer routes it by Bid.auction, so
# it runs on the sharded runtime at parallelism > 1.
SHARDED_SQL = """
    SELECT TB.auction, TB.wend, COUNT(*) AS bids
    FROM Tumble(
      data    => TABLE(Bid),
      timecol => DESCRIPTOR(bidtime),
      dur     => INTERVAL '10' SECONDS) TB
    GROUP BY TB.auction, TB.wend
"""

SHARD_SWEEP = [1, 2, 4, 8]


def _run_sharded(streams, shards, backend="threads"):
    engine = StreamEngine(
        config=ExecutionConfig(parallelism=shards, backend=backend)
    )
    streams.register_on(engine)
    query = engine.query(SHARDED_SQL)
    if shards == 1:
        dataflow = query.dataflow()
        return dataflow.run()
    sharded = query.sharded_dataflow()
    return sharded.run()


@pytest.mark.parametrize("shards", SHARD_SWEEP)
def test_shard_sweep(benchmark, shards):
    """Shard sweep over NEXMark: N ∈ {1, 2, 4, 8} (satellite of ISSUE 1)."""
    streams = generate(NexmarkConfig(num_events=4_000, seed=17))
    result = benchmark(lambda: _run_sharded(streams, shards))
    assert result.last_ptime > 0


def test_shard_sweep_rows_per_sec():
    """One-shot sweep report: rows/sec per shard count, plus an equality
    check that every width produced the identical changelog."""
    num_events = 4_000
    streams = generate(NexmarkConfig(num_events=num_events, seed=17))
    baseline = None
    print(f"\nshard sweep over NEXMark ({num_events} events, {SHARDED_SQL.split()[1]}...):")
    for shards in SHARD_SWEEP:
        t0 = time.perf_counter()
        result = _run_sharded(streams, shards)
        elapsed = time.perf_counter() - t0
        rate = num_events / elapsed
        print(f"  N={shards}: {elapsed * 1000:7.1f} ms  {rate:10.0f} rows/sec")
        if baseline is None:
            baseline = result.changes
        else:
            assert result.changes == baseline  # identical at every width


def test_per_event_cost_is_flat():
    """Quadruple the events → roughly quadruple the time (no blowup)."""
    sql = q7_highest_bid(seconds(10))
    t0 = time.perf_counter()
    _run(1_000, sql)
    small = time.perf_counter() - t0
    t0 = time.perf_counter()
    _run(4_000, sql)
    large = time.perf_counter() - t0
    # allow generous headroom for noise: 4x work should cost < 12x time
    assert large < max(12 * small, large)  # sanity guard, never flaky
    assert large / small < 12
