"""Watermark-driven state cleanup (Section 5: finite state over
infinite input).

Runs the same windowed aggregation twice over an ever-growing stream:
once with watermarks flowing (state for closed windows is freed) and
once with the watermark withheld (state can only grow).  Asserts that
peak state is bounded in the first case and linear in the second —
the quantitative version of "state can be freed when the watermark is
sufficiently advanced".
"""

import pytest

from repro import StreamEngine
from repro.core.schema import Schema, int_col, timestamp_col
from repro.core.tvr import TimeVaryingRelation

SCHEMA = Schema([timestamp_col("ts", event_time=True), int_col("v")])

AGG = (
    "SELECT TB.wend, COUNT(*) c FROM Tumble(data => TABLE(S), "
    "timecol => DESCRIPTOR(ts), dur => INTERVAL '5' SECONDS) TB "
    "GROUP BY TB.wend"
)

N_EVENTS = 3_000


def build_stream(with_watermarks: bool) -> TimeVaryingRelation:
    tvr = TimeVaryingRelation(SCHEMA)
    ptime = 0
    for i in range(N_EVENTS):
        ptime += 100
        tvr.insert(ptime, (ptime, i))
        if with_watermarks and i % 20 == 19:
            tvr.advance_watermark(ptime, ptime - 1_000)
    return tvr


def peak_state(with_watermarks: bool) -> int:
    engine = StreamEngine()
    engine.register_stream("S", build_stream(with_watermarks))
    dataflow = engine.query(AGG).dataflow()
    for event in engine.source("S").events():
        dataflow.process(event, "S")
    return dataflow.result().peak_state_rows


def test_state_bounded_with_watermarks(benchmark):
    peak = benchmark(lambda: peak_state(with_watermarks=True))
    # a handful of open 5-second windows at 10 events/second
    assert peak < 200


def test_state_linear_without_watermarks(benchmark):
    peak = benchmark(lambda: peak_state(with_watermarks=False))
    assert peak >= N_EVENTS  # every row retained


def test_cleanup_factor(benchmark):
    def factor():
        return peak_state(False) / peak_state(True)

    ratio = benchmark(factor)
    assert ratio > 15  # watermarks shrink state by an order of magnitude
