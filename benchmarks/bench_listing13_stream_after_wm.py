"""Listing 13: EMIT STREAM AFTER WATERMARK — one final row per window,
stamped at the instant the watermark passed the window end."""

from conftest import fresh_paper_engine, stream_row

from repro.nexmark.queries import q7_paper


def test_listing13_stream_after_watermark(benchmark):
    engine = fresh_paper_engine()
    query = engine.query(q7_paper(emit="EMIT STREAM AFTER WATERMARK"))
    query.run()

    out = benchmark(lambda: query.stream(until="8:21"))

    assert [c.as_tuple() for c in out] == [
        stream_row("8:00", "8:10", "8:09", 5, "D", "", "8:16", 0),
        stream_row("8:10", "8:20", "8:17", 6, "F", "", "8:21", 0),
    ]
