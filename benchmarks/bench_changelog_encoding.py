"""Retraction vs upsert changelog encodings (Appendix B.2.3).

Flink encodes relation changes either as retraction streams (general)
or upsert streams (needs a unique key, but encodes an UPDATE as one
message instead of two).  This bench re-encodes a windowed aggregate's
changelog both ways and asserts the space saving, then times the
conversions.
"""

import pytest

from repro import StreamEngine
from repro.core.changelog import to_upserts, upserts_to_changes
from repro.nexmark.queries import q7_highest_bid

AGG = (
    "SELECT TB.wend, COUNT(*) c, MAX(TB.price) m FROM Tumble("
    "data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), "
    "dur => INTERVAL '10' SECONDS) TB GROUP BY TB.wend"
)


@pytest.fixture(scope="module")
def retraction_changelog(nexmark):
    engine = StreamEngine()
    nexmark.register_on(engine)
    return engine.query(AGG).run().changes


def test_upsert_encoding_is_smaller(benchmark, retraction_changelog):
    # wend (column 0) is the aggregate's unique key
    upserts = benchmark(lambda: to_upserts(retraction_changelog, [0]))
    n_updates = sum(1 for c in retraction_changelog if c.is_retract)
    assert n_updates > 0
    # every retract+insert pair fused into one UPSERT message
    assert len(upserts) == len(retraction_changelog) - n_updates


def test_upsert_round_trip(benchmark, retraction_changelog):
    from collections import Counter

    def round_trip():
        return upserts_to_changes(to_upserts(retraction_changelog, [0]))

    decoded = benchmark(round_trip)
    original_state = Counter()
    for change in retraction_changelog:
        original_state[change.values] += change.delta
    decoded_state = Counter()
    for change in decoded:
        decoded_state[change.values] += change.delta
    assert +original_state == +decoded_state
