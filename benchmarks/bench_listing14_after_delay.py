"""Listing 14: EMIT STREAM AFTER DELAY '6' MINUTES — periodic
materialization that coalesces each window's updates per delay period."""

from conftest import fresh_paper_engine, stream_row

from repro.nexmark.queries import q7_paper


def test_listing14_after_delay(benchmark):
    engine = fresh_paper_engine()
    query = engine.query(
        q7_paper(emit="EMIT STREAM AFTER DELAY INTERVAL '6' MINUTES")
    )
    query.run()

    out = benchmark(lambda: query.stream(until="8:21"))

    assert [c.as_tuple() for c in out] == [
        stream_row("8:00", "8:10", "8:05", 4, "C", "", "8:14", 0),
        stream_row("8:10", "8:20", "8:17", 6, "F", "", "8:18", 0),
        stream_row("8:00", "8:10", "8:05", 4, "C", "undo", "8:21", 1),
        stream_row("8:00", "8:10", "8:09", 5, "D", "", "8:21", 2),
    ]
