"""Listing 2: NEXMark Query 7 in the proposed SQL — full engine path.

Times the complete parse → validate → plan → optimize → execute
pipeline for the paper's flagship query on the example dataset.
"""

from conftest import fresh_paper_engine, row

from repro.nexmark.queries import q7_paper


def test_listing02_sql_q7_end_to_end(benchmark):
    sql = q7_paper()

    def end_to_end():
        engine = fresh_paper_engine()
        return engine.query(sql).table(at="8:21")

    rel = benchmark(end_to_end)
    assert sorted(rel.tuples) == [
        row("8:00", "8:10", "8:09", 5, "D"),
        row("8:10", "8:20", "8:17", 6, "F"),
    ]
