"""Listings 10-12: EMIT AFTER WATERMARK table views at 8:13/8:16/8:21.

Completeness-delayed materialization: the table shows a window's row
only once the watermark proves no more input can arrive for it.
"""

import pytest
from conftest import fresh_paper_engine, row

from repro.nexmark.queries import q7_paper


@pytest.fixture(scope="module")
def query():
    engine = fresh_paper_engine()
    prepared = engine.query(q7_paper(emit="EMIT AFTER WATERMARK"))
    prepared.run()
    return prepared


def test_listing10_incomplete_at_813(benchmark, query):
    rel = benchmark(lambda: query.table(at="8:13"))
    assert rel.tuples == []


def test_listing11_first_window_final_at_816(benchmark, query):
    rel = benchmark(lambda: query.table(at="8:16"))
    assert rel.tuples == [row("8:00", "8:10", "8:09", 5, "D")]


def test_listing12_both_windows_final_at_821(benchmark, query):
    rel = benchmark(lambda: query.table(at="8:21").sorted(["wstart"]))
    assert rel.tuples == [
        row("8:00", "8:10", "8:09", 5, "D"),
        row("8:10", "8:20", "8:17", 6, "F"),
    ]
