"""CQL (Listing 1) vs proposed SQL (Listing 2) on the same workload.

The paper's claim: the SQL formulation with EMIT STREAM AFTER WATERMARK
produces the same per-window answers as CQL's Rstream — while natively
processing out-of-order input instead of requiring in-order buffering.
This bench runs both engines over the generated NEXMark bid stream,
asserts equivalence, and times each.
"""

from repro import StreamEngine
from repro.core.times import seconds
from repro.nexmark.queries import q7_cql, q7_highest_bid

WINDOW = seconds(10)


def _sql_rows(nexmark):
    engine = StreamEngine()
    nexmark.register_on(engine)
    out = engine.query(
        q7_highest_bid(WINDOW, emit="EMIT STREAM AFTER WATERMARK")
    ).stream()
    return sorted((c.values[1], c.values[3]) for c in out)  # (wend, price)


def _cql_rows(nexmark):
    out = q7_cql(nexmark.bids, window=WINDOW)
    return sorted((ts, values[2]) for ts, values in out)


def test_sql_engine_q7(benchmark, nexmark):
    sql_rows = benchmark(lambda: _sql_rows(nexmark))
    assert sql_rows == _cql_rows(nexmark)


def test_cql_baseline_q7(benchmark, nexmark):
    cql_rows = benchmark(lambda: _cql_rows(nexmark))
    assert cql_rows == _sql_rows(nexmark)
