"""Benchmarks for the Section-8 future-work features we implement.

Session windows, tail-of-stream temporal filters, AS OF temporal joins,
and MATCH_RECOGNIZE — each timed end to end on synthetic workloads and
asserted for correctness.
"""

import random

import pytest

from repro import StreamEngine
from repro.core.schema import (
    Schema,
    float_col,
    int_col,
    string_col,
    timestamp_col,
)
from repro.core.times import minutes, seconds, t
from repro.core.tvr import TimeVaryingRelation

N = 2_000


def _engine_with(name, tvr):
    engine = StreamEngine()
    engine.register_stream(name, tvr)
    return engine


@pytest.fixture(scope="module")
def activity_stream():
    """Bursty per-user activity for session windows."""
    schema = Schema(
        [int_col("user"), timestamp_col("at", event_time=True), int_col("n")]
    )
    rng = random.Random(5)
    tvr = TimeVaryingRelation(schema)
    now = t("9:00")
    for i in range(N):
        now += rng.choice([seconds(1), seconds(2), minutes(6)])
        tvr.insert(now, (rng.randrange(20), now, i))
        if i % 50 == 49:
            tvr.advance_watermark(now, now - seconds(5))
    tvr.advance_watermark(now + 1, now + minutes(60))
    return tvr


def test_session_windows(benchmark, activity_stream):
    engine = _engine_with("Act", activity_stream)
    sql = """
    SELECT SB.user, SB.wstart, SB.wend, COUNT(*) AS events
    FROM Session(data => TABLE(Act), timecol => DESCRIPTOR(at),
                 gap => INTERVAL '3' MINUTES,
                 keycol => DESCRIPTOR(user)) SB
    GROUP BY SB.wend, SB.user
    """
    rel = benchmark(lambda: engine.query(sql).table())
    assert len(rel) > 10
    # sessions never overlap per user
    by_user: dict = {}
    for user, wstart, wend, _ in rel.tuples:
        by_user.setdefault(user, []).append((wstart, wend))
    for spans in by_user.values():
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2


def test_tail_of_stream_filter(benchmark, activity_stream):
    engine = _engine_with("Act", activity_stream)
    sql = (
        "SELECT COUNT(*) c FROM Act "
        "WHERE at > CURRENT_TIME - INTERVAL '5' MINUTES"
    )

    def run():
        return engine.query(sql).run()

    result = benchmark(run)
    # rows both enter and leave: the changelog has retractions
    assert any(c.is_retract for c in result.changes)


@pytest.fixture(scope="module")
def orders_and_rates():
    order_schema = Schema(
        [
            int_col("id"),
            string_col("ccy"),
            int_col("amount"),
            timestamp_col("at", event_time=True),
        ]
    )
    rate_schema = Schema(
        [
            string_col("ccy"),
            float_col("rate"),
            timestamp_col("at", event_time=True),
        ]
    )
    rng = random.Random(9)
    orders = TimeVaryingRelation(order_schema)
    rates = TimeVaryingRelation(rate_schema)
    now = t("9:00")
    for i in range(20):
        rates.insert(now + i, ("EUR", 1.0 + i / 100, t("9:00") + i * minutes(5)))
        rates.insert(now + i, ("GBP", 0.8 + i / 100, t("9:00") + i * minutes(5)))
    rates.advance_watermark(now + 100, t("23:00"))
    ptime = now + 200
    max_seen = 0
    for i in range(N):
        ptime += 10
        order_time = t("9:00") + rng.randrange(95) * minutes(1)
        max_seen = max(max_seen, order_time)
        orders.insert(
            ptime, (i, rng.choice(["EUR", "GBP"]), rng.randrange(100), order_time)
        )
        if i % 100 == 99:
            # sound bounded-out-of-orderness watermark
            orders.advance_watermark(ptime, max_seen - minutes(95))
    orders.advance_watermark(ptime + 1, t("23:00"))
    return orders, rates


def test_temporal_as_of_join(benchmark, orders_and_rates):
    orders, rates = orders_and_rates
    engine = StreamEngine()
    engine.register_stream("Orders", orders)
    engine.register_stream("Rates", rates)
    sql = """
    SELECT O.id, O.amount, R.rate
    FROM Orders O
    JOIN Rates FOR SYSTEM_TIME AS OF O.at R ON O.ccy = R.ccy
    """
    rel = benchmark(lambda: engine.query(sql).table())
    assert len(rel) == N  # every order finds a version


def test_over_window_throughput(benchmark, activity_stream):
    engine = _engine_with("Act", activity_stream)
    sql = (
        "SELECT user, n, SUM(n) OVER (PARTITION BY user ORDER BY at "
        "ROWS BETWEEN 9 PRECEDING AND CURRENT ROW) AS running FROM Act"
    )
    rel = benchmark(lambda: engine.query(sql).table())
    assert len(rel) > 0


def test_semi_join_throughput(benchmark, activity_stream):
    engine = _engine_with("Act", activity_stream)
    engine.register_table(
        "VIP",
        Schema([int_col("uid")]),
        [(i,) for i in range(0, 20, 3)],
    )
    sql = "SELECT n FROM Act WHERE user IN (SELECT uid FROM VIP)"
    rel = benchmark(lambda: engine.query(sql).table())
    assert 0 < len(rel) < N


def test_match_recognize_throughput(benchmark):
    schema = Schema(
        [
            string_col("ticker"),
            timestamp_col("ts", event_time=True),
            int_col("price"),
        ]
    )
    rng = random.Random(3)
    tvr = TimeVaryingRelation(schema)
    now = t("9:00")
    for i in range(N):
        now += 1000
        tvr.insert(now, (rng.choice(["A", "B", "C"]), now, rng.randrange(80, 120)))
        if i % 40 == 39:
            tvr.advance_watermark(now, now - 5000)
    tvr.advance_watermark(now + 1, now + minutes(60))
    engine = _engine_with("Ticks", tvr)
    sql = """
    SELECT * FROM Ticks MATCH_RECOGNIZE (
      PARTITION BY ticker ORDER BY ts
      MEASURES FIRST(DOWN.price) AS top, LAST(DOWN.price) AS bottom,
               UP.price AS up
      PATTERN ( DOWN DOWN+ UP )
      DEFINE DOWN AS price < 100, UP AS price >= 100
    )
    """
    rel = benchmark(lambda: engine.query(sql).table())
    assert len(rel) > 0
    for _, top, bottom, up in rel.tuples:
        assert bottom < 100 <= up
