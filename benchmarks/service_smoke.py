"""CI service smoke check: live tail, two tenants, oracle-verified deltas.

Boots a :class:`~repro.service.server.ServiceServer` on a loopback
port, submits two tenant queries through the wire protocol — one
admitted, one rejected at the ACL gate with a structured error — then
tails a JSONL fixture that is still being appended to, and:

* asserts the deltas streamed to the admitted tenant's subscriber are
  **byte-identical** to the recorded-replay oracle (the same SQL run
  one-shot over the full recording with ``query.run()``);
* runs the same query a second time under ``parallelism=3`` and
  asserts the sharded resident flow publishes the identical delta
  sequence (the service-mode restatement of the runtime's determinism
  guarantee);
* scrapes the ``repro_service_*`` exposition over the wire, validates
  it with :func:`repro.obs.export.parse_exposition`, and writes it to
  ``SERVICE_smoke.prom`` for CI to upload;
* hits the HTTP plane next to the line-JSON listener: ``GET /metrics``
  must serve a parseable exposition, ``GET /healthz`` a JSON liveness
  document, and unknown routes a 404.

Runs under plain pytest and as a script::

    PYTHONPATH=src python benchmarks/service_smoke.py
"""

from __future__ import annotations

import argparse
import asyncio
import json
import tempfile
from pathlib import Path

from repro import ExecutionConfig, StreamEngine
from repro.core.tvr import TimeVaryingRelation
from repro.io import format_jsonl
from repro.nexmark import NexmarkConfig, generate
from repro.obs.export import parse_exposition
from repro.service import ServiceServer, StandingQueryService, TenantPolicy

NUM_EVENTS = 800
SHARDS = 3

SQL = """
    SELECT TB.wend, MAX(TB.price) AS maxPrice
    FROM Tumble(
      data    => TABLE(Bid),
      timecol => DESCRIPTOR(bidtime),
      dur     => INTERVAL '10' SECONDS) TB
    GROUP BY TB.wend
    EMIT STREAM
"""

ROOT = Path(__file__).resolve().parents[1]
PROM_ARTIFACT = ROOT / "SERVICE_smoke.prom"

# The stable families the smoke check insists on; a rename here must be
# deliberate and documented in docs/SERVICE.md.
REQUIRED_FAMILIES = {
    "repro_service_active_queries",
    "repro_service_admitted_total",
    "repro_service_admission_rejects_total",
    "repro_service_events_ingested_total",
    "repro_service_delivered_deltas_total",
    "repro_service_subscribers",
}


def recorded_bids() -> TimeVaryingRelation:
    """The full NEXMark Bid recording the oracle and the feed share."""
    staging = StreamEngine()
    generate(NexmarkConfig(num_events=NUM_EVENTS, seed=17)).register_on(staging)
    return staging.source("Bid")


def oracle_changes(bids: TimeVaryingRelation) -> list:
    """The one-shot changelog: what every live path must reproduce."""
    engine = StreamEngine()
    engine.register_stream("Bid", bids)
    return engine.query(SQL).run().changes


async def http_get(host: str, port: int, path: str) -> tuple[str, str]:
    """One raw HTTP/1.1 GET; returns (status line, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    return head.split(b"\r\n", 1)[0].decode(), body.decode()


async def drive(service, feed_path: Path, tail_lines: list[str]):
    """Submit, subscribe, tail; return (deltas, rejection, exposition)."""
    server = ServiceServer(service, "127.0.0.1", 0)
    await server.start()
    http = await server.serve_http("127.0.0.1", 0)
    host, port = server.address
    reader, writer = await asyncio.open_connection(host, port)

    async def rpc(payload):
        writer.write((json.dumps(payload) + "\n").encode())
        await writer.drain()
        return json.loads(await reader.readline())

    try:
        admitted = await rpc(
            {"op": "submit", "tenant": "reporting", "sql": SQL}
        )
        assert admitted["ok"], admitted
        rejected = await rpc(
            {"op": "submit", "tenant": "intruder", "sql": "SELECT * FROM Bid"}
        )
        assert not rejected["ok"], "the locked-down tenant must be rejected"
        assert rejected["error"]["code"] == "acl_denied", rejected
        subscribed = await rpc(
            {"op": "subscribe", "query": admitted["query"],
             "subscriber": "smoke"}
        )
        assert subscribed["ok"] and subscribed["cursor"] == 0, subscribed

        server.add_tail("Bid", str(feed_path), poll_interval=0.01)
        server.start_pump()
        await asyncio.sleep(0.05)
        with open(feed_path, "a") as handle:
            handle.write("".join(tail_lines))
        await server.drain()

        deltas = []
        while True:
            try:
                raw = await asyncio.wait_for(reader.readline(), timeout=0.2)
            except asyncio.TimeoutError:
                break
            if not raw:
                break
            message = json.loads(raw)
            if "delta" in message:
                deltas.append(message["delta"])
        scrape = await rpc({"op": "metrics"})

        # The HTTP plane must serve the same exposition plus liveness.
        http_host, http_port = http.address
        status, metrics_body = await http_get(http_host, http_port, "/metrics")
        assert status == "HTTP/1.1 200 OK", status
        parse_exposition(metrics_body)  # raises on malformed output
        status, health_body = await http_get(http_host, http_port, "/healthz")
        assert status == "HTTP/1.1 200 OK", status
        health = json.loads(health_body)
        assert health["status"] == "ok" and health["queries"] >= 1, health
        status, _ = await http_get(http_host, http_port, "/nope")
        assert status == "HTTP/1.1 404 Not Found", status

        return deltas, rejected, scrape["exposition"]
    finally:
        writer.close()
        await server.stop()


def run_smoke() -> dict:
    bids = recorded_bids()
    expected = oracle_changes(bids)
    assert expected, "the oracle run produced no changes — bad fixture"

    service = StandingQueryService(
        policies={
            "reporting": TenantPolicy(name="reporting"),
            "intruder": TenantPolicy(
                name="intruder", allowed_tables=frozenset()
            ),
        },
    )
    service.register_stream("Bid", TimeVaryingRelation(bids.schema))

    # A second resident copy of the query, sharded, fed by the same
    # pump: its delta sequence must match the serial one byte for byte.
    sharded = service.submit(
        "reporting", SQL,
        config=ExecutionConfig(parallelism=SHARDS, backend="sync"),
    )
    assert sharded.sharded, "parallelism=3 should build a sharded flow"
    sharded_sub = service.subscribe(sharded.query_id, "smoke-sharded")

    lines = format_jsonl(bids).splitlines(keepends=True)
    split = len(lines) // 2
    with tempfile.TemporaryDirectory() as tmp:
        feed_path = Path(tmp) / "bids.jsonl"
        feed_path.write_text("".join(lines[:split]))
        deltas, rejected, exposition = asyncio.run(
            drive(service, feed_path, lines[split:])
        )

    want = [
        (c.ptime, "insert" if c.is_insert else "retract", tuple(c.values))
        for c in expected
    ]
    got = [(d["ptime"], d["kind"], tuple(d["values"])) for d in deltas]
    if got != want:
        raise AssertionError(
            f"streamed deltas diverged from the recorded-replay oracle "
            f"({len(got)} streamed vs {len(want)} expected)"
        )
    assert [d["seq"] for d in deltas] == list(range(len(deltas)))

    got_sharded = [
        (d.change.ptime,
         "insert" if d.change.is_insert else "retract",
         tuple(d.change.values))
        for d in sharded_sub.take()
    ]
    if got_sharded != want:
        raise AssertionError(
            "the sharded resident flow diverged from the serial oracle"
        )

    families = parse_exposition(exposition)
    missing = REQUIRED_FAMILIES - set(families)
    assert not missing, f"exposition lost families: {sorted(missing)}"
    assert 'repro_service_admission_rejects_total{code="acl_denied"} 1' in (
        exposition
    )
    PROM_ARTIFACT.write_text(exposition)

    return {
        "deltas": deltas,
        "rejected": rejected,
        "families": families,
        "events": service.session.events_ingested,
    }


def test_service_smoke():
    """The smoke check is also a test: oracle match and artifact land."""
    pieces = run_smoke()
    assert len(pieces["deltas"]) > 0
    assert PROM_ARTIFACT.exists() and PROM_ARTIFACT.stat().st_size > 0


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.parse_args(argv)
    pieces = run_smoke()
    print(
        f"ok: {pieces['events']} events tailed, "
        f"{len(pieces['deltas'])} deltas streamed (serial == sharded == "
        f"oracle), 1 tenant rejected "
        f"[{pieces['rejected']['error']['code']}], "
        f"{len(pieces['families'])} metric families, "
        f"/metrics + /healthz served over HTTP"
    )
    print(f"wrote {PROM_ARTIFACT}")


if __name__ == "__main__":
    main()
