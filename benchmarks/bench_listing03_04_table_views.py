"""Listings 3-4: Q7 as a point-in-time table at 8:21 (full) and 8:13
(partial), demonstrating instantaneous-view semantics over a TVR."""

import pytest
from conftest import fresh_paper_engine, row

from repro.nexmark.queries import q7_paper


@pytest.fixture(scope="module")
def query():
    engine = fresh_paper_engine()
    prepared = engine.query(q7_paper())
    prepared.run()  # warm the execution cache; the bench times rendering
    return prepared


def test_listing03_table_at_821(benchmark, query):
    rel = benchmark(lambda: query.table(at="8:21").sorted(["wstart"]))
    assert rel.tuples == [
        row("8:00", "8:10", "8:09", 5, "D"),
        row("8:10", "8:20", "8:17", 6, "F"),
    ]


def test_listing04_table_at_813(benchmark, query):
    rel = benchmark(lambda: query.table(at="8:13").sorted(["wstart"]))
    assert rel.tuples == [
        row("8:00", "8:10", "8:05", 4, "C"),
        row("8:10", "8:20", "8:11", 3, "B"),
    ]
