"""Metrics-layer benchmark: observability cost and shard-skew report.

Runs a key-partitionable NEXMark aggregation (per-auction bid counts
over tumbling windows) serially and sharded, with a trace collector
attached, and writes ``BENCH_metrics.json`` — the artifact CI uploads:

* per-configuration wall time and events/second (the metrics layer is
  always on, so these times *include* its cost);
* the per-operator flow totals from the :class:`MetricsReport`;
* rows routed per shard and the max/min skew summary;
* the trace summary (batches, changes, watermark advances);
* per-query emit-latency and watermark-lag percentiles (``latency``),
  identical across configurations by the routing invariance argument.

``schema_version`` is bumped whenever the artifact layout changes so
downstream dashboards can dispatch on it (currently 3: the workload
stanza records the execution knobs ``batch_size``/``coalesce_updates``
so runs at different settings are never compared as equals).

Runs under plain pytest (no pytest-benchmark fixtures) and as a
script::

    PYTHONPATH=src python benchmarks/bench_metrics.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import ExecutionConfig, StreamEngine, TraceCollector
from repro.nexmark import NexmarkConfig, generate

NUM_EVENTS = 5_000
SHARD_SWEEP = [1, 2, 4]

SQL = """
    SELECT TB.auction, TB.wend, COUNT(*) AS bids
    FROM Tumble(
      data    => TABLE(Bid),
      timecol => DESCRIPTOR(bidtime),
      dur     => INTERVAL '10' SECONDS) TB
    GROUP BY TB.auction, TB.wend
"""

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_metrics.json"
SCHEMA_VERSION = 3


def _latency(report) -> dict:
    """The run's latency telemetry as plain JSON-able percentiles."""
    telemetry = report.telemetry
    if telemetry is None:  # pragma: no cover — every dataflow attaches one
        return {}
    return telemetry.summary()


def _workload():
    return generate(NexmarkConfig(num_events=NUM_EVENTS, seed=42))


def _run_serial_traced(streams) -> dict:
    """Serial run with a trace collector attached to the dataflow."""
    engine = StreamEngine()
    streams.register_on(engine)
    dataflow = engine.query(SQL).dataflow()
    trace = TraceCollector()
    dataflow.trace = trace
    start = time.perf_counter()
    result = dataflow.run()
    elapsed = time.perf_counter() - start
    return {
        "shards": 1,
        "backend": "serial",
        "seconds": elapsed,
        "events_per_second": NUM_EVENTS / elapsed,
        "totals": result.metrics.totals,
        "late_dropped": result.late_dropped,
        "expired_rows": result.expired_rows,
        "latency": _latency(result.metrics),
        "trace": trace.summary(),
    }


def _run_sharded(streams, shards: int) -> dict:
    engine = StreamEngine(
        config=ExecutionConfig(parallelism=shards, backend="threads")
    )
    streams.register_on(engine)
    query = engine.query(SQL)
    assert query.partition_decision().partitionable
    start = time.perf_counter()
    result = query.run()
    elapsed = time.perf_counter() - start
    report = result.metrics
    return {
        "shards": shards,
        "backend": "threads",
        "seconds": elapsed,
        "events_per_second": NUM_EVENTS / elapsed,
        "totals": report.totals,
        "late_dropped": result.late_dropped,
        "expired_rows": result.expired_rows,
        "latency": _latency(report),
        "shard_rows": report.shard_rows,
        "skew": report.skew,
    }


def collect() -> dict:
    """All configurations; the serial totals anchor the sharded ones."""
    streams = _workload()
    runs = [_run_serial_traced(streams)]
    for shards in SHARD_SWEEP[1:]:
        runs.append(_run_sharded(streams, shards))
    return {
        "schema_version": SCHEMA_VERSION,
        "workload": {
            "events": NUM_EVENTS,
            "seed": 42,
            "query": " ".join(SQL.split()),
            "batch_size": 1,
            "coalesce_updates": False,
        },
        "runs": runs,
    }


def write_artifact(payload: dict) -> Path:
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return ARTIFACT


def test_metrics_bench_produces_artifact():
    """The bench is also the regression gate: every configuration must
    agree on the flow totals (routing-invariant counters), and the
    artifact must land on disk for CI to upload."""
    payload = collect()
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["workload"]["batch_size"] == 1
    assert payload["workload"]["coalesce_updates"] is False
    serial = payload["runs"][0]
    assert serial["latency"]["emit_latency"]["count"] > 0
    for run in payload["runs"][1:]:
        for key in ("rows_in", "rows_out", "late_dropped", "expired_rows"):
            assert run["totals"][key] == serial["totals"][key], key
        assert sum(run["shard_rows"]) == sum(
            payload["runs"][1]["shard_rows"]
        )  # every row routed exactly once, regardless of width
        # Routing invariance: shard-merged latency histograms hold exactly
        # the serial run's samples.
        assert run["latency"] == serial["latency"]
    assert serial["trace"]["batches"] > 0
    assert serial["trace"]["watermark_advances"] > 0
    path = write_artifact(payload)
    assert path.exists() and path.stat().st_size > 0


if __name__ == "__main__":
    data = collect()
    path = write_artifact(data)
    for run in data["runs"]:
        print(
            f"shards={run['shards']:<2} ({run['backend']:>7}): "
            f"{run['seconds']:.3f}s  {run['events_per_second']:,.0f} ev/s  "
            f"rows_out={run['totals']['rows_out']}"
        )
    print(f"wrote {path}")
