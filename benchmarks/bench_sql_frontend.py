"""SQL front-end costs: tokenize, parse, plan, optimize for Listing 2."""

import pytest

from repro.core.schema import Schema, int_col, string_col, timestamp_col
from repro.plan.optimizer import optimize
from repro.plan.planner import Catalog, Planner
from repro.nexmark.model import PAPER_BID_SCHEMA
from repro.nexmark.queries import q7_paper
from repro.sql.functions import default_registry
from repro.sql.lexer import tokenize
from repro.sql.parser import parse


@pytest.fixture(scope="module")
def planner():
    catalog = Catalog()
    catalog.register("Bid", PAPER_BID_SCHEMA, bounded=False)
    return Planner(catalog, default_registry())


SQL = q7_paper(emit="EMIT STREAM AFTER WATERMARK")


def test_tokenize(benchmark):
    tokens = benchmark(lambda: tokenize(SQL))
    assert len(tokens) > 50


def test_parse(benchmark):
    stmt = benchmark(lambda: parse(SQL))
    assert stmt.emit is not None


def test_plan(benchmark, planner):
    plan = benchmark(lambda: planner.plan_sql(SQL))
    assert plan.schema.column_names() == [
        "wstart", "wend", "bidtime", "price", "item",
    ]


def test_optimize(benchmark, planner):
    plan = planner.plan_sql(SQL)
    optimized = benchmark(lambda: optimize(plan))
    # the optimizer recognized the windowed join and derived expiry
    from repro.plan.logical import JoinNode

    def find_join(node):
        if isinstance(node, JoinNode):
            return node
        for child in node.inputs:
            found = find_join(child)
            if found is not None:
                return found
        return None

    join = find_join(optimized.root)
    assert join is not None and join.expire_left is not None
