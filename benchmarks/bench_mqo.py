"""Multi-query optimization benchmark: shared-subplan throughput sweep.

Sweeps the number of resident standing queries (1 → 64) over a fixed
pool of four distinct query shapes — alias-varied tumbling-window
aggregates over one keyed stream — so the count of *distinct* subplans
stays constant while the sharing ratio grows.  Every sweep point runs
twice through the standing-query service: once with ``share_plans``
on (queries with matching fingerprints graft onto one DAG, the shared
prefix executes once per ingested event) and once with it off (one
private dataflow per query, the pre-MQO behaviour).

Two things are asserted on every point, making the bench double as a
regression gate:

* **byte-identity** — each standing query's full delta stream is
  change-for-change identical with sharing on or off (the invariant of
  ``docs/MQO.md``);
* **it pays** — at 16 standing queries the shared service must ingest
  at least 3x the events/second of the unshared one.

Writes ``BENCH_mqo.json`` — the artifact the CI ``mqo-bench`` job
uploads.  Runs under plain pytest and as a script::

    PYTHONPATH=src python benchmarks/bench_mqo.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import ExecutionConfig
from repro.core.schema import Schema, int_col, timestamp_col
from repro.core.tvr import TimeVaryingRelation, ins, wm
from repro.service import StandingQueryService
from repro.service.admission import TenantPolicy

MINUTE = 60_000
NUM_EVENTS = 600
QUERY_SWEEP = [1, 2, 4, 8, 16, 32, 64]
GATE_POINT = 16
GATE_SPEEDUP = 3.0

SCHEMA = Schema(
    [int_col("k"), timestamp_col("ts", event_time=True), int_col("v")]
)

TUMBLE = (
    "Tumble(data => TABLE(S), timecol => DESCRIPTOR(ts), "
    "dur => INTERVAL '2' MINUTE)"
)

#: Four distinct subplans; every query in the sweep is one of these
#: with a per-query output alias (aliases are fingerprint-invariant,
#: so copies of the same shape share their whole plan).
POOL = [
    f"SELECT k, wend, SUM(v) AS a{{i}} FROM {TUMBLE} TS "
    "GROUP BY k, wend EMIT STREAM",
    f"SELECT k, wend, MAX(v) AS a{{i}} FROM {TUMBLE} TS "
    "GROUP BY k, wend EMIT STREAM",
    f"SELECT k, wend, MIN(v) AS a{{i}} FROM {TUMBLE} TS "
    "GROUP BY k, wend EMIT STREAM",
    f"SELECT k, wend, COUNT(*) AS a{{i}} FROM {TUMBLE} TS "
    "GROUP BY k, wend EMIT STREAM",
]

ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_mqo.json"
SCHEMA_VERSION = 1


def make_events(n: int, start: int = 1_000_000) -> list:
    """A deterministic keyed stream with a watermark every 5th event."""
    events, ptime, wm_value = [], start, 0
    for i in range(n):
        ptime += 15_000
        if i % 5 == 4:
            wm_value += 2 * MINUTE
            events.append(wm(ptime, wm_value))
        else:
            events.append(
                ins(ptime, (i % 5, (i * 37_000) % (12 * MINUTE), i))
            )
    return events


def pool_queries(n: int) -> list[str]:
    """``n`` SQL texts cycling the pool, each with a unique alias."""
    return [POOL[i % len(POOL)].format(i=i) for i in range(n)]


def _service(share_plans: bool) -> StandingQueryService:
    svc = StandingQueryService(
        config=ExecutionConfig(share_plans=share_plans),
        default_policy=TenantPolicy(name="*", max_standing_queries=128),
    )
    svc.register_stream("S", TimeVaryingRelation(SCHEMA))
    return svc


def _run(n: int, events: list, share_plans: bool) -> tuple[dict, list]:
    """Admit ``n`` queries, ingest the stream, time the ingest loop."""
    svc = _service(share_plans)
    queries = [svc.submit("bench", sql) for sql in pool_queries(n)]
    start = time.perf_counter()
    for event in events:
        svc.ingest(event, "S")
    elapsed = time.perf_counter() - start
    session = svc.session
    record = {
        "share_plans": share_plans,
        "queries": n,
        "seconds": elapsed,
        "events_per_second": len(events) / elapsed,
        "resident_operators": sum(
            r.flow.resident_operator_count() for r in session.plan_cache.records
        ),
        "shared_subplans": session.shared_subplans(),
        "sharing_ratio": session.sharing_ratio(),
    }
    deltas = [
        q.flow.output_slice_of(q.output_id, 0) for q in queries
    ]
    return record, deltas


def collect() -> dict:
    events = make_events(NUM_EVENTS)
    sweep = []
    for n in QUERY_SWEEP:
        shared, shared_deltas = _run(n, events, share_plans=True)
        unshared, unshared_deltas = _run(n, events, share_plans=False)
        for i, (a, b) in enumerate(zip(shared_deltas, unshared_deltas)):
            assert a == b, (
                f"query {i}/{n}: shared delta stream diverged from unshared"
            )
        sweep.append(
            {
                "queries": n,
                "shared": shared,
                "unshared": unshared,
                "speedup": shared["events_per_second"]
                / unshared["events_per_second"],
            }
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "events": NUM_EVENTS,
        "distinct_subplans": len(POOL),
        "sweep": sweep,
    }


def write_artifact(payload: dict) -> Path:
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return ARTIFACT


def test_mqo_bench_produces_artifact():
    """The bench is also the gate: at 16 standing queries over 4
    distinct subplans, sharing must hold at least a 3x ingest-
    throughput advantage, the sharing ratio must reflect the 4-way
    multicast, and every delta stream must be byte-identical either
    way (asserted inside :func:`collect`)."""
    payload = collect()
    assert payload["schema_version"] == SCHEMA_VERSION
    (point,) = [p for p in payload["sweep"] if p["queries"] == GATE_POINT]
    assert point["speedup"] >= GATE_SPEEDUP, (
        f"sharing speedup at {GATE_POINT} queries only "
        f"{point['speedup']:.2f}x"
    )
    assert point["shared"]["sharing_ratio"] >= 2.0
    assert point["shared"]["resident_operators"] < (
        point["unshared"]["resident_operators"]
    )
    path = write_artifact(payload)
    assert path.exists() and path.stat().st_size > 0


if __name__ == "__main__":
    data = collect()
    path = write_artifact(data)
    for point in data["sweep"]:
        shared, unshared = point["shared"], point["unshared"]
        print(
            f"queries={point['queries']:>3}  "
            f"shared: {shared['events_per_second']:>9,.0f} ev/s "
            f"(ops={shared['resident_operators']}, "
            f"ratio={shared['sharing_ratio']:.2f})  "
            f"unshared: {unshared['events_per_second']:>9,.0f} ev/s "
            f"(ops={unshared['resident_operators']})  "
            f"speedup={point['speedup']:.2f}x"
        )
    print(f"wrote {path}")
