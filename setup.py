"""Legacy setup shim.

The environment has no ``wheel`` package and no network, so PEP-517
editable installs cannot build; this shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` work offline.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
