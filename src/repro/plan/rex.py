"""Row expressions ("rex", after Calcite's RexNode).

The planner translates SQL AST expressions into this small typed IR.
Rex trees are:

* **typed** — every node knows its :class:`~repro.core.schema.SqlType`;
* **positional** — column references are input ordinals, so evaluation
  needs no name lookups;
* **compilable** — :func:`compile_rex` turns a tree into a plain Python
  closure ``tuple -> value``, which is what the executor runs per row.

SQL's three-valued logic is honored: comparisons and arithmetic
propagate NULL, ``AND``/``OR`` follow Kleene semantics, and ``WHERE``
treats unknown as false (the executor filters on ``is True``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

from ..core.errors import ExecutionError, PlanError
from ..core.schema import SqlType

if TYPE_CHECKING:  # avoid a package-level import cycle with repro.sql
    from ..sql.functions import ScalarFunction

__all__ = [
    "Rex",
    "RexInput",
    "RexLiteral",
    "RexCall",
    "RexCase",
    "RexCast",
    "RexCurrentTime",
    "compile_rex",
    "walk",
    "references",
    "shift_inputs",
    "is_literal",
]


@dataclass(frozen=True, slots=True)
class Rex:
    """Base row expression; ``type`` is the statically derived type."""

    type: SqlType = field(kw_only=True)


@dataclass(frozen=True, slots=True)
class RexInput(Rex):
    """A reference to input column ``index``."""

    index: int

    def __str__(self) -> str:
        return f"${self.index}"


@dataclass(frozen=True, slots=True)
class RexLiteral(Rex):
    """A constant value."""

    value: Any

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, slots=True)
class RexCall(Rex):
    """An operator or scalar-function application.

    ``op`` is a normalized operator symbol (``=``, ``AND``, ``+``, ...)
    or an upper-case function name; function calls carry their resolved
    :class:`ScalarFunction` so evaluation does not consult the registry.
    """

    op: str
    args: tuple[Rex, ...]
    function: Optional["ScalarFunction"] = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"{self.op}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True, slots=True)
class RexCase(Rex):
    """``CASE WHEN ... THEN ... ELSE ... END``."""

    whens: tuple[tuple[Rex, Rex], ...]
    else_: Optional[Rex]

    def __str__(self) -> str:
        arms = " ".join(f"WHEN {c} THEN {v}" for c, v in self.whens)
        tail = f" ELSE {self.else_}" if self.else_ is not None else ""
        return f"CASE {arms}{tail} END"


@dataclass(frozen=True, slots=True)
class RexCast(Rex):
    """``CAST(operand AS type)``."""

    operand: Rex

    def __str__(self) -> str:
        return f"CAST({self.operand} AS {self.type})"


@dataclass(frozen=True, slots=True)
class RexCurrentTime(Rex):
    """``CURRENT_TIME``: the progressing processing-time instant.

    Not row-compilable — the planner must absorb it into a temporal
    filter (:class:`~repro.plan.logical.TemporalFilterNode`), whose
    operator evaluates it against the executor's clock.
    """

    def __str__(self) -> str:
        return "CURRENT_TIME"


# --------------------------------------------------------------------
# tree utilities
# --------------------------------------------------------------------


def walk(rex: Rex) -> Iterator[Rex]:
    """Pre-order traversal of a rex tree."""
    yield rex
    if isinstance(rex, RexCall):
        for arg in rex.args:
            yield from walk(arg)
    elif isinstance(rex, RexCase):
        for cond, value in rex.whens:
            yield from walk(cond)
            yield from walk(value)
        if rex.else_ is not None:
            yield from walk(rex.else_)
    elif isinstance(rex, RexCast):
        yield from walk(rex.operand)


def references(rex: Rex) -> set[int]:
    """Input ordinals referenced anywhere in the tree."""
    return {node.index for node in walk(rex) if isinstance(node, RexInput)}


def shift_inputs(rex: Rex, mapping: dict[int, int]) -> Rex:
    """Rewrite input ordinals through ``mapping`` (must be total)."""
    if isinstance(rex, RexInput):
        try:
            return RexInput(mapping[rex.index], type=rex.type)
        except KeyError:
            raise PlanError(f"input ${rex.index} not present in mapping") from None
    if isinstance(rex, RexLiteral):
        return rex
    if isinstance(rex, RexCall):
        return RexCall(
            rex.op,
            tuple(shift_inputs(a, mapping) for a in rex.args),
            function=rex.function,
            type=rex.type,
        )
    if isinstance(rex, RexCase):
        return RexCase(
            tuple(
                (shift_inputs(c, mapping), shift_inputs(v, mapping))
                for c, v in rex.whens
            ),
            shift_inputs(rex.else_, mapping) if rex.else_ is not None else None,
            type=rex.type,
        )
    if isinstance(rex, RexCast):
        return RexCast(shift_inputs(rex.operand, mapping), type=rex.type)
    if isinstance(rex, RexCurrentTime):
        return rex
    raise PlanError(f"cannot rewrite {rex!r}")


def is_literal(rex: Rex) -> bool:
    return isinstance(rex, RexLiteral)


# --------------------------------------------------------------------
# compilation
# --------------------------------------------------------------------

_Evaluator = Callable[[tuple], Any]


def _NONE_EVAL(row: tuple) -> Any:
    """Shared evaluator for ``RexLiteral(None)`` — NULL literals are
    common enough (IS NULL scaffolding, defaults) that each deserves
    the same closure instead of a fresh one per compile."""
    return None


def compile_rex(rex: Rex) -> _Evaluator:
    """Compile a rex tree into a ``row_tuple -> value`` closure."""
    if isinstance(rex, RexInput):
        index = rex.index
        return lambda row: row[index]
    if isinstance(rex, RexLiteral):
        value = rex.value
        if value is None:
            return _NONE_EVAL
        return lambda row: value
    if isinstance(rex, RexCase):
        compiled = [(compile_rex(c), compile_rex(v)) for c, v in rex.whens]
        else_fn = compile_rex(rex.else_) if rex.else_ is not None else None

        def case_eval(row: tuple) -> Any:
            for cond_fn, value_fn in compiled:
                if cond_fn(row) is True:
                    return value_fn(row)
            return else_fn(row) if else_fn is not None else None

        return case_eval
    if isinstance(rex, RexCast):
        return _compile_cast(rex)
    if isinstance(rex, RexCall):
        return _compile_call(rex)
    if isinstance(rex, RexCurrentTime):
        raise ExecutionError(
            "CURRENT_TIME cannot be evaluated per row; it must appear in "
            "a tail-of-stream predicate the planner can turn into a "
            "temporal filter"
        )
    raise ExecutionError(f"cannot compile {rex!r}")


# Cast-target dispatch, built once instead of re-branching on the
# target type inside cast_eval on every row.
_CAST_OPS: dict[SqlType, Callable[[Any], Any]] = {
    SqlType.INT: int,
    SqlType.TIMESTAMP: int,
    SqlType.FLOAT: float,
    SqlType.STRING: str,
    SqlType.BOOL: bool,
}


def _compile_cast(rex: RexCast) -> _Evaluator:
    inner = compile_rex(rex.operand)
    convert = _CAST_OPS.get(rex.type)
    if convert is None:
        # Identity cast: NULL stays NULL and values pass through.
        return inner

    def cast_eval(row: tuple) -> Any:
        value = inner(row)
        if value is None:
            return None
        try:
            return convert(value)
        except (TypeError, ValueError) as exc:
            raise ExecutionError(f"CAST failed: {exc}") from None

    return cast_eval


def _like_to_regex(pattern: str) -> "re.Pattern[str]":
    out = ["^"]
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    out.append("$")
    return re.compile("".join(out), re.DOTALL)


def _compile_call(rex: RexCall) -> _Evaluator:
    op = rex.op
    args = [compile_rex(a) for a in rex.args]

    if op == "AND":
        left, right = args
        # Kleene AND: false dominates, otherwise NULL is unknown.
        def and_eval(row: tuple) -> Any:
            a = left(row)
            if a is False:
                return False
            b = right(row)
            if b is False:
                return False
            if a is None or b is None:
                return None
            return True

        return and_eval

    if op == "OR":
        left, right = args

        def or_eval(row: tuple) -> Any:
            a = left(row)
            if a is True:
                return True
            b = right(row)
            if b is True:
                return True
            if a is None or b is None:
                return None
            return False

        return or_eval

    if op == "NOT":
        (operand,) = args

        def not_eval(row: tuple) -> Any:
            v = operand(row)
            return None if v is None else not v

        return not_eval

    if op == "IS NULL":
        (operand,) = args
        return lambda row: operand(row) is None

    if op == "IS NOT NULL":
        (operand,) = args
        return lambda row: operand(row) is not None

    if op in ("=", "<>", "<", "<=", ">", ">="):
        left, right = args
        comparator = {
            "=": lambda a, b: a == b,
            "<>": lambda a, b: a != b,
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
        }[op]

        def cmp_eval(row: tuple) -> Any:
            a = left(row)
            if a is None:
                return None
            b = right(row)
            if b is None:
                return None
            return comparator(a, b)

        return cmp_eval

    if op in ("+", "-", "*", "/", "%"):
        left, right = args
        if op == "/":

            def div_eval(row: tuple) -> Any:
                a = left(row)
                if a is None:
                    return None
                b = right(row)
                if b is None:
                    return None
                if b == 0:
                    raise ExecutionError("division by zero")
                if isinstance(a, int) and isinstance(b, int):
                    # SQL integer division truncates toward zero.
                    q = abs(a) // abs(b)
                    return q if (a >= 0) == (b >= 0) else -q
                return a / b

            return div_eval
        arith = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "%": lambda a, b: a - b * int(a / b) if b else _div0(),
        }[op]

        def arith_eval(row: tuple) -> Any:
            a = left(row)
            if a is None:
                return None
            b = right(row)
            if b is None:
                return None
            return arith(a, b)

        return arith_eval

    if op == "NEG":
        (operand,) = args

        def neg_eval(row: tuple) -> Any:
            v = operand(row)
            return None if v is None else -v

        return neg_eval

    if op == "||":
        left, right = args

        def concat_eval(row: tuple) -> Any:
            a = left(row)
            if a is None:
                return None
            b = right(row)
            if b is None:
                return None
            return str(a) + str(b)

        return concat_eval

    if op == "LIKE":
        left, right = args
        pattern_rex = rex.args[1]
        if isinstance(pattern_rex, RexLiteral) and pattern_rex.value is not None:
            regex = _like_to_regex(str(pattern_rex.value))

            def like_const_eval(row: tuple) -> Any:
                v = left(row)
                return None if v is None else bool(regex.match(str(v)))

            return like_const_eval

        def like_eval(row: tuple) -> Any:
            v = left(row)
            if v is None:
                return None
            p = right(row)
            if p is None:
                return None
            return bool(_like_to_regex(str(p)).match(str(v)))

        return like_eval

    if op == "IN":
        operand, *items = args

        def in_eval(row: tuple) -> Any:
            v = operand(row)
            if v is None:
                return None
            saw_null = False
            for item in items:
                candidate = item(row)
                if candidate is None:
                    saw_null = True
                elif candidate == v:
                    return True
            return None if saw_null else False

        return in_eval

    if rex.function is not None:
        fn = rex.function

        if fn.null_propagating:

            def fn_eval(row: tuple) -> Any:
                values = [a(row) for a in args]
                if any(v is None for v in values):
                    return None
                return fn.impl(*values)

            return fn_eval

        def fn_eval_raw(row: tuple) -> Any:
            return fn.impl(*(a(row) for a in args))

        return fn_eval_raw

    raise ExecutionError(f"no evaluator for operator {op!r}")


def _div0() -> Any:
    raise ExecutionError("division by zero")
