"""Partition-key analysis: can a plan be sharded by key?

The sharded runtime (:mod:`repro.runtime`) executes N independent
copies of a dataflow and routes every source row to exactly one of them
by hashing a *partition key*.  That reproduces the serial result if and
only if rows that ever interact inside a stateful operator always land
on the same shard — the classic keyed-partitioning argument of
distributed streaming SQL engines (Flink, Samza; see *Fast Data
Management with Distributed Streaming SQL*).

This module decides, from the optimized logical plan alone, whether
such a key exists and how each source routes by it:

* every GROUP BY must contain the key (rows of one group co-locate);
* every join must carry the key through an equi-join column pair
  (matching rows co-locate);
* operators whose *output order* is driven by watermark advances or
  processing-time timers (OVER, MATCH_RECOGNIZE, session windows,
  temporal joins, time-progressing filters) force a serial fallback:
  their watermark-triggered emissions interleave shard-locally, which
  cannot reproduce the serial arrival-order interleaving.

The analysis walks the tree bottom-up propagating *candidates*: sets of
output columns whose values are traceable, verbatim, to one column of
every source underneath (plus optionally a tumbling-window alignment of
it, so ``GROUP BY wend`` partitions by window).  A candidate that
survives to the root is a legal partitioning; the decision records the
winning candidate or the reason none exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.times import Duration, align_to_window, fmt_duration
from .logical import (
    AggregateNode,
    FilterNode,
    JoinKind,
    JoinNode,
    LogicalNode,
    OverNode,
    ProjectNode,
    ScanNode,
    SemiJoinNode,
    SetOpNode,
    SortNode,
    TemporalFilterNode,
    TemporalJoinNode,
    UnionNode,
    ValuesNode,
    WindowKind,
    WindowNode,
)
from .match import MatchRecognizeNode
from .planner import QueryPlan
from .rex import RexInput

__all__ = ["Route", "PartitionSpec", "PartitionDecision", "analyze_partitioning"]


@dataclass(frozen=True)
class Route:
    """How one source routes its rows to shards.

    ``column`` is the source column whose value is hashed.  ``window``
    optionally aligns the value to a tumbling-window edge first —
    ``("end", size, offset)`` or ``("start", size, offset)`` — so that
    queries keyed only by ``wend``/``wstart`` can still shard: every row
    of one window routes to the same shard.
    """

    column: int
    window: Optional[tuple[str, Duration, Duration]] = None

    def key_of(self, values: tuple) -> object:
        value = values[self.column]
        if self.window is None or value is None:
            return value
        edge, size, offset = self.window
        start = align_to_window(value, size, offset)
        return start + size if edge == "end" else start

    def describe(self, source: str, column_name: str) -> str:
        if self.window is None:
            return f"{source}.{column_name}"
        edge, size, _ = self.window
        return f"tumble_{edge}({source}.{column_name}, {fmt_duration(size)})"


@dataclass
class PartitionSpec:
    """A complete routing decision: one :class:`Route` per source."""

    routes: dict[str, Route]  # lower-cased source name -> route
    description: str

    def shard_of(self, source: str, values: tuple, shards: int) -> Optional[int]:
        """The shard owning this row, or ``None`` to broadcast.

        Sources the query never reads have no route; their row events
        are no-ops in every shard, so broadcasting them preserves the
        serial executor's bookkeeping (``last_ptime``) without
        duplicating any output.
        """
        route = self.routes.get(source.lower())
        if route is None:
            return None
        return stable_hash(route.key_of(values)) % shards


@dataclass(frozen=True)
class PartitionDecision:
    """The analyzer's verdict: a spec, or the reason to stay serial."""

    spec: Optional[PartitionSpec]
    reason: str

    @property
    def partitionable(self) -> bool:
        return self.spec is not None


def stable_hash(value: object) -> int:
    """A process-stable hash for routing (Python's ``hash`` is salted)."""
    import zlib

    return zlib.crc32(repr(value).encode("utf-8", "backslashreplace"))


# ---------------------------------------------------------------------------
# the bottom-up candidate walk
# ---------------------------------------------------------------------------


class _Fallback(Exception):
    """Raised where the plan shape rules out key-partitioning."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True)
class _Cand:
    """One partitioning candidate at some node.

    ``out_cols`` — output ordinals of the node that carry the key value
    (empty once a projection drops it: still a legal partitioning, but
    no stateful operator above can be keyed by it any more).
    ``routes`` — (leaf index, Route) for every scan leaf underneath.
    """

    out_cols: frozenset[int]
    routes: tuple[tuple[int, Route], ...]

    def shifted(self, delta: int) -> "_Cand":
        return _Cand(frozenset(c + delta for c in self.out_cols), self.routes)


@dataclass
class _Leaves:
    """Scan leaves in compile order: (source name, column names)."""

    entries: list[tuple[str, tuple[str, ...]]] = field(default_factory=list)


_MAX_CANDIDATES = 64


def _cap(cands: list[_Cand]) -> list[_Cand]:
    return cands[:_MAX_CANDIDATES]


def _analyze(node: LogicalNode, leaves: _Leaves) -> list[_Cand]:
    if isinstance(node, ScanNode):
        idx = len(leaves.entries)
        leaves.entries.append(
            (node.name.lower(), tuple(c.name for c in node.schema.columns))
        )
        return [
            _Cand(frozenset([i]), ((idx, Route(i)),))
            for i in range(len(node.schema))
        ]
    if isinstance(node, ValuesNode):
        raise _Fallback("inline VALUES rows are a broadcast prelude, not routable")
    if isinstance(node, TemporalFilterNode):
        raise _Fallback(
            "time-progressing filters emit on processing-time timers"
        )
    if isinstance(node, OverNode):
        raise _Fallback(
            "OVER windows emit rows on watermark advances in arrival order"
        )
    if isinstance(node, MatchRecognizeNode):
        raise _Fallback(
            "MATCH_RECOGNIZE emits matches on watermark advances in arrival order"
        )
    if isinstance(node, TemporalJoinNode):
        raise _Fallback("temporal joins emit enriched rows on watermark advances")
    if isinstance(node, SortNode):
        raise _Fallback("ORDER BY / LIMIT ranks the whole result globally")
    if isinstance(node, FilterNode):
        return _analyze(node.input, leaves)
    if isinstance(node, ProjectNode):
        cands = _analyze(node.input, leaves)
        forwarded: dict[int, list[int]] = {}
        for out_idx, expr in enumerate(node.exprs):
            if isinstance(expr, RexInput):
                forwarded.setdefault(expr.index, []).append(out_idx)
        out = []
        for cand in cands:
            mapped = frozenset(
                o for c in cand.out_cols for o in forwarded.get(c, ())
            )
            out.append(_Cand(mapped, cand.routes))
        return out
    if isinstance(node, WindowNode):
        if node.kind is WindowKind.SESSION:
            raise _Fallback("session windows close on watermark advances")
        cands = _analyze(node.input, leaves)
        out = [cand.shifted(2) for cand in cands]
        if node.kind is WindowKind.TUMBLE:
            # wstart/wend are deterministic alignments of the time
            # column, so a window edge is itself routable: the router
            # recomputes the same alignment per row.
            offset = node.offset or 0
            for cand in cands:
                if node.timecol not in cand.out_cols:
                    continue
                if any(route.window is not None for _, route in cand.routes):
                    continue  # don't stack window alignments
                for ordinal, edge in ((WindowNode.WEND, "end"),
                                      (WindowNode.WSTART, "start")):
                    routes = tuple(
                        (leaf, Route(route.column, (edge, node.size, offset)))
                        for leaf, route in cand.routes
                    )
                    out.append(_Cand(frozenset([ordinal]), routes))
        return _cap(out)
    if isinstance(node, AggregateNode):
        if not node.group_indices:
            raise _Fallback("a global aggregate keeps one group for all rows")
        cands = _analyze(node.input, leaves)
        group = set(node.group_indices)
        out = []
        for cand in cands:
            if not (cand.out_cols & group):
                continue
            mapped = frozenset(
                pos
                for pos, in_idx in enumerate(node.group_indices)
                if in_idx in cand.out_cols
            )
            out.append(_Cand(mapped, cand.routes))
        if not out:
            raise _Fallback(
                "no GROUP BY key is traceable to a single column of every source"
            )
        return out
    if isinstance(node, JoinNode):
        if node.kind is JoinKind.CROSS or node.condition is None:
            raise _Fallback("a cross join pairs rows regardless of any key")
        if not node.hash_left:
            raise _Fallback("the join condition has no equi-key to partition on")
        left_cands = _analyze(node.left, leaves)
        right_cands = _analyze(node.right, leaves)
        left_width = len(node.left.schema)
        out = []
        seen = set()
        for lcol, rcol in zip(node.hash_left, node.hash_right):
            for lc in left_cands:
                if lcol not in lc.out_cols:
                    continue
                for rc in right_cands:
                    if rcol not in rc.out_cols:
                        continue
                    # A null-extended output row carries NULLs on the
                    # padded side, so only non-padded columns still
                    # carry the key value upward.
                    out_cols = set()
                    if node.kind is not JoinKind.FULL:
                        out_cols |= lc.out_cols
                    if node.kind is JoinKind.INNER:
                        out_cols |= {c + left_width for c in rc.out_cols}
                    cand = _Cand(frozenset(out_cols), lc.routes + rc.routes)
                    if cand not in seen:
                        seen.add(cand)
                        out.append(cand)
        if not out:
            raise _Fallback(
                "no equi-join key is traceable to a single column of every source"
            )
        return _cap(out)
    if isinstance(node, SemiJoinNode):
        if not isinstance(node.left_expr, RexInput):
            raise _Fallback("the IN probe is a computed expression, not a column")
        left_cands = _analyze(node.left, leaves)
        right_cands = _analyze(node.right, leaves)
        probe = node.left_expr.index
        out = []
        for lc in left_cands:
            if probe not in lc.out_cols:
                continue
            for rc in right_cands:
                if 0 not in rc.out_cols:
                    continue
                out.append(_Cand(lc.out_cols, lc.routes + rc.routes))
        if not out:
            raise _Fallback(
                "the IN membership key is not traceable to a single source column"
            )
        return _cap(out)
    if isinstance(node, (UnionNode, SetOpNode)):
        # Rows interact positionally (set ops by full-row equality,
        # unions feed shared state above), so a candidate must surface
        # at the same output ordinals in every branch.
        branch_cands = [_analyze(child, leaves) for child in node.inputs]
        merged = branch_cands[0]
        for other in branch_cands[1:]:
            combined = []
            for a in merged:
                for b in other:
                    common = a.out_cols & b.out_cols
                    if common:
                        combined.append(_Cand(common, a.routes + b.routes))
            merged = _cap(combined)
        if not merged:
            kind = "UNION" if isinstance(node, UnionNode) else node.op
            raise _Fallback(
                f"no column is forwarded by every {kind} branch to the same position"
            )
        return merged
    raise _Fallback(f"{type(node).__name__} is not key-partitionable")


def analyze_partitioning(plan: QueryPlan) -> PartitionDecision:
    """Decide whether ``plan`` can run sharded, and how to route."""
    leaves = _Leaves()
    try:
        cands = _analyze(plan.root, leaves)
    except _Fallback as fallback:
        return PartitionDecision(spec=None, reason=fallback.reason)

    names = leaves.entries
    viable: list[tuple[tuple, dict[str, Route]]] = []
    for cand in cands:
        per_source: dict[str, Route] = {}
        ok = len(cand.routes) == len(names)
        for leaf_idx, route in cand.routes:
            source = names[leaf_idx][0]
            if per_source.setdefault(source, route) != route:
                ok = False
                break
        if ok:
            # Rank: plain column routes before window-aligned ones,
            # then a stable textual order for determinism.
            rank = (
                sum(1 for r in per_source.values() if r.window is not None),
                tuple(sorted(
                    (src, r.column, r.window or ()) for src, r in per_source.items()
                )),
            )
            viable.append((rank, per_source))
    if not viable:
        return PartitionDecision(
            spec=None,
            reason="the same source is scanned with incompatible partition keys",
        )
    viable.sort(key=lambda item: item[0])
    routes = viable[0][1]
    col_names = {src: cols for src, cols in names}
    description = ", ".join(
        route.describe(src, col_names[src][route.column])
        for src, route in sorted(routes.items())
    )
    return PartitionDecision(
        spec=PartitionSpec(routes=routes, description=description),
        reason=f"keyed by {description}",
    )
