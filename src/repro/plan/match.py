"""Planning for MATCH_RECOGNIZE (SQL:2016 row pattern matching).

Section 6.1 of the paper highlights MATCH_RECOGNIZE as the SQL:2016
feature that, combined with event time semantics, unlocks complex event
processing in streaming SQL.  This module plans the supported subset:

* ``PARTITION BY`` columns, ``ORDER BY`` a watermark-aligned event time
  column (which is what makes deterministic matching over out-of-order
  input possible — rows are sequenced by event time as the watermark
  stabilizes them);
* concatenation patterns of symbols with greedy ``? * +`` quantifiers;
* ``DEFINE`` predicates over the current row (a symbol qualifier on a
  column, e.g. ``UP.price``, refers to the row being classified);
* ``MEASURES`` over the matched rows: ``SYM.col`` (last row of SYM),
  ``FIRST/LAST(SYM.col)``, ``COUNT/SUM/MIN/MAX/AVG(SYM.col)``, and
  arithmetic over those.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from ..core.errors import PlanError, ValidationError
from ..core.schema import Column, Schema, SqlType
from ..sql import ast
from .logical import LogicalNode

__all__ = ["MatchMeasure", "MatchRecognizeNode", "translate_measure"]

#: a compiled measure: symbol->rows mapping to a value
MeasureFn = Callable[[dict[str, list[tuple]]], Any]


@dataclass(frozen=True)
class MatchMeasure:
    """One compiled MEASURES entry."""

    name: str
    type: SqlType
    evaluate: MeasureFn


class MatchRecognizeNode(LogicalNode):
    """Logical row-pattern-matching operator.

    Output schema: the partition columns followed by the measures.
    Matches are only ever *appended* (each is emitted once its rows are
    watermark-stable), so the output is an insert-only TVR; no row is
    individually "complete" in the Extension-5 sense before the input
    ends, hence ``completion_indices`` is ``None``.
    """

    def __init__(
        self,
        input: LogicalNode,
        partition_indices: Sequence[int],
        order_index: int,
        measures: Sequence[MatchMeasure],
        pattern: Sequence[tuple[str, str]],
        defines: dict[str, Callable[[tuple], Any]],
        after_match: str = "PAST LAST ROW",
    ):
        order_col = input.schema.columns[order_index]
        if not order_col.event_time:
            raise PlanError(
                "MATCH_RECOGNIZE ORDER BY must be a watermarked event "
                f"time column; {order_col.name!r} is not (out-of-order "
                "input could not be sequenced deterministically)"
            )
        symbols = {sym for sym, _ in pattern}
        for sym in defines:
            if sym not in symbols:
                raise PlanError(f"DEFINE for {sym} not present in PATTERN")
        self.input = input
        self.partition_indices = tuple(partition_indices)
        self.order_index = order_index
        self.measures = tuple(measures)
        self.pattern = tuple(pattern)
        self.defines = dict(defines)
        self.after_match = after_match
        self.inputs = (input,)
        cols = [
            input.schema.columns[i].degraded() for i in self.partition_indices
        ]
        cols.extend(Column(m.name, m.type) for m in measures)
        self.schema = Schema(cols)
        self.bounded = input.bounded
        self.completion_indices = None
        self.emit_key_indices = ()

    def with_inputs(self, inputs: Sequence[LogicalNode]) -> "MatchRecognizeNode":
        (child,) = inputs
        return MatchRecognizeNode(
            child,
            self.partition_indices,
            self.order_index,
            self.measures,
            self.pattern,
            self.defines,
            self.after_match,
        )

    def _describe(self) -> str:
        pattern = " ".join(f"{s}{q}" for s, q in self.pattern)
        return f"MatchRecognize(pattern=({pattern}))"


_AGG_FNS = {"FIRST", "LAST", "COUNT", "SUM", "MIN", "MAX", "AVG"}


def translate_measure(
    expr: ast.Expr,
    schema: Schema,
    symbols: set[str],
    sql: Optional[str] = None,
) -> tuple[MeasureFn, SqlType]:
    """Compile a MEASURES expression to a function of the symbol map."""

    def error(message: str, node: ast.Node) -> ValidationError:
        return ValidationError(message, sql, node.pos)

    def symbol_column(ref: ast.ColumnRef) -> tuple[str, int]:
        if len(ref.parts) != 2:
            raise error(
                f"measure column {ref} must be qualified by a pattern "
                f"symbol (e.g. A.price)",
                ref,
            )
        symbol, column = ref.parts
        if symbol.upper() not in symbols:
            raise error(f"{symbol!r} is not a pattern symbol", ref)
        return symbol.upper(), schema.index_of(column)

    def recurse(node: ast.Expr) -> tuple[MeasureFn, SqlType]:
        if isinstance(node, ast.Literal):
            value = node.value
            lit_type = {
                bool: SqlType.BOOL,
                int: SqlType.INT,
                float: SqlType.FLOAT,
                str: SqlType.STRING,
                type(None): SqlType.NULL,
            }[type(value)]
            return (lambda match: value), lit_type
        if isinstance(node, ast.IntervalLiteral):
            millis = node.millis
            return (lambda match: millis), SqlType.INTERVAL
        if isinstance(node, ast.ColumnRef):
            symbol, index = symbol_column(node)
            col_type = schema.columns[index].type

            def last_of(match: dict[str, list[tuple]]) -> Any:
                rows = match.get(symbol)
                return rows[-1][index] if rows else None

            return last_of, col_type
        if isinstance(node, ast.FunctionCall) and node.name in _AGG_FNS:
            if len(node.args) != 1 or not isinstance(node.args[0], ast.ColumnRef):
                raise error(
                    f"{node.name} in MEASURES takes one symbol-qualified "
                    f"column",
                    node,
                )
            symbol, index = symbol_column(node.args[0])
            col_type = schema.columns[index].type
            fn_name = node.name

            def agg(match: dict[str, list[tuple]]) -> Any:
                rows = match.get(symbol, [])
                values = [r[index] for r in rows if r[index] is not None]
                if fn_name == "COUNT":
                    return len(values)
                if not values:
                    return None
                if fn_name == "FIRST":
                    return rows[0][index]
                if fn_name == "LAST":
                    return rows[-1][index]
                if fn_name == "SUM":
                    return sum(values)
                if fn_name == "MIN":
                    return min(values)
                if fn_name == "MAX":
                    return max(values)
                return sum(values) / len(values)  # AVG

            out_type = {
                "COUNT": SqlType.INT,
                "AVG": SqlType.FLOAT,
            }.get(fn_name, col_type)
            return agg, out_type
        if isinstance(node, ast.BinaryOp) and node.op in ("+", "-", "*", "/", "%"):
            left_fn, left_type = recurse(node.left)
            right_fn, right_type = recurse(node.right)
            op = node.op

            def arith(match: dict[str, list[tuple]]) -> Any:
                a = left_fn(match)
                b = right_fn(match)
                if a is None or b is None:
                    return None
                if op == "+":
                    return a + b
                if op == "-":
                    return a - b
                if op == "*":
                    return a * b
                if op == "/":
                    return a / b if b else None
                return a % b

            result_type = (
                SqlType.FLOAT
                if SqlType.FLOAT in (left_type, right_type) or op == "/"
                else left_type
            )
            if left_type is SqlType.TIMESTAMP and right_type is SqlType.TIMESTAMP:
                result_type = SqlType.INTERVAL
            elif SqlType.TIMESTAMP in (left_type, right_type):
                result_type = SqlType.TIMESTAMP
            return arith, result_type
        raise error(
            f"unsupported MEASURES expression {type(node).__name__}", node
        )

    return recurse(expr)
