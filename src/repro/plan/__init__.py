"""Query planning: row expressions, logical operators, planner, optimizer.

Import :mod:`repro.plan.planner` / :mod:`repro.plan.optimizer` directly
where needed; this package namespace re-exports the logical algebra and
the physical aggregation planner (:mod:`repro.plan.physical`), which
decides whether a sharded run splits decomposable aggregates into
shard-local partials plus a merge-stage combine.
"""

from . import rex
from .fingerprint import (
    node_fingerprint,
    node_fingerprints,
    plan_fingerprint,
    subtree_size,
)
from .logical import (
    AggCall,
    AggregateNode,
    FilterNode,
    JoinKind,
    JoinNode,
    LogicalNode,
    PartialAggregateNode,
    ProjectNode,
    ScanNode,
    SortNode,
    UnionNode,
    ValuesNode,
    WindowKind,
    WindowNode,
)
from .physical import (
    MIN_COMBINE_FANIN,
    PhysicalDecision,
    TwoPhaseSplit,
    estimate_fan_in,
    plan_physical,
    split_eligibility,
)

__all__ = [
    "rex",
    "node_fingerprint",
    "node_fingerprints",
    "plan_fingerprint",
    "subtree_size",
    "LogicalNode",
    "ScanNode",
    "FilterNode",
    "ProjectNode",
    "WindowKind",
    "WindowNode",
    "AggCall",
    "AggregateNode",
    "PartialAggregateNode",
    "JoinKind",
    "JoinNode",
    "UnionNode",
    "SortNode",
    "ValuesNode",
    # physical aggregation planning (provisional surface)
    "MIN_COMBINE_FANIN",
    "PhysicalDecision",
    "TwoPhaseSplit",
    "estimate_fan_in",
    "plan_physical",
    "split_eligibility",
]
