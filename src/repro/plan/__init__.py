"""Query planning: row expressions, logical operators, planner, optimizer.

Import :mod:`repro.plan.planner` / :mod:`repro.plan.optimizer` directly
where needed; this package namespace re-exports the logical algebra.
"""

from . import rex
from .fingerprint import (
    node_fingerprint,
    node_fingerprints,
    plan_fingerprint,
    subtree_size,
)
from .logical import (
    AggCall,
    AggregateNode,
    FilterNode,
    JoinKind,
    JoinNode,
    LogicalNode,
    ProjectNode,
    ScanNode,
    SortNode,
    UnionNode,
    ValuesNode,
    WindowKind,
    WindowNode,
)

__all__ = [
    "rex",
    "node_fingerprint",
    "node_fingerprints",
    "plan_fingerprint",
    "subtree_size",
    "LogicalNode",
    "ScanNode",
    "FilterNode",
    "ProjectNode",
    "WindowKind",
    "WindowNode",
    "AggCall",
    "AggregateNode",
    "JoinKind",
    "JoinNode",
    "UnionNode",
    "SortNode",
    "ValuesNode",
]
