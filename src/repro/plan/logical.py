"""Logical plan operators.

A logical plan is a tree of :class:`LogicalNode`.  Beyond the usual
schema propagation, every node derives three pieces of streaming
metadata the paper's semantics hinge on:

* **boundedness** — whether the relation is known finite (all inputs
  asserted complete).  Extension 2's legality check ("every GROUP BY
  over an unbounded input needs an event-time key") reads this.
* **completion columns** — output ordinals whose values upper-bound
  when a row can still change.  A row is *complete* once the relation's
  watermark passes all of its completion column values; ``EMIT AFTER
  WATERMARK`` materializes exactly the complete rows.  ``None`` means
  completeness is unknowable (only a fully-consumed input is complete).
* **emit keys** — output ordinals identifying the *aggregate* a row
  belongs to (the window/group).  ``EMIT STREAM``'s ``ver`` counter and
  ``EMIT AFTER DELAY``'s per-aggregate timers are keyed on these.

Event-time alignment follows the conservative rule Flink uses
(Appendix B.2.3): a column stays watermark-aligned only when forwarded
verbatim; any computed expression degrades to a plain TIMESTAMP.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.errors import PlanError
from ..core.schema import Column, Schema, SqlType
from ..core.times import Duration, fmt_duration
from ..sql.functions import AggregateFunction
from .rex import Rex, RexInput

__all__ = [
    "LogicalNode",
    "ScanNode",
    "FilterNode",
    "ProjectNode",
    "TemporalBound",
    "TemporalFilterNode",
    "WindowKind",
    "WindowNode",
    "AggCall",
    "AggregateNode",
    "PartialAggregateNode",
    "OverNode",
    "JoinKind",
    "JoinNode",
    "SemiJoinNode",
    "TemporalJoinNode",
    "UnionNode",
    "SetOpNode",
    "SortNode",
    "ValuesNode",
]

CompletionIndices = Optional[tuple[int, ...]]


class LogicalNode:
    """Base class; subclasses set the derived metadata in __init__."""

    inputs: tuple["LogicalNode", ...]
    schema: Schema
    bounded: bool
    completion_indices: CompletionIndices
    emit_key_indices: tuple[int, ...]

    # -- plumbing -------------------------------------------------------

    def with_inputs(self, inputs: Sequence["LogicalNode"]) -> "LogicalNode":
        """A copy of this node over different inputs (used by rewrite rules)."""
        raise NotImplementedError

    def _describe(self) -> str:
        """One-line description used by explain()."""
        raise NotImplementedError

    def explain(self, indent: int = 0, verbose: bool = False) -> str:
        """Human-readable plan tree.

        ``verbose`` appends the streaming metadata each node derives:
        boundedness, the watermark-aligned columns, and the completion
        columns that drive EMIT AFTER WATERMARK.
        """
        line = "  " * indent + self._describe()
        if verbose:
            notes = [("bounded" if self.bounded else "unbounded")]
            aligned = [
                c.name for c in self.schema.columns if c.event_time
            ]
            if aligned:
                notes.append(f"aligned={aligned}")
            if self.completion_indices is not None:
                names = [
                    self.schema.columns[i].name
                    for i in self.completion_indices
                ]
                notes.append(f"complete_when={names}<=wm")
            line += f"  [{', '.join(notes)}]"
        parts = [line]
        parts.extend(
            child.explain(indent + 1, verbose) for child in self.inputs
        )
        return "\n".join(parts)

    def __repr__(self) -> str:
        return self._describe()


def _map_through_projection(
    indices: CompletionIndices, exprs: Sequence[Rex]
) -> CompletionIndices:
    """Map input completion ordinals through a projection.

    Returns ``None`` if any completion column is not forwarded verbatim:
    dropping the column loses the information needed to ever prove a
    row complete.
    """
    if indices is None:
        return None
    forwarded: dict[int, int] = {}
    for out_idx, expr in enumerate(exprs):
        if isinstance(expr, RexInput) and expr.index not in forwarded:
            forwarded[expr.index] = out_idx
    mapped = []
    for idx in indices:
        if idx not in forwarded:
            return None
        mapped.append(forwarded[idx])
    return tuple(mapped)


def _map_keys_through_projection(
    indices: tuple[int, ...], exprs: Sequence[Rex]
) -> tuple[int, ...]:
    """Like :func:`_map_through_projection` but drops lost keys."""
    forwarded: dict[int, int] = {}
    for out_idx, expr in enumerate(exprs):
        if isinstance(expr, RexInput) and expr.index not in forwarded:
            forwarded[expr.index] = out_idx
    return tuple(forwarded[i] for i in indices if i in forwarded)


class ScanNode(LogicalNode):
    """Reads a registered stream or table."""

    def __init__(self, name: str, schema: Schema, bounded: bool):
        self.name = name
        self.inputs = ()
        self.schema = schema
        self.bounded = bounded
        et = tuple(i for i, c in enumerate(schema.columns) if c.event_time)
        self.completion_indices = et if et else None
        self.emit_key_indices = ()

    def with_inputs(self, inputs: Sequence[LogicalNode]) -> "ScanNode":
        assert not inputs
        return self

    def _describe(self) -> str:
        kind = "table" if self.bounded else "stream"
        return f"Scan({self.name} {kind})"


class FilterNode(LogicalNode):
    """Keeps rows whose predicate evaluates to TRUE."""

    def __init__(self, input: LogicalNode, condition: Rex):
        if condition.type not in (SqlType.BOOL, SqlType.NULL):
            raise PlanError(f"filter condition must be BOOLEAN, got {condition.type}")
        self.input = input
        self.condition = condition
        self.inputs = (input,)
        self.schema = input.schema
        self.bounded = input.bounded
        self.completion_indices = input.completion_indices
        self.emit_key_indices = input.emit_key_indices

    def with_inputs(self, inputs: Sequence[LogicalNode]) -> "FilterNode":
        (child,) = inputs
        return FilterNode(child, self.condition)

    def _describe(self) -> str:
        return f"Filter({self.condition})"


class ProjectNode(LogicalNode):
    """Computes one output column per expression."""

    def __init__(self, input: LogicalNode, exprs: Sequence[Rex], names: Sequence[str]):
        if len(exprs) != len(names):
            raise PlanError("projection exprs and names must align")
        self.input = input
        self.exprs = tuple(exprs)
        self.names = tuple(names)
        self.inputs = (input,)
        cols = []
        for expr, name in zip(self.exprs, self.names):
            aligned = (
                isinstance(expr, RexInput)
                and input.schema.columns[expr.index].event_time
            )
            cols.append(Column(name, expr.type, event_time=aligned))
        self.schema = Schema(cols)
        self.bounded = input.bounded
        self.completion_indices = _map_through_projection(
            input.completion_indices, self.exprs
        )
        self.emit_key_indices = _map_keys_through_projection(
            input.emit_key_indices, self.exprs
        )

    def with_inputs(self, inputs: Sequence[LogicalNode]) -> "ProjectNode":
        (child,) = inputs
        return ProjectNode(child, self.exprs, self.names)

    def _describe(self) -> str:
        cols = ", ".join(
            f"{expr} AS {name}" for expr, name in zip(self.exprs, self.names)
        )
        return f"Project({cols})"


@dataclass(frozen=True)
class TemporalBound:
    """One time-progressing predicate bound on a row.

    The row satisfies the predicate while ``CURRENT_TIME`` is inside the
    bound: ``kind='before'`` means visible while ``now < row[time_index]
    + offset`` (a tail-of-stream view, rows *leave* over time);
    ``kind='from'`` means visible once ``now >= row[time_index] +
    offset`` (rows *enter* over time).
    """

    time_index: int
    offset: Duration
    kind: str  # 'before' | 'from'


class TemporalFilterNode(LogicalNode):
    """A filter involving CURRENT_TIME (Section 8 time-progressing
    expressions).

    Unlike a plain filter, rows enter and leave the output purely by the
    passage of processing time, so the physical operator is stateful and
    timer-driven.  Because every row eventually leaves a tail-of-stream
    view, no row is ever *complete*; completion metadata is dropped.
    """

    def __init__(self, input: LogicalNode, bounds: Sequence[TemporalBound]):
        if not bounds:
            raise PlanError("temporal filter requires at least one bound")
        self.input = input
        self.bounds = tuple(bounds)
        self.inputs = (input,)
        self.schema = input.schema
        self.bounded = input.bounded
        self.completion_indices = None
        self.emit_key_indices = input.emit_key_indices

    def with_inputs(self, inputs: Sequence[LogicalNode]) -> "TemporalFilterNode":
        (child,) = inputs
        return TemporalFilterNode(child, self.bounds)

    def _describe(self) -> str:
        parts = []
        for bound in self.bounds:
            op = "now <" if bound.kind == "before" else "now >="
            parts.append(
                f"{op} ${bound.time_index} + {fmt_duration(bound.offset)}"
            )
        return f"TemporalFilter({' AND '.join(parts)})"


class WindowKind(enum.Enum):
    TUMBLE = "Tumble"
    HOP = "Hop"
    SESSION = "Session"


class WindowNode(LogicalNode):
    """A windowing TVF (Extension 3): Tumble, Hop, or Session.

    Output schema is ``wstart, wend`` followed by all input columns
    (Listing 5's column order).  Only ``wend`` is marked as a
    watermark-aligned event time column: the watermark contract says
    future *timestamps* exceed the watermark, and a future row's
    ``wend`` (= aligned timestamp + size) therefore does too — but its
    ``wstart`` may still fall at or before the watermark.  ``wstart``
    effectively carries a watermark shifted by the window size; our
    single-watermark-per-relation model handles that the way Flink does
    (Appendix B.2.3): conservatively degrade the column.  Grouping by
    ``wstart`` still works because the planner injects the sibling
    ``wend`` as an extra grouping key.
    """

    WSTART = 0
    WEND = 1

    def __init__(
        self,
        input: LogicalNode,
        kind: WindowKind,
        timecol: int,
        size: Duration,
        slide: Optional[Duration] = None,
        offset: Duration = 0,
        key_indices: tuple[int, ...] = (),
    ):
        source_col = input.schema.columns[timecol]
        if not source_col.event_time:
            raise PlanError(
                f"{kind.value} timecol must be a watermarked event time "
                f"column; {source_col.name!r} is not"
            )
        if size <= 0:
            raise PlanError(f"{kind.value} window size must be positive")
        if kind is WindowKind.HOP:
            if slide is None or slide <= 0:
                raise PlanError("Hop requires a positive slide")
        elif kind is WindowKind.SESSION:
            if key_indices is None:
                key_indices = ()
        else:
            slide = None
        self.input = input
        self.kind = kind
        self.timecol = timecol
        self.size = size
        self.slide = slide
        self.offset = offset
        self.key_indices = tuple(key_indices)
        self.inputs = (input,)
        window_cols = [
            Column("wstart", SqlType.TIMESTAMP),
            Column("wend", SqlType.TIMESTAMP, event_time=True),
        ]
        self.schema = Schema(window_cols).concat(input.schema)
        self.bounded = input.bounded
        if input.completion_indices is None:
            self.completion_indices = None
        else:
            self.completion_indices = tuple(
                i + 2 for i in input.completion_indices
            )
        self.emit_key_indices = tuple(i + 2 for i in input.emit_key_indices)

    def with_inputs(self, inputs: Sequence[LogicalNode]) -> "WindowNode":
        (child,) = inputs
        return WindowNode(
            child,
            self.kind,
            self.timecol,
            self.size,
            self.slide,
            self.offset,
            self.key_indices,
        )

    def _describe(self) -> str:
        parts = [
            f"timecol=${self.timecol}",
            f"size={fmt_duration(self.size)}",
        ]
        if self.slide is not None:
            parts.append(f"slide={fmt_duration(self.slide)}")
        if self.offset:
            parts.append(f"offset={fmt_duration(self.offset)}")
        if self.key_indices:
            parts.append(f"keys={list(self.key_indices)}")
        return f"{self.kind.value}({', '.join(parts)})"


@dataclass(frozen=True)
class AggCall:
    """One aggregate in an AggregateNode.

    ``arg_index`` is the input ordinal aggregated over, or ``None`` for
    ``COUNT(*)``.
    """

    function: AggregateFunction
    arg_index: Optional[int]
    output: Column
    distinct: bool = False

    def __str__(self) -> str:
        arg = "*" if self.arg_index is None else f"${self.arg_index}"
        d = "DISTINCT " if self.distinct else ""
        return f"{self.function.name}({d}{arg}) AS {self.output.name}"


class AggregateNode(LogicalNode):
    """Grouped aggregation.

    Group keys are input ordinals (the planner pre-projects computed
    keys).  Output schema is the group key columns followed by the
    aggregate results.
    """

    def __init__(
        self,
        input: LogicalNode,
        group_indices: Sequence[int],
        aggs: Sequence[AggCall],
    ):
        self.input = input
        self.group_indices = tuple(group_indices)
        self.aggs = tuple(aggs)
        self.inputs = (input,)
        cols = [input.schema.columns[i] for i in self.group_indices]
        cols.extend(agg.output for agg in aggs)
        self.schema = Schema(cols)
        self.bounded = input.bounded
        completion = tuple(
            out_idx
            for out_idx, in_idx in enumerate(self.group_indices)
            if input.schema.columns[in_idx].event_time
        )
        self.completion_indices = completion if completion else None
        self.emit_key_indices = tuple(range(len(self.group_indices)))

    @property
    def event_time_key_positions(self) -> tuple[int, ...]:
        """Positions within the group key that are event time columns."""
        return tuple(
            pos
            for pos, in_idx in enumerate(self.group_indices)
            if self.input.schema.columns[in_idx].event_time
        )

    def with_inputs(self, inputs: Sequence[LogicalNode]) -> "AggregateNode":
        (child,) = inputs
        return AggregateNode(child, self.group_indices, self.aggs)

    def _describe(self) -> str:
        keys = ", ".join(f"${i}" for i in self.group_indices)
        aggs = ", ".join(str(a) for a in self.aggs)
        return f"Aggregate(group=[{keys}], aggs=[{aggs}])"


class PartialAggregateNode(LogicalNode):
    """Shard-local half of a two-phase aggregation.

    The physical rewrite (``repro.plan.physical``) replaces the
    grouped :class:`AggregateNode` at the root of each shard's plan
    with this node; the other half — :class:`CombineAggregateOperator`
    at the merge stage — replays or folds its payloads to reproduce
    the single-phase changelog.  The output is not a relation users
    see: each "row" is one opaque per-batch payload ``(tag, entries)``,
    so the schema is a single untyped column and completion metadata
    is dropped (payloads are never emitted to a sink).
    """

    def __init__(
        self,
        input: LogicalNode,
        group_indices: Sequence[int],
        aggs: Sequence[AggCall],
    ):
        self.input = input
        self.group_indices = tuple(group_indices)
        self.aggs = tuple(aggs)
        self.inputs = (input,)
        self.schema = Schema([Column("$partial", SqlType.NULL)])
        self.bounded = input.bounded
        self.completion_indices = None
        self.emit_key_indices = ()

    @property
    def event_time_key_positions(self) -> tuple[int, ...]:
        """Positions within the group key that are event time columns."""
        return tuple(
            pos
            for pos, in_idx in enumerate(self.group_indices)
            if self.input.schema.columns[in_idx].event_time
        )

    def with_inputs(self, inputs: Sequence[LogicalNode]) -> "PartialAggregateNode":
        (child,) = inputs
        return PartialAggregateNode(child, self.group_indices, self.aggs)

    def _describe(self) -> str:
        keys = ", ".join(f"${i}" for i in self.group_indices)
        aggs = ", ".join(str(a) for a in self.aggs)
        return f"PartialAggregate(group=[{keys}], aggs=[{aggs}])"


class OverNode(LogicalNode):
    """Analytic (OVER) window aggregation over event-time order.

    Appendix B.2.3 names "OVER windows with an ORDER BY clause on an
    event time attribute" among the operator classes that exploit
    watermarks.  Each input row is emitted once watermark-stable,
    augmented with running aggregates over its partition's preceding
    rows (a ROWS frame of ``frame_rows`` preceding, or all of them).

    Output schema: all input columns followed by one column per call.
    """

    def __init__(
        self,
        input: LogicalNode,
        partition_indices: Sequence[int],
        order_index: int,
        calls: Sequence[AggCall],
        frame_rows: Optional[int],
    ):
        order_col = input.schema.columns[order_index]
        if order_col.type is not SqlType.TIMESTAMP:
            raise PlanError(
                f"OVER ORDER BY requires a TIMESTAMP column; "
                f"{order_col.name!r} is {order_col.type}"
            )
        if not order_col.event_time and not input.bounded:
            # On an unbounded input only a watermarked column gives the
            # deterministic sequencing the frame semantics need; on a
            # bounded input everything is stable, so any timestamp works.
            raise PlanError(
                "OVER on an unbounded input requires ORDER BY a "
                f"watermarked event time column; {order_col.name!r} is not"
            )
        self.input = input
        self.partition_indices = tuple(partition_indices)
        self.order_index = order_index
        self.calls = tuple(calls)
        self.frame_rows = frame_rows
        self.inputs = (input,)
        cols = list(input.schema.columns)
        cols.extend(call.output for call in calls)
        self.schema = Schema(cols)
        self.bounded = input.bounded
        # rows are emitted exactly when the watermark stabilizes them,
        # so the ordering column bounds when a row can appear; emitted
        # rows never change.
        self.completion_indices = (order_index,)
        self.emit_key_indices = ()

    def with_inputs(self, inputs: Sequence[LogicalNode]) -> "OverNode":
        (child,) = inputs
        return OverNode(
            child,
            self.partition_indices,
            self.order_index,
            self.calls,
            self.frame_rows,
        )

    def _describe(self) -> str:
        frame = (
            f"rows={self.frame_rows} preceding"
            if self.frame_rows is not None
            else "unbounded preceding"
        )
        calls = ", ".join(str(c) for c in self.calls)
        return (
            f"Over(partition={list(self.partition_indices)}, "
            f"order=${self.order_index}, {frame}, [{calls}])"
        )


class JoinKind(enum.Enum):
    INNER = "INNER"
    LEFT = "LEFT"
    FULL = "FULL"
    CROSS = "CROSS"
    # RIGHT joins never reach the executor: the planner mirrors them
    # into LEFT joins plus a column-reordering projection.


class JoinNode(LogicalNode):
    """A binary join; condition ranges over the concatenated schema."""

    def __init__(
        self,
        left: LogicalNode,
        right: LogicalNode,
        kind: JoinKind,
        condition: Optional[Rex],
    ):
        self.left = left
        self.right = right
        self.kind = kind
        self.condition = condition
        # Physical hints filled in by the optimizer: equi-join hash keys
        # (side-local ordinals) and per-side state-expiry metadata
        # ``(time_index, slack)`` for time-windowed joins.
        self.hash_left: tuple[int, ...] = ()
        self.hash_right: tuple[int, ...] = ()
        self.expire_left: Optional[tuple[int, Duration]] = None
        self.expire_right: Optional[tuple[int, Duration]] = None
        self.inputs = (left, right)
        self.schema = left.schema.concat(right.schema)
        if kind in (JoinKind.LEFT, JoinKind.FULL):
            # Null-extendable columns lose watermark alignment.
            left_cols = list(self.schema.columns[: len(left.schema)])
            right_cols = [
                c.degraded() for c in self.schema.columns[len(left.schema):]
            ]
            if kind is JoinKind.FULL:
                left_cols = [c.degraded() for c in left_cols]
            self.schema = Schema(left_cols).concat(Schema(right_cols))
        self.bounded = left.bounded and right.bounded
        offset = len(left.schema)
        if kind is JoinKind.FULL:
            # either side's null rows can flip on the other's changes;
            # no per-row completion bound exists
            self.completion_indices = None
        elif left.completion_indices is None or (
            kind is not JoinKind.LEFT and right.completion_indices is None
        ):
            self.completion_indices = None
        else:
            right_part = (
                tuple(i + offset for i in right.completion_indices)
                if right.completion_indices is not None
                else ()
            )
            self.completion_indices = left.completion_indices + right_part
        self.emit_key_indices = left.emit_key_indices + tuple(
            i + offset for i in right.emit_key_indices
        )

    def with_inputs(self, inputs: Sequence[LogicalNode]) -> "JoinNode":
        left, right = inputs
        clone = JoinNode(left, right, self.kind, self.condition)
        clone.hash_left = self.hash_left
        clone.hash_right = self.hash_right
        clone.expire_left = self.expire_left
        clone.expire_right = self.expire_right
        return clone

    def _describe(self) -> str:
        cond = f" on {self.condition}" if self.condition is not None else ""
        return f"Join({self.kind.value}{cond})"


class SemiJoinNode(LogicalNode):
    """Semi/anti join: ``WHERE expr [NOT] IN (SELECT col FROM ...)``.

    The output is the left relation filtered by match-count against the
    subquery's (single-column) result — left rows flip in and out as
    the right side changes, so the operator is stateful and retractive.
    The left schema passes through untouched, alignment flags included.

    NULL note: a left value of NULL never matches (IN is unknown →
    filtered), and NULL right values match nothing.  For NOT IN, SQL's
    letter says a NULL anywhere in the subquery empties the result; we
    implement the match-count semantics engines actually ship and
    document the deviation.
    """

    def __init__(
        self,
        left: LogicalNode,
        right: LogicalNode,
        left_expr: Rex,
        negated: bool,
    ):
        if len(right.schema) != 1:
            raise PlanError(
                "IN (SELECT ...) requires a single-column subquery; got "
                f"{len(right.schema)} columns"
            )
        self.left = left
        self.right = right
        self.left_expr = left_expr
        self.negated = negated
        self.inputs = (left, right)
        self.schema = left.schema
        self.bounded = left.bounded and right.bounded
        # a left row can flip as the right side changes; only a bounded
        # right side lets left completion metadata survive
        self.completion_indices = (
            left.completion_indices if right.bounded else None
        )
        self.emit_key_indices = left.emit_key_indices

    def with_inputs(self, inputs: Sequence[LogicalNode]) -> "SemiJoinNode":
        left, right = inputs
        return SemiJoinNode(left, right, self.left_expr, self.negated)

    def _describe(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        return f"SemiJoin({self.left_expr} {op} subquery)"


class TemporalJoinNode(LogicalNode):
    """A correlated temporal-table join (Section 8).

    Each left row is enriched with the right-side *version* valid at the
    left row's event time: per equi-key, the right row with the greatest
    version timestamp not exceeding the left row's timestamp.  Emission
    waits until the right watermark passes the left row's time, so the
    chosen version is final — which also makes output rows insert-only.

    The right side must be an append-only stream of versions whose
    event time column is the version timestamp.
    """

    def __init__(
        self,
        left: LogicalNode,
        right: LogicalNode,
        left_time_index: int,
        right_time_index: int,
        left_keys: Sequence[int],
        right_keys: Sequence[int],
    ):
        left_time_col = left.schema.columns[left_time_index]
        if not left_time_col.event_time:
            raise PlanError(
                "FOR SYSTEM_TIME AS OF requires a watermarked event time "
                f"column; {left_time_col.name!r} is not"
            )
        if len(left_keys) != len(right_keys) or not left_keys:
            raise PlanError("temporal join requires at least one equi-key pair")
        self.left = left
        self.right = right
        self.left_time_index = left_time_index
        self.right_time_index = right_time_index
        self.left_keys = tuple(left_keys)
        self.right_keys = tuple(right_keys)
        self.inputs = (left, right)
        # version columns are historical lookups, not watermark-aligned
        right_part = Schema([c.degraded() for c in right.schema.columns])
        self.schema = left.schema.concat(right_part)
        self.bounded = left.bounded and right.bounded
        self.completion_indices = left.completion_indices
        self.emit_key_indices = left.emit_key_indices

    def with_inputs(self, inputs: Sequence[LogicalNode]) -> "TemporalJoinNode":
        left, right = inputs
        return TemporalJoinNode(
            left,
            right,
            self.left_time_index,
            self.right_time_index,
            self.left_keys,
            self.right_keys,
        )

    def _describe(self) -> str:
        keys = ", ".join(
            f"${l}=${r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        return (
            f"TemporalJoin(as of ${self.left_time_index}, "
            f"version=${self.right_time_index}, on {keys})"
        )


class UnionNode(LogicalNode):
    """``UNION ALL`` (bag union) of same-typed inputs."""

    def __init__(self, inputs: Sequence[LogicalNode]):
        if len(inputs) < 2:
            raise PlanError("union requires at least two inputs")
        first = inputs[0].schema
        for other in inputs[1:]:
            if len(other.schema) != len(first):
                raise PlanError("union inputs must have the same arity")
            for a, b in zip(first.columns, other.schema.columns):
                if a.type is not b.type and SqlType.NULL not in (a.type, b.type):
                    raise PlanError(
                        f"union column type mismatch: {a.type} vs {b.type}"
                    )
        self.inputs = tuple(inputs)
        cols = []
        for i, col in enumerate(first.columns):
            aligned = all(
                node.schema.columns[i].event_time for node in inputs
            )
            cols.append(
                Column(col.name, col.type, event_time=aligned and col.event_time)
            )
        self.schema = Schema(cols)
        self.bounded = all(node.bounded for node in inputs)
        completions = [node.completion_indices for node in inputs]
        if any(c is None for c in completions):
            self.completion_indices = None
        else:
            shared = set(completions[0])
            for c in completions[1:]:
                shared &= set(c)
            self.completion_indices = tuple(sorted(shared)) if shared else None
        self.emit_key_indices = ()

    def with_inputs(self, inputs: Sequence[LogicalNode]) -> "UnionNode":
        return UnionNode(inputs)

    def _describe(self) -> str:
        return f"UnionAll({len(self.inputs)} inputs)"


class SetOpNode(LogicalNode):
    """INTERSECT [ALL] / EXCEPT [ALL] with bag semantics.

    Output multiplicity per row: ``min(l, r)`` for INTERSECT ALL,
    ``max(l - r, 0)`` for EXCEPT ALL; the DISTINCT variants cap the
    result at one when positive.  Maintained incrementally from both
    sides' counts, so rows flip in and out as either input changes.
    """

    def __init__(self, left: LogicalNode, right: LogicalNode, op: str,
                 all: bool):
        if op not in ("INTERSECT", "EXCEPT"):
            raise PlanError(f"unknown set operation {op}")
        if len(left.schema) != len(right.schema):
            raise PlanError(f"{op} inputs must have the same arity")
        for a, b in zip(left.schema.columns, right.schema.columns):
            if a.type is not b.type and SqlType.NULL not in (a.type, b.type):
                raise PlanError(
                    f"{op} column type mismatch: {a.type} vs {b.type}"
                )
        self.left = left
        self.right = right
        self.op = op
        self.all = all
        self.inputs = (left, right)
        # rows can leave when the other side changes: degrade alignment
        self.schema = Schema([c.degraded() for c in left.schema.columns])
        self.bounded = left.bounded and right.bounded
        self.completion_indices = None
        self.emit_key_indices = ()

    def with_inputs(self, inputs: Sequence[LogicalNode]) -> "SetOpNode":
        left, right = inputs
        return SetOpNode(left, right, self.op, self.all)

    def _describe(self) -> str:
        suffix = " ALL" if self.all else ""
        return f"{self.op}{suffix}"


class SortNode(LogicalNode):
    """ORDER BY / LIMIT; only meaningful for table materialization."""

    def __init__(
        self,
        input: LogicalNode,
        keys: Sequence[tuple[int, bool]],
        limit: Optional[int] = None,
    ):
        self.input = input
        self.keys = tuple(keys)
        self.limit = limit
        self.inputs = (input,)
        self.schema = input.schema
        self.bounded = input.bounded
        self.completion_indices = input.completion_indices
        self.emit_key_indices = input.emit_key_indices

    def with_inputs(self, inputs: Sequence[LogicalNode]) -> "SortNode":
        (child,) = inputs
        return SortNode(child, self.keys, self.limit)

    def _describe(self) -> str:
        keys = ", ".join(
            f"${i} {'ASC' if asc else 'DESC'}" for i, asc in self.keys
        )
        limit = f" limit={self.limit}" if self.limit is not None else ""
        return f"Sort([{keys}]{limit})"


class ValuesNode(LogicalNode):
    """An inline constant relation."""

    def __init__(self, schema: Schema, rows: Sequence[tuple]):
        self.schema = schema
        self.rows = tuple(tuple(r) for r in rows)
        self.inputs = ()
        self.bounded = True
        self.completion_indices = None
        self.emit_key_indices = ()

    def with_inputs(self, inputs: Sequence[LogicalNode]) -> "ValuesNode":
        assert not inputs
        return self

    def _describe(self) -> str:
        return f"Values({len(self.rows)} rows)"
