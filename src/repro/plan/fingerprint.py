"""Canonical plan fingerprints — the unit of multi-query sharing.

Following the Calcite lesson the paper builds on, two standing queries
share work when their *logical plans* coincide, not when their SQL text
does.  :func:`node_fingerprints` assigns every subtree a structural
hash over (operator kind, normalized rex expressions, window/aggregate
spec, source identity, child fingerprints).  The hash deliberately
excludes output *column names* — ``SELECT price AS p`` and ``SELECT
price AS cost`` fingerprint identically — and deliberately includes
output *types*, source names, and every semantic knob (window size,
DISTINCT flags, join expiry hints).

What is **not** in a node fingerprint:

* column aliases (``ProjectNode.names``, ``AggCall.output.name``);
* the tenant submitting the query (sharing is cross-tenant by design:
  admission has already gated table access);
* ``allowed_lateness`` and the EMIT clause — those are *plan-level*
  execution knobs, enforced by the sharing cache's config key and by
  :func:`plan_fingerprint` respectively.

``MATCH_RECOGNIZE`` nodes carry compiled ``DEFINE``/``MEASURES``
closures whose predicates cannot be canonicalized from the plan alone,
so they fingerprint as unshareable (unique per instance): a false
non-merge costs only speed, a false merge would corrupt results.
"""

from __future__ import annotations

import hashlib

from ..core.schema import Schema
from .logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    LogicalNode,
    OverNode,
    PartialAggregateNode,
    ProjectNode,
    ScanNode,
    SemiJoinNode,
    SetOpNode,
    SortNode,
    TemporalFilterNode,
    TemporalJoinNode,
    UnionNode,
    ValuesNode,
    WindowNode,
)
from .match import MatchRecognizeNode
from .pipeline import PipelineNode
from .rex import Rex, RexCall, RexCase, RexCast, RexCurrentTime, RexInput, RexLiteral

__all__ = [
    "node_fingerprint",
    "node_fingerprints",
    "plan_fingerprint",
    "rex_token",
    "subtree_size",
]


def rex_token(expr: Rex) -> tuple:
    """A hashable canonical form of a rex expression.

    Positional (`RexInput` ordinals), so it is invariant under column
    renaming but sensitive to projection order — exactly the equality
    the executor needs.
    """
    if isinstance(expr, RexInput):
        return ("in", expr.index, expr.type.name)
    if isinstance(expr, RexLiteral):
        return ("lit", expr.type.name, type(expr.value).__name__, repr(expr.value))
    if isinstance(expr, RexCall):
        function = getattr(expr.function, "name", None) if expr.function else None
        return (
            "call",
            expr.op,
            function,
            expr.type.name,
            tuple(rex_token(arg) for arg in expr.args),
        )
    if isinstance(expr, RexCase):
        return (
            "case",
            expr.type.name,
            tuple(
                (rex_token(cond), rex_token(value)) for cond, value in expr.whens
            ),
            rex_token(expr.else_) if expr.else_ is not None else None,
        )
    if isinstance(expr, RexCast):
        return ("cast", expr.type.name, rex_token(expr.operand))
    if isinstance(expr, RexCurrentTime):
        return ("current_time", expr.type.name)
    # Unknown rex kinds must never falsely merge.
    return ("opaque", type(expr).__name__, id(expr))


def _schema_token(schema: Schema) -> tuple:
    """Types and event-time flags only — names are presentation."""
    return tuple((c.type.name, c.event_time) for c in schema.columns)


def _agg_token(call) -> tuple:
    # The output *name* is an alias; the output type is semantics.
    return (
        call.function.name,
        call.arg_index,
        call.distinct,
        call.output.type.name,
    )


def _node_token(node: LogicalNode) -> tuple:
    """The per-node canonical parameters, children excluded."""
    if isinstance(node, ScanNode):
        return ("scan", node.name.lower(), node.bounded, _schema_token(node.schema))
    if isinstance(node, ValuesNode):
        # The executor names these scans "$values{id(node)}"; identity
        # here is the literal rows, never that generated name.
        return ("values", _schema_token(node.schema), node.rows)
    if isinstance(node, FilterNode):
        return ("filter", rex_token(node.condition))
    if isinstance(node, ProjectNode):
        return ("project", tuple(rex_token(e) for e in node.exprs))
    if isinstance(node, PipelineNode):
        # A fused chain fingerprints as its ordered steps, so two
        # pipelines share state exactly when their filter/project
        # chains are expression-identical.
        return (
            "pipeline",
            tuple(
                ("filter", rex_token(payload))
                if kind == "filter"
                else ("project", tuple(rex_token(e) for e in payload))
                for kind, payload in node.steps
            ),
        )
    if isinstance(node, TemporalFilterNode):
        return (
            "temporal_filter",
            tuple((b.time_index, b.offset, b.kind) for b in node.bounds),
        )
    if isinstance(node, WindowNode):
        return (
            "window",
            node.kind.value,
            node.timecol,
            node.size,
            node.slide,
            node.offset,
            node.key_indices,
        )
    if isinstance(node, AggregateNode):
        return (
            "aggregate",
            node.group_indices,
            tuple(_agg_token(call) for call in node.aggs),
        )
    if isinstance(node, PartialAggregateNode):
        return (
            "partial_aggregate",
            node.group_indices,
            tuple(_agg_token(call) for call in node.aggs),
        )
    if isinstance(node, OverNode):
        return (
            "over",
            node.partition_indices,
            node.order_index,
            node.frame_rows,
            tuple(_agg_token(call) for call in node.calls),
        )
    if isinstance(node, MatchRecognizeNode):
        return ("match_recognize", "unshareable", id(node))
    if isinstance(node, TemporalJoinNode):
        return (
            "temporal_join",
            node.left_time_index,
            node.right_time_index,
            node.left_keys,
            node.right_keys,
        )
    if isinstance(node, JoinNode):
        return (
            "join",
            node.kind.value,
            rex_token(node.condition) if node.condition is not None else None,
            node.hash_left,
            node.hash_right,
            node.expire_left,
            node.expire_right,
        )
    if isinstance(node, SemiJoinNode):
        return ("semijoin", rex_token(node.left_expr), node.negated)
    if isinstance(node, UnionNode):
        return ("union", len(node.inputs))
    if isinstance(node, SetOpNode):
        return ("setop", node.op, node.all)
    if isinstance(node, SortNode):
        return ("sort", node.keys, node.limit)
    # Unknown node kinds are unshareable, like MATCH_RECOGNIZE.
    return (type(node).__name__, "unshareable", id(node))


def node_fingerprints(root: LogicalNode) -> dict[int, str]:
    """Fingerprint every subtree of ``root``, keyed by ``id(node)``."""
    fps: dict[int, str] = {}

    def visit(node: LogicalNode) -> str:
        token = (
            type(node).__name__,
            _node_token(node),
            tuple(visit(child) for child in node.inputs),
        )
        fp = hashlib.sha256(repr(token).encode()).hexdigest()
        fps[id(node)] = fp
        return fp

    visit(root)
    return fps


def node_fingerprint(node: LogicalNode) -> str:
    """The canonical fingerprint of one subtree."""
    return node_fingerprints(node)[id(node)]


def plan_fingerprint(plan) -> str:
    """Whole-plan identity: root fingerprint plus the EMIT clause.

    Two plans with equal root fingerprints but different EMIT clauses
    (``EMIT STREAM`` vs. table view) may still share every operator —
    EMIT shapes materialization, not the changelog — but callers that
    need *result* identity (e.g. root-level sharing) compare this.
    """
    token = ("plan", node_fingerprint(plan.root), str(plan.emit))
    return hashlib.sha256(repr(token).encode()).hexdigest()


def subtree_size(node: LogicalNode) -> int:
    """Number of logical nodes in the subtree (sharing-ratio unit)."""
    return 1 + sum(subtree_size(child) for child in node.inputs)
