"""Planner: validated AST → logical plan.

The planner resolves names against a catalog, types every expression,
enforces the paper's event-time legality rules, and produces a
:class:`QueryPlan` — a logical operator tree plus the query's
:class:`~repro.core.emit.EmitSpec`.

Streaming-specific planning decisions:

* **Windowing TVFs** in ``FROM`` become :class:`WindowNode`s.  Their
  ``wstart``/``wend`` outputs are watermark-aligned event time columns.
* **Extension 2 enforcement**: an aggregation whose input is unbounded
  must group by at least one watermark-aligned event time column,
  otherwise the grouping could never be declared complete and state
  could never be freed (the Section 5 lesson).
* **Window sibling keys**: grouping by ``wend`` implicitly also groups
  by ``wstart`` (and vice versa) — the two are in bijection, which is
  how the paper's Listing 2 can select ``wstart`` while grouping only
  by ``wend``.
* ``EMIT`` is accepted only at the top level of a statement, as the
  paper proposes (Section 8 discusses relaxing this as future work).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.emit import EmitSpec
from ..core.errors import ValidationError
from ..core.schema import Column, Schema, SqlType
from ..core.times import Duration
from ..sql import ast
from ..sql.functions import FunctionRegistry
from ..sql.parser import parse
from ..sql.validator import ExprTranslator, Scope, ScopeEntry
from . import rex
from .logical import (
    AggCall,
    AggregateNode,
    FilterNode,
    JoinKind,
    JoinNode,
    LogicalNode,
    OverNode,
    ProjectNode,
    ScanNode,
    SemiJoinNode,
    SetOpNode,
    SortNode,
    TemporalBound,
    TemporalFilterNode,
    TemporalJoinNode,
    UnionNode,
    WindowKind,
    WindowNode,
)

__all__ = ["Catalog", "QueryPlan", "Planner", "referenced_tables"]


class Catalog:
    """Registered relations (name → schema, boundedness) and views.

    A view is a named query expanded inline wherever it is referenced —
    Section 6.1's observation that views "map a query pointwise over a
    TVR" makes them streaming-ready for free: a view over a stream is
    just another time-varying relation.
    """

    def __init__(self) -> None:
        self._relations: dict[str, tuple[Schema, bool]] = {}
        self._views: dict[str, ast.Statement] = {}

    def register(self, name: str, schema: Schema, bounded: bool) -> None:
        self._relations[name.lower()] = (schema, bounded)
        self._views.pop(name.lower(), None)

    def register_view(self, name: str, statement: ast.Statement) -> None:
        if statement.emit is not None:
            raise ValidationError(
                "a view cannot carry an EMIT clause; EMIT belongs to the "
                "querying statement"
            )
        self._views[name.lower()] = statement
        self._relations.pop(name.lower(), None)

    def lookup(self, name: str) -> Optional[tuple[Schema, bool]]:
        return self._relations.get(name.lower())

    def lookup_view(self, name: str) -> Optional[ast.Statement]:
        return self._views.get(name.lower())

    def names(self) -> list[str]:
        return sorted(set(self._relations) | set(self._views))


@dataclass
class QueryPlan:
    """A planned query: the logical tree plus materialization intent."""

    root: LogicalNode
    emit: EmitSpec
    sql: Optional[str] = None

    @property
    def schema(self) -> Schema:
        return self.root.schema

    def explain(self, verbose: bool = False) -> str:
        header = str(self.emit)
        tree = self.root.explain(verbose=verbose)
        return f"{header}\n{tree}" if header else tree


# TVF signatures: canonical parameter order for positional arguments and
# accepted aliases for named arguments.
_TVF_PARAMS: dict[str, list[str]] = {
    "TUMBLE": ["data", "timecol", "size", "offset"],
    "HOP": ["data", "timecol", "size", "slide", "offset"],
    "SESSION": ["data", "timecol", "gap", "keycol"],
}
_TVF_ALIASES: dict[str, str] = {
    "dur": "size",
    "duration": "size",
    "hopsize": "slide",
    "key": "keycol",
    "partitionkeys": "keycol",
}


class Planner:
    """Plans parsed statements against a catalog."""

    def __init__(self, catalog: Catalog, registry: FunctionRegistry):
        self._catalog = catalog
        self._registry = registry
        self._sql: Optional[str] = None
        self._view_stack: list[str] = []

    def _expand_view(
        self, name: str, statement: ast.Statement, at: ast.Node
    ) -> LogicalNode:
        key = name.lower()
        if key in self._view_stack:
            chain = " -> ".join(self._view_stack + [key])
            raise self._error(f"circular view reference: {chain}", at)
        self._view_stack.append(key)
        try:
            return self._plan_statement(statement)
        finally:
            self._view_stack.pop()

    # -- public entry points ------------------------------------------------

    def plan_sql(self, sql: str) -> QueryPlan:
        """Parse and plan one SQL statement."""
        statement = parse(sql)
        return self.plan(statement, sql=sql)

    def plan(self, statement: ast.Statement, sql: Optional[str] = None) -> QueryPlan:
        """Plan a parsed statement."""
        self._sql = sql
        emit = statement.emit or EmitSpec.default()
        root = self._plan_statement(statement, top_level=True)
        return QueryPlan(root=root, emit=emit, sql=sql)

    # -- statements ---------------------------------------------------------

    def _error(self, message: str, node: ast.Node) -> ValidationError:
        return ValidationError(message, self._sql, node.pos)

    def _plan_statement(
        self, statement: ast.Statement, top_level: bool = False
    ) -> LogicalNode:
        if not top_level and statement.emit is not None:
            raise self._error(
                "EMIT is only allowed at the top level of a query", statement
            )
        if isinstance(statement, ast.Union_):
            left = self._plan_statement(statement.left)
            right = self._plan_statement(statement.right)
            if statement.op in ("INTERSECT", "EXCEPT"):
                return SetOpNode(left, right, statement.op, statement.all)
            union = UnionNode([left, right])
            if not statement.all:
                # UNION (distinct) deduplicates via a keyed aggregation.
                self._check_unbounded_grouping(union, statement)
                union_keys = tuple(range(len(union.schema)))
                return AggregateNode(union, union_keys, ())
            return union
        return self._plan_select(statement)

    def _plan_select(self, select: ast.Select) -> LogicalNode:
        node, scope = self._plan_from(select.from_items, select)

        if select.where is not None:
            plain_where, in_subqueries = self._split_in_subqueries(select.where)
            translator = ExprTranslator(scope, self._registry, self._sql)
            for operand_ast, query, negated in in_subqueries:
                subquery = self._plan_statement(query)
                if operand_ast is None:
                    # EXISTS: probe a constant against the subquery
                    # projected onto the same constant — membership is
                    # exactly non-emptiness.
                    probe: rex.Rex = rex.RexLiteral(1, type=SqlType.INT)
                    subquery = ProjectNode(
                        subquery,
                        [rex.RexLiteral(1, type=SqlType.INT)],
                        ["one"],
                    )
                else:
                    probe = translator.translate(operand_ast)
                node = SemiJoinNode(node, subquery, probe, negated)
            if plain_where is not None:
                condition = translator.translate(plain_where)
                if condition.type not in (SqlType.BOOL, SqlType.NULL):
                    raise self._error("WHERE must be BOOLEAN", select.where)
                bounds, residual = self._split_temporal(condition, select.where)
                if residual is not None:
                    node = FilterNode(node, residual)
                if bounds:
                    node = TemporalFilterNode(node, bounds)

        over_calls = self._collect_over_calls(select)
        agg_calls = self._collect_aggregates(select)
        if over_calls:
            if select.group_by or agg_calls or select.having is not None:
                raise self._error(
                    "OVER windows cannot be combined with GROUP BY / "
                    "HAVING in the same query block",
                    select,
                )
            node = self._plan_over(node, scope, select, over_calls)
        elif select.group_by or agg_calls or select.having is not None:
            node = self._plan_aggregate(node, scope, select, agg_calls)
        else:
            node = self._plan_plain_projection(node, scope, select)

        if select.distinct:
            self._check_unbounded_grouping(node, select)
            node = AggregateNode(node, tuple(range(len(node.schema))), ())

        if select.order_by or select.limit is not None:
            keys = []
            for item in select.order_by:
                keys.append((self._resolve_order_key(item, node.schema), item.ascending))
            node = SortNode(node, keys, select.limit)
        return node

    # -- FROM planning --------------------------------------------------------

    def _plan_from(
        self, items: Sequence[ast.FromItem], select: ast.Select
    ) -> tuple[LogicalNode, Scope]:
        if not items:
            raise self._error("queries without FROM are not supported", select)
        node, entries = self._plan_from_item(items[0], offset=0)
        for item in items[1:]:
            right, right_entries = self._plan_from_item(
                item, offset=len(node.schema)
            )
            node = JoinNode(node, right, JoinKind.CROSS, None)
            entries = entries + right_entries
        self._check_duplicate_aliases(entries, select)
        return node, Scope(entries, sql=self._sql)

    def _check_duplicate_aliases(
        self, entries: Sequence[ScopeEntry], node: ast.Node
    ) -> None:
        seen: set[str] = set()
        for entry in entries:
            if entry.alias is None:
                continue
            key = entry.alias.lower()
            if key in seen:
                raise self._error(f"duplicate table alias {entry.alias!r}", node)
            seen.add(key)

    def _plan_from_item(
        self, item: ast.FromItem, offset: int
    ) -> tuple[LogicalNode, list[ScopeEntry]]:
        if isinstance(item, ast.TableRef):
            view = self._catalog.lookup_view(item.name)
            if view is not None:
                node = self._expand_view(item.name, view, item)
                alias = item.alias or item.name
                return node, [ScopeEntry(alias, node.schema, offset)]
            node = self._scan(item.name, item)
            alias = item.alias or item.name
            return node, [ScopeEntry(alias, node.schema, offset)]
        if isinstance(item, ast.SubqueryRef):
            node = self._plan_statement(item.query)
            return node, [ScopeEntry(item.alias, node.schema, offset)]
        if isinstance(item, ast.TvfCall):
            node = self._plan_tvf(item)
            return node, [
                ScopeEntry(item.alias, node.schema, offset, is_window_tvf=True)
            ]
        if isinstance(item, ast.ValuesRef):
            node = self._plan_values(item)
            return node, [ScopeEntry(item.alias, node.schema, offset)]
        if isinstance(item, ast.MatchRecognize):
            node = self._plan_match_recognize(item)
            alias = item.alias or item.input.name
            return node, [ScopeEntry(alias, node.schema, offset)]
        if isinstance(item, ast.JoinClause):
            left, left_entries = self._plan_from_item(item.left, offset)
            right, right_entries = self._plan_from_item(
                item.right, offset + len(left.schema)
            )
            scope = Scope(left_entries + right_entries, sql=self._sql)
            if item.as_of is not None:
                node = self._plan_temporal_join(item, left, right, scope)
                return node, left_entries + right_entries
            condition = None
            if item.condition is not None:
                translator = ExprTranslator(scope, self._registry, self._sql)
                condition = translator.translate(item.condition)
                if condition.type not in (SqlType.BOOL, SqlType.NULL):
                    raise self._error("join condition must be BOOLEAN", item)
                self._forbid_current_time([condition], item)
            if item.kind == "RIGHT":
                # mirror into a LEFT join, then restore column order
                if condition is None:
                    raise self._error("RIGHT JOIN requires ON", item)
                left_width = len(left.schema)
                right_width = len(right.schema)
                swap = {i: i + right_width for i in range(left_width)}
                swap.update(
                    {left_width + i: i for i in range(right_width)}
                )
                mirrored = JoinNode(
                    right, left, JoinKind.LEFT, rex.shift_inputs(condition, swap)
                )
                reorder = [
                    rex.RexInput(right_width + i, type=c.type)
                    for i, c in enumerate(mirrored.schema.columns[right_width:])
                ] + [
                    rex.RexInput(i, type=c.type)
                    for i, c in enumerate(mirrored.schema.columns[:right_width])
                ]
                names = [c.name for c in left.schema.columns] + [
                    c.name for c in right.schema.columns
                ]
                node = ProjectNode(mirrored, reorder, _uniquify(names))
                return node, left_entries + right_entries
            kind = {
                "INNER": JoinKind.INNER,
                "CROSS": JoinKind.CROSS,
                "LEFT": JoinKind.LEFT,
                "FULL": JoinKind.FULL,
            }.get(item.kind)
            if kind is None:
                raise self._error(
                    f"{item.kind} JOIN is not supported", item
                )
            node = JoinNode(left, right, kind, condition)
            return node, left_entries + right_entries
        raise self._error(f"cannot plan {type(item).__name__}", item)

    def _scan(self, name: str, node: ast.Node) -> ScanNode:
        found = self._catalog.lookup(name)
        if found is None:
            raise self._error(
                f"unknown table {name!r}; registered: "
                f"{', '.join(self._catalog.names()) or '(none)'}",
                node,
            )
        schema, bounded = found
        return ScanNode(name, schema, bounded)

    # -- IN (SELECT ...) semi/anti joins -----------------------------------------

    def _split_in_subqueries(
        self, where: ast.Expr
    ) -> tuple[Optional[ast.Expr], list[tuple[ast.Expr, ast.Select, bool]]]:
        """Pull top-level [NOT] IN (SELECT ...) conjuncts out of WHERE.

        Only AND-ed top-level occurrences are supported; a subquery
        nested under OR/NOT has no semi-join factorization and is
        rejected with guidance.
        """
        subqueries: list[tuple[ast.Expr, ast.Select, bool]] = []

        def strip(expr: ast.Expr) -> Optional[ast.Expr]:
            if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
                left = strip(expr.left)
                right = strip(expr.right)
                if left is None:
                    return right
                if right is None:
                    return left
                return ast.BinaryOp("AND", left, right, pos=expr.pos)
            if isinstance(expr, ast.InSubquery):
                subqueries.append((expr.operand, expr.query, expr.negated))
                return None
            if isinstance(expr, ast.Exists):
                subqueries.append((None, expr.query, expr.negated))
                return None
            if (
                isinstance(expr, ast.UnaryOp)
                and expr.op == "NOT"
                and isinstance(expr.operand, ast.Exists)
            ):
                subqueries.append(
                    (None, expr.operand.query, not expr.operand.negated)
                )
                return None
            # `x = (SELECT agg FROM ...)` — the shape CQL's Listing 1
            # uses — plans as a semi join.  With a single-row subquery
            # (any global aggregate) this is exactly scalar equality;
            # a multi-row subquery acts as IN rather than erroring.
            if isinstance(expr, ast.BinaryOp) and expr.op == "=":
                if isinstance(expr.right, ast.ScalarSubquery):
                    subqueries.append((expr.left, expr.right.query, False))
                    return None
                if isinstance(expr.left, ast.ScalarSubquery):
                    subqueries.append((expr.right, expr.left.query, False))
                    return None
            self._forbid_nested_in_subquery(expr)
            return expr

        remaining = strip(where)
        return remaining, subqueries

    def _forbid_nested_in_subquery(self, expr: ast.Expr) -> None:
        for child in _children(expr):
            if isinstance(child, ast.InSubquery):
                raise self._error(
                    "[NOT] IN (SELECT ...) is only supported as a "
                    "top-level AND-ed conjunct of WHERE",
                    child,
                )
            self._forbid_nested_in_subquery(child)

    # -- inline VALUES relations -----------------------------------------------

    def _plan_values(self, item: ast.ValuesRef) -> LogicalNode:
        from .logical import ValuesNode
        from .rex import RexLiteral, compile_rex

        empty_scope = Scope([], sql=self._sql)
        translator = ExprTranslator(empty_scope, self._registry, self._sql)
        rows: list[tuple] = []
        col_types: Optional[list[SqlType]] = None
        for row_exprs in item.rows:
            translated = [translator.translate(e) for e in row_exprs]
            values = []
            for translated_expr in translated:
                try:
                    values.append(compile_rex(translated_expr)(()))
                except Exception:
                    raise self._error(
                        "VALUES rows must be constant expressions", item
                    ) from None
            if col_types is None:
                col_types = [e.type for e in translated]
            elif len(translated) != len(col_types):
                raise self._error("VALUES rows must have the same arity", item)
            else:
                for i, expr in enumerate(translated):
                    if col_types[i] is SqlType.NULL:
                        col_types[i] = expr.type
            rows.append(tuple(values))
        assert col_types is not None
        schema = Schema(
            [
                Column(f"col{i}", t if t is not SqlType.NULL else SqlType.INT)
                for i, t in enumerate(col_types)
            ]
        )
        return ValuesNode(schema, rows)

    # -- OVER windows -------------------------------------------------------------

    def _collect_over_calls(self, select: ast.Select) -> list[ast.OverCall]:
        calls: list[ast.OverCall] = []

        def visit(expr: ast.Expr) -> None:
            if isinstance(expr, ast.OverCall):
                if expr not in calls:
                    calls.append(expr)
                return
            for child in _children(expr):
                visit(child)

        for item in select.items:
            if not isinstance(item.expr, ast.Star):
                visit(item.expr)
        return calls

    def _plan_over(
        self,
        node: LogicalNode,
        scope: Scope,
        select: ast.Select,
        over_calls: list[ast.OverCall],
    ) -> LogicalNode:
        spec = over_calls[0]
        for other in over_calls[1:]:
            if (
                other.partition_by != spec.partition_by
                or other.order_by != spec.order_by
                or other.rows_preceding != spec.rows_preceding
            ):
                raise self._error(
                    "all OVER clauses in a query must share the same "
                    "PARTITION BY / ORDER BY / frame",
                    other,
                )
        translator = ExprTranslator(scope, self._registry, self._sql)

        def ordinal_of(ref: ast.ColumnRef) -> int:
            translated = translator.translate(ref)
            if not isinstance(translated, rex.RexInput):
                raise self._error("OVER keys must be plain columns", ref)
            return translated.index

        partition = [ordinal_of(ref) for ref in spec.partition_by]
        order_index = ordinal_of(spec.order_by)
        order_col = node.schema.columns[order_index]
        if order_col.type is not SqlType.TIMESTAMP or (
            not order_col.event_time and not node.bounded
        ):
            raise self._error(
                "OVER on an unbounded input requires ORDER BY a "
                "watermarked event time column",
                spec.order_by,
            )

        # pre-project computed aggregate arguments after the input columns
        width = len(node.schema)
        pre_exprs: list[rex.Rex] = [
            rex.RexInput(i, type=col.type)
            for i, col in enumerate(node.schema.columns)
        ]
        pre_names = list(node.schema.column_names())
        calls: list[AggCall] = []
        for i, over in enumerate(over_calls):
            func_ast = over.func
            if not self._registry.is_aggregate(func_ast.name):
                raise self._error(
                    f"{func_ast.name} is not an aggregate function",
                    func_ast,
                )
            if func_ast.distinct:
                raise self._error(
                    "DISTINCT is not supported in OVER aggregates", func_ast
                )
            if func_ast.is_star:
                arg_index: Optional[int] = None
                arg_type: Optional[SqlType] = None
            else:
                if len(func_ast.args) != 1:
                    raise self._error(
                        f"{func_ast.name} takes one argument", func_ast
                    )
                arg = translator.translate(func_ast.args[0])
                if isinstance(arg, rex.RexInput):
                    arg_index = arg.index
                else:
                    arg_index = len(pre_exprs)
                    pre_exprs.append(arg)
                    pre_names.append(f"$overarg{i}")
                arg_type = arg.type
            function = self._registry.aggregate(
                func_ast.name, star=func_ast.is_star
            )
            out_type = function.return_type(arg_type)
            calls.append(
                AggCall(
                    function,
                    arg_index,
                    Column(f"$over{i}", out_type),
                )
            )
        if len(pre_exprs) > width:
            node = ProjectNode(node, pre_exprs, _uniquify(pre_names))
        over_node = OverNode(
            node, partition, order_index, calls, spec.rows_preceding
        )

        base_width = len(over_node.input.schema)

        def interceptor(expr: ast.Expr) -> Optional[rex.Rex]:
            if isinstance(expr, ast.OverCall):
                idx = over_calls.index(expr)
                out_idx = base_width + idx
                return rex.RexInput(
                    out_idx, type=over_node.schema.columns[out_idx].type
                )
            return None

        post = ExprTranslator(
            scope, self._registry, self._sql, interceptor=interceptor
        )
        exprs: list[rex.Rex] = []
        names: list[str] = []
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                for ordinal in scope.expand_star(item.expr.qualifier, item.pos):
                    column = scope.column_at(ordinal)
                    exprs.append(rex.RexInput(ordinal, type=column.type))
                    names.append(column.name)
                continue
            exprs.append(post.translate(item.expr))
            names.append(
                item.alias or self._derived_name_ast(item.expr, len(names))
            )
        self._forbid_current_time(exprs, select)
        return ProjectNode(over_node, exprs, _uniquify(names))

    # -- MATCH_RECOGNIZE --------------------------------------------------------

    def _plan_match_recognize(self, item: ast.MatchRecognize) -> LogicalNode:
        from .match import MatchMeasure, MatchRecognizeNode, translate_measure

        scan = self._scan(item.input.name, item.input)
        schema = scan.schema
        symbols = {element.symbol.upper() for element in item.pattern}

        def resolve(ref: ast.ColumnRef) -> int:
            name = ref.parts[-1]
            try:
                return schema.index_of(name)
            except Exception:
                raise self._error(
                    f"{item.input.name} has no column {name!r}", ref
                ) from None

        partition = [resolve(ref) for ref in item.partition_by]
        order_index = resolve(item.order_by)
        if not schema.columns[order_index].event_time:
            raise self._error(
                "MATCH_RECOGNIZE ORDER BY must name a watermarked event "
                "time column (the pattern is defined over event-time "
                "order)",
                item.order_by,
            )

        # DEFINE predicates see the current row; a pattern-symbol
        # qualifier (UP.price) refers to that row too.
        scope = Scope.single(schema, alias=item.input.name, sql=self._sql)

        def strip_symbol(expr: ast.Expr) -> Optional[rex.Rex]:
            if (
                isinstance(expr, ast.ColumnRef)
                and len(expr.parts) == 2
                and expr.parts[0].upper() in symbols
            ):
                index = resolve(expr)
                return rex.RexInput(index, type=schema.columns[index].type)
            return None

        translator = ExprTranslator(
            scope, self._registry, self._sql, interceptor=strip_symbol
        )
        defines: dict[str, object] = {}
        for symbol, predicate_ast in item.defines:
            if symbol.upper() not in symbols:
                raise self._error(
                    f"DEFINE names {symbol!r}, which is not in PATTERN",
                    item,
                )
            predicate = translator.translate(predicate_ast)
            if predicate.type not in (SqlType.BOOL, SqlType.NULL):
                raise self._error(
                    f"DEFINE {symbol} must be BOOLEAN", predicate_ast
                )
            defines[symbol.upper()] = rex.compile_rex(predicate)

        measures: list[MatchMeasure] = []
        for measure_ast, name in item.measures:
            evaluate, out_type = translate_measure(
                measure_ast, schema, symbols, self._sql
            )
            measures.append(MatchMeasure(name, out_type, evaluate))

        pattern = [(e.symbol.upper(), e.quantifier) for e in item.pattern]
        return MatchRecognizeNode(
            scan,
            partition,
            order_index,
            measures,
            pattern,
            defines,
            item.after_match,
        )

    # -- temporal (AS OF) joins (Section 8) ------------------------------------

    def _plan_temporal_join(
        self,
        item: ast.JoinClause,
        left: LogicalNode,
        right: LogicalNode,
        scope: Scope,
    ) -> LogicalNode:
        if item.kind != "INNER":
            raise self._error(
                "FOR SYSTEM_TIME AS OF only supports INNER joins", item
            )
        translator = ExprTranslator(scope, self._registry, self._sql)
        as_of = translator.translate(item.as_of)
        left_width = len(left.schema)
        if not isinstance(as_of, rex.RexInput) or as_of.index >= left_width:
            raise self._error(
                "FOR SYSTEM_TIME AS OF must reference a column of the "
                "left (probe) side",
                item,
            )
        if item.condition is None:
            raise self._error("temporal joins require an ON condition", item)
        condition = translator.translate(item.condition)
        left_keys: list[int] = []
        right_keys: list[int] = []
        for conjunct in _conjuncts_of(condition):
            pair = _equi_pair(conjunct, left_width)
            if pair is None:
                raise self._error(
                    "temporal join conditions must be AND-ed equality "
                    "comparisons between the two sides (the version key)",
                    item,
                )
            left_keys.append(pair[0])
            right_keys.append(pair[1] - left_width)
        version_cols = [
            i
            for i, col in enumerate(right.schema.columns)
            if col.event_time
        ]
        if len(version_cols) != 1:
            raise self._error(
                "a temporal table needs exactly one event time column "
                "(the version timestamp); found "
                f"{len(version_cols)}",
                item,
            )
        return TemporalJoinNode(
            left,
            right,
            left_time_index=as_of.index,
            right_time_index=version_cols[0],
            left_keys=left_keys,
            right_keys=right_keys,
        )

    # -- time-progressing predicates (Section 8) ------------------------------

    def _split_temporal(
        self, condition: rex.Rex, at: ast.Node
    ) -> tuple[list[TemporalBound], Optional[rex.Rex]]:
        """Separate CURRENT_TIME conjuncts from an ordinary predicate.

        Supported shape per conjunct: a comparison between a TIMESTAMP
        column (optionally shifted by an interval literal) and
        CURRENT_TIME (optionally shifted) — the tail-of-stream pattern
        of Section 8.  Any other use of CURRENT_TIME is rejected.
        """
        bounds: list[TemporalBound] = []
        residual: list[rex.Rex] = []
        for conjunct in _conjuncts_of(condition):
            if not _mentions_current_time(conjunct):
                residual.append(conjunct)
                continue
            bound = self._temporal_bound_of(conjunct)
            if bound is None:
                raise self._error(
                    "CURRENT_TIME is only supported in tail-of-stream "
                    "predicates of the form "
                    "'<timestamp column> <op> CURRENT_TIME [± INTERVAL]'",
                    at,
                )
            bounds.append(bound)
        combined = None
        if residual:
            combined = residual[0]
            for extra in residual[1:]:
                combined = rex.RexCall(
                    "AND", (combined, extra), type=SqlType.BOOL
                )
        return bounds, combined

    def _temporal_bound_of(self, conjunct: rex.Rex) -> Optional[TemporalBound]:
        if not isinstance(conjunct, rex.RexCall) or conjunct.op not in (
            "<", "<=", ">", ">=",
        ):
            return None
        left = _shifted_term(conjunct.args[0])
        right = _shifted_term(conjunct.args[1])
        if left is None or right is None:
            return None
        op = conjunct.op
        (lbase, lshift), (rbase, rshift) = left, right
        # normalize to: column OP CURRENT_TIME + c
        if isinstance(lbase, rex.RexInput) and isinstance(
            rbase, rex.RexCurrentTime
        ):
            column, c = lbase, rshift - lshift
        elif isinstance(lbase, rex.RexCurrentTime) and isinstance(
            rbase, rex.RexInput
        ):
            column, c = rbase, lshift - rshift
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
        else:
            return None
        if column.type is not SqlType.TIMESTAMP:
            return None
        # column OP now + c  ==>  visibility edge at column - c
        if op == ">":
            # visible while now < column - c
            return TemporalBound(column.index, -c, "before")
        if op == ">=":
            # visible while now <= column - c, i.e. now < column - c + 1
            return TemporalBound(column.index, -c + 1, "before")
        if op == "<":
            # visible once now > column - c, i.e. from column - c + 1
            return TemporalBound(column.index, -c + 1, "from")
        # "<=": visible once now >= column - c
        return TemporalBound(column.index, -c, "from")

    def _forbid_current_time(self, exprs: Sequence[rex.Rex], at: ast.Node) -> None:
        for expr in exprs:
            if _mentions_current_time(expr):
                raise self._error(
                    "CURRENT_TIME is only allowed in WHERE tail-of-stream "
                    "predicates",
                    at,
                )

    # -- windowing TVFs ----------------------------------------------------------

    def _plan_tvf(self, call: ast.TvfCall) -> WindowNode:
        name = call.name.upper()
        params = _TVF_PARAMS.get(name)
        if params is None:
            raise self._error(
                f"unknown table-valued function {call.name!r} "
                f"(supported: Tumble, Hop, Session)",
                call,
            )
        bound: dict[str, ast.Expr] = {}
        positional = 0
        for arg in call.args:
            if isinstance(arg, ast.NamedArg):
                key = arg.name.lower()
                key = _TVF_ALIASES.get(key, key)
                if key not in params:
                    raise self._error(
                        f"{call.name} has no parameter {arg.name!r}", arg
                    )
                if key in bound:
                    raise self._error(f"duplicate argument {arg.name!r}", arg)
                bound[key] = arg.value
            else:
                if positional >= len(params):
                    raise self._error(f"too many arguments to {call.name}", arg)
                bound[params[positional]] = arg
                positional += 1

        data = bound.get("data")
        if not isinstance(data, ast.TableArg):
            raise self._error(
                f"{call.name} requires data => TABLE(name)", call
            )
        input_node = self._scan(data.name, data)

        timecol = bound.get("timecol")
        if not isinstance(timecol, ast.Descriptor):
            raise self._error(
                f"{call.name} requires timecol => DESCRIPTOR(column)", call
            )
        try:
            time_index = input_node.schema.index_of(timecol.column)
        except Exception:
            raise self._error(
                f"{data.name} has no column {timecol.column!r}", timecol
            ) from None
        if not input_node.schema.columns[time_index].event_time:
            raise self._error(
                f"{timecol.column!r} is not a watermarked event time column "
                f"(Extension 1)",
                timecol,
            )

        def interval_of(key: str, required: bool) -> Optional[Duration]:
            expr = bound.get(key)
            if expr is None:
                if required:
                    raise self._error(
                        f"{call.name} requires {key} => INTERVAL ...", call
                    )
                return None
            if not isinstance(expr, ast.IntervalLiteral):
                raise self._error(f"{key} must be an INTERVAL literal", expr)
            return expr.millis

        if name == "TUMBLE":
            size = interval_of("size", required=True)
            offset = interval_of("offset", required=False) or 0
            return WindowNode(
                input_node, WindowKind.TUMBLE, time_index, size, offset=offset
            )
        if name == "HOP":
            size = interval_of("size", required=True)
            slide = interval_of("slide", required=True)
            offset = interval_of("offset", required=False) or 0
            return WindowNode(
                input_node, WindowKind.HOP, time_index, size, slide, offset
            )
        # SESSION
        gap = interval_of("gap", required=True)
        keycol = bound.get("keycol")
        key_indices: tuple[int, ...] = ()
        if keycol is not None:
            if not isinstance(keycol, ast.Descriptor):
                raise self._error("keycol must be DESCRIPTOR(column)", keycol)
            key_indices = (input_node.schema.index_of(keycol.column),)
        return WindowNode(
            input_node,
            WindowKind.SESSION,
            time_index,
            gap,
            key_indices=key_indices,
        )

    # -- aggregation ----------------------------------------------------------------

    def _collect_aggregates(self, select: ast.Select) -> list[ast.FunctionCall]:
        """All distinct aggregate calls in the select list and HAVING."""
        calls: list[ast.FunctionCall] = []

        def visit(expr: ast.Expr, inside_agg: bool) -> None:
            if isinstance(expr, ast.FunctionCall) and self._registry.is_aggregate(
                expr.name
            ):
                if inside_agg:
                    raise self._error("aggregates cannot nest", expr)
                if expr not in calls:
                    calls.append(expr)
                for arg in expr.args:
                    visit(arg, True)
                return
            for child in _children(expr):
                visit(child, inside_agg)

        for item in select.items:
            visit(item.expr, False)
        if select.having is not None:
            visit(select.having, False)
        return calls

    def _check_unbounded_grouping(
        self, node: LogicalNode, at: ast.Node, group_cols: Sequence[Column] = ()
    ) -> None:
        """Extension 2: unbounded grouping requires an event-time key."""
        if node.bounded:
            return
        cols = group_cols if group_cols else node.schema.columns
        if not any(c.event_time for c in cols):
            raise self._error(
                "grouping on an unbounded input requires at least one "
                "watermarked event time column as a grouping key "
                "(Extension 2); window the stream with Tumble/Hop or "
                "query a recorded table instead",
                at,
            )

    def _plan_aggregate(
        self,
        input_node: LogicalNode,
        scope: Scope,
        select: ast.Select,
        agg_calls: list[ast.FunctionCall],
    ) -> LogicalNode:
        translator = ExprTranslator(scope, self._registry, self._sql)

        # Translate the grouping keys and add window sibling columns
        # (grouping by wend implies grouping by wstart, and vice versa).
        group_rexes: list[rex.Rex] = []
        for g in select.group_by:
            translated = translator.translate(g)
            if translated not in group_rexes:
                group_rexes.append(translated)
        for sibling in self._window_siblings(scope, group_rexes):
            if sibling not in group_rexes:
                group_rexes.append(sibling)

        # Resolve the aggregate calls' argument expressions.
        resolved_aggs: list[tuple[ast.FunctionCall, Optional[rex.Rex]]] = []
        for call in agg_calls:
            if call.is_star:
                resolved_aggs.append((call, None))
                continue
            if len(call.args) != 1:
                raise self._error(
                    f"{call.name} takes exactly one argument", call
                )
            resolved_aggs.append((call, translator.translate(call.args[0])))

        # Pre-projection: group keys first, then aggregate arguments.
        pre_exprs: list[rex.Rex] = list(group_rexes)
        pre_names = [
            self._derived_name(g, scope, i) for i, g in enumerate(group_rexes)
        ]
        agg_arg_index: list[Optional[int]] = []
        for _, arg in resolved_aggs:
            if arg is None:
                agg_arg_index.append(None)
            else:
                agg_arg_index.append(len(pre_exprs))
                pre_exprs.append(arg)
                pre_names.append(f"$agg{len(pre_exprs)}")
        pre_names = _uniquify(pre_names)
        self._forbid_current_time(pre_exprs, select)
        pre_project = ProjectNode(input_node, pre_exprs, pre_names)

        # Extension 2 governs GROUP BY *keys*; a global aggregate has no
        # grouping clause, its accumulator state is O(1) per aggregate,
        # and continuously updating queries like SELECT COUNT(*) FROM S
        # (or Section 8's tail-of-stream counts) are legitimate.
        if group_rexes:
            group_cols = [
                pre_project.schema.columns[i] for i in range(len(group_rexes))
            ]
            self._check_unbounded_grouping(pre_project, select, group_cols)

        calls: list[AggCall] = []
        for i, (call, _) in enumerate(resolved_aggs):
            function = self._registry.aggregate(call.name, star=call.is_star)
            arg_idx = agg_arg_index[i]
            arg_type = (
                pre_project.schema.columns[arg_idx].type
                if arg_idx is not None
                else None
            )
            out_type = function.return_type(arg_type)
            calls.append(
                AggCall(
                    function,
                    arg_idx,
                    Column(f"${call.name.lower()}{i}", out_type),
                    distinct=call.distinct,
                )
            )
        agg_node = AggregateNode(pre_project, tuple(range(len(group_rexes))), calls)

        # Everything above the aggregate is expressed over its output.
        post = self._post_agg_translator(
            scope, translator, group_rexes, agg_calls, agg_node
        )

        node: LogicalNode = agg_node
        if select.having is not None:
            condition = post.translate(select.having)
            if condition.type not in (SqlType.BOOL, SqlType.NULL):
                raise self._error("HAVING must be BOOLEAN", select.having)
            node = FilterNode(node, condition)

        exprs: list[rex.Rex] = []
        names: list[str] = []
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                raise self._error(
                    "SELECT * cannot be combined with GROUP BY", item
                )
            translated = post.translate(item.expr)
            exprs.append(translated)
            names.append(item.alias or self._derived_name_ast(item.expr, len(names)))
        self._forbid_current_time(exprs, select)
        return ProjectNode(node, exprs, _uniquify(names))

    def _window_siblings(
        self, scope: Scope, group_rexes: Sequence[rex.Rex]
    ) -> list[rex.Rex]:
        """wstart ↔ wend sibling keys for grouped window TVF columns."""
        siblings: list[rex.Rex] = []
        for entry in scope.entries:
            if not entry.is_window_tvf:
                continue
            wstart = entry.offset + WindowNode.WSTART
            wend = entry.offset + WindowNode.WEND
            indices = {
                g.index
                for g in group_rexes
                if isinstance(g, rex.RexInput)
            }
            if wstart in indices and wend not in indices:
                siblings.append(
                    rex.RexInput(wend, type=SqlType.TIMESTAMP)
                )
            elif wend in indices and wstart not in indices:
                siblings.append(
                    rex.RexInput(wstart, type=SqlType.TIMESTAMP)
                )
        return siblings

    def _post_agg_translator(
        self,
        scope: Scope,
        base: ExprTranslator,
        group_rexes: Sequence[rex.Rex],
        agg_calls: Sequence[ast.FunctionCall],
        agg_node: AggregateNode,
    ) -> ExprTranslator:
        """Translator for expressions over the aggregate's output."""
        out_schema = agg_node.schema
        n_groups = len(group_rexes)

        def interceptor(expr: ast.Expr) -> Optional[rex.Rex]:
            # aggregate call → aggregate output column
            if isinstance(expr, ast.FunctionCall) and self._registry.is_aggregate(
                expr.name
            ):
                idx = agg_calls.index(expr) if expr in agg_calls else -1
                if idx < 0:
                    raise self._error(
                        f"aggregate {expr.name} not collected", expr
                    )
                out_idx = n_groups + idx
                return rex.RexInput(out_idx, type=out_schema.columns[out_idx].type)
            # whole expression matches a grouping key → group output column
            try:
                candidate = base.translate(expr)
            except ValidationError:
                return None
            for gi, group in enumerate(group_rexes):
                if candidate == group:
                    return rex.RexInput(gi, type=out_schema.columns[gi].type)
            if isinstance(expr, ast.ColumnRef):
                raise self._error(
                    f"column {expr} must appear in GROUP BY or inside an "
                    f"aggregate",
                    expr,
                )
            return None

        return ExprTranslator(
            scope, self._registry, self._sql, interceptor=interceptor
        )

    # -- plain (non-aggregate) projection -------------------------------------------

    def _plan_plain_projection(
        self, node: LogicalNode, scope: Scope, select: ast.Select
    ) -> LogicalNode:
        translator = ExprTranslator(scope, self._registry, self._sql)
        exprs: list[rex.Rex] = []
        names: list[str] = []
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                for ordinal in scope.expand_star(item.expr.qualifier, item.pos):
                    column = scope.column_at(ordinal)
                    exprs.append(rex.RexInput(ordinal, type=column.type))
                    names.append(column.name)
                continue
            exprs.append(translator.translate(item.expr))
            names.append(item.alias or self._derived_name_ast(item.expr, len(names)))
        self._forbid_current_time(exprs, select)
        return ProjectNode(node, exprs, _uniquify(names))

    # -- helpers -------------------------------------------------------------------

    def _derived_name(self, expr: rex.Rex, scope: Scope, i: int) -> str:
        if isinstance(expr, rex.RexInput):
            return scope.column_at(expr.index).name
        return f"$expr{i}"

    def _derived_name_ast(self, expr: ast.Expr, i: int) -> str:
        if isinstance(expr, ast.ColumnRef):
            return expr.parts[-1]
        if isinstance(expr, ast.FunctionCall):
            return expr.name.lower()
        return f"EXPR${i}"

    def _resolve_order_key(self, item: ast.OrderItem, schema: Schema) -> int:
        expr = item.expr
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            if not (1 <= expr.value <= len(schema)):
                raise self._error(
                    f"ORDER BY ordinal {expr.value} out of range", expr
                )
            return expr.value - 1
        if isinstance(expr, ast.ColumnRef) and len(expr.parts) == 1:
            try:
                return schema.index_of(expr.parts[0])
            except Exception:
                raise self._error(
                    f"ORDER BY column {expr.parts[0]!r} is not in the select "
                    f"list",
                    expr,
                ) from None
        raise self._error(
            "ORDER BY supports output column names and ordinals", expr
        )


def _equi_pair(
    conjunct: rex.Rex, left_width: int
) -> Optional[tuple[int, int]]:
    """Match ``$l = $r`` with the ordinals on opposite join sides."""
    if not isinstance(conjunct, rex.RexCall) or conjunct.op != "=":
        return None
    a, b = conjunct.args
    if not (isinstance(a, rex.RexInput) and isinstance(b, rex.RexInput)):
        return None
    if a.index < left_width <= b.index:
        return a.index, b.index
    if b.index < left_width <= a.index:
        return b.index, a.index
    return None


def _conjuncts_of(condition: rex.Rex) -> list[rex.Rex]:
    if isinstance(condition, rex.RexCall) and condition.op == "AND":
        out: list[rex.Rex] = []
        for arg in condition.args:
            out.extend(_conjuncts_of(arg))
        return out
    return [condition]


def _mentions_current_time(expr: rex.Rex) -> bool:
    return any(isinstance(n, rex.RexCurrentTime) for n in rex.walk(expr))


def _shifted_term(
    expr: rex.Rex,
) -> Optional[tuple[rex.Rex, int]]:
    """Match ``base`` or ``base ± INTERVAL`` where base is an input or
    CURRENT_TIME; returns (base, shift_millis)."""
    if isinstance(expr, (rex.RexInput, rex.RexCurrentTime)):
        return expr, 0
    if (
        isinstance(expr, rex.RexCall)
        and expr.op in ("+", "-")
        and isinstance(expr.args[0], (rex.RexInput, rex.RexCurrentTime))
        and isinstance(expr.args[1], rex.RexLiteral)
        and expr.args[1].type is SqlType.INTERVAL
    ):
        shift = expr.args[1].value
        return expr.args[0], shift if expr.op == "+" else -shift
    return None


def _children(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.UnaryOp):
        return [expr.operand]
    if isinstance(expr, ast.BinaryOp):
        return [expr.left, expr.right]
    if isinstance(expr, ast.FunctionCall):
        return list(expr.args)
    if isinstance(expr, ast.Case):
        out = [child for pair in expr.whens for child in pair]
        if expr.else_ is not None:
            out.append(expr.else_)
        return out
    if isinstance(expr, ast.Cast):
        return [expr.operand]
    if isinstance(expr, ast.Between):
        return [expr.operand, expr.low, expr.high]
    if isinstance(expr, ast.InList):
        return [expr.operand, *expr.items]
    if isinstance(expr, ast.IsNull):
        return [expr.operand]
    if isinstance(expr, ast.InSubquery):
        return [expr.operand]
    if isinstance(expr, ast.OverCall):
        return []
    return []


def _uniquify(names: Sequence[str]) -> list[str]:
    seen: set[str] = set()
    out: list[str] = []
    for name in names:
        candidate = name
        n = 0
        while candidate.lower() in seen:
            candidate = f"{name}{n}"
            n += 1
        seen.add(candidate.lower())
        out.append(candidate)
    return out


def referenced_tables(
    statement: ast.Statement, catalog: Optional[Catalog] = None
) -> set[str]:
    """Every relation name a statement references, lowercased.

    Walks the whole AST — FROM items, joins, TVF ``TABLE(...)``
    arguments, MATCH_RECOGNIZE inputs, and subqueries in any clause.
    With a ``catalog``, names that resolve to views are expanded
    recursively so the result also names the views' underlying base
    relations — the set an admission layer must check ACLs against
    *before* any plan is built.
    """
    names: set[str] = set()
    expanding: set[str] = set()

    def expand_view(name: str) -> None:
        if catalog is None or name in expanding:
            return
        view = catalog.lookup_view(name)
        if view is not None:
            expanding.add(name)
            visit(view)
            expanding.discard(name)

    def visit(node) -> None:
        if isinstance(node, ast.TableRef):
            names.add(node.name.lower())
            expand_view(node.name.lower())
            return
        if isinstance(node, ast.TableArg):
            names.add(node.name.lower())
            expand_view(node.name.lower())
            return
        if isinstance(node, (tuple, list)):
            for item in node:
                visit(item)
            return
        if dataclasses.is_dataclass(node) and not isinstance(node, type):
            for spec in dataclasses.fields(node):
                visit(getattr(node, spec.name))

    visit(statement)
    return names
