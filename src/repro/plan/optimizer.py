"""Rule-based logical optimizer (a small HepPlanner, after Calcite).

Rules are applied bottom-up to a fixpoint.  Everything here is a pure
plan-quality improvement — the unoptimized plan computes the same
result — but two rules matter enormously for streaming state size,
echoing the Section 5 lessons:

* **equi-key extraction** turns nested-loop probes into hash probes;
* **time-bound analysis** recognizes windowed join predicates (NEXMark
  Q7's ``bidtime >= wend - 10min AND bidtime < wend``) and attaches
  watermark-driven state expiry to the join, keeping join state finite
  on unbounded inputs.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.schema import SqlType
from .logical import (
    FilterNode,
    JoinKind,
    JoinNode,
    LogicalNode,
    ProjectNode,
    SortNode,
    UnionNode,
    WindowNode,
)
from .planner import QueryPlan
from .rex import (
    Rex,
    RexCall,
    RexCase,
    RexCast,
    RexInput,
    RexLiteral,
    compile_rex,
    references,
    shift_inputs,
)

__all__ = ["optimize", "optimize_node"]

_MAX_PASSES = 20


def optimize(plan: QueryPlan) -> QueryPlan:
    """Optimize a planned query, preserving its EMIT clause."""
    return QueryPlan(root=optimize_node(plan.root), emit=plan.emit, sql=plan.sql)


def optimize_node(node: LogicalNode) -> LogicalNode:
    """Apply all rewrite rules to a fixpoint."""
    for _ in range(_MAX_PASSES):
        rewritten = _rewrite(node)
        if rewritten is node:
            return node
        node = rewritten
    return node


def _rewrite(node: LogicalNode) -> LogicalNode:
    new_inputs = [_rewrite(child) for child in node.inputs]
    if any(a is not b for a, b in zip(new_inputs, node.inputs)):
        node = node.with_inputs(new_inputs)
    for rule in _RULES:
        replaced = rule(node)
        if replaced is not None:
            return replaced
    return node


# ---------------------------------------------------------------------------
# expression simplification
# ---------------------------------------------------------------------------


def fold_constants(rex: Rex) -> Rex:
    """Evaluate constant subtrees at plan time."""
    if isinstance(rex, (RexInput, RexLiteral)):
        return rex
    if isinstance(rex, RexCall):
        args = tuple(fold_constants(a) for a in rex.args)
        rex = RexCall(rex.op, args, function=rex.function, type=rex.type)
        if all(isinstance(a, RexLiteral) for a in args):
            try:
                value = compile_rex(rex)(())
            except Exception:
                return rex
            return RexLiteral(value, type=rex.type)
        return _simplify_bool(rex)
    if isinstance(rex, RexCase):
        whens = tuple(
            (fold_constants(c), fold_constants(v)) for c, v in rex.whens
        )
        else_ = fold_constants(rex.else_) if rex.else_ is not None else None
        return RexCase(whens, else_, type=rex.type)
    if isinstance(rex, RexCast):
        operand = fold_constants(rex.operand)
        folded = RexCast(operand, type=rex.type)
        if isinstance(operand, RexLiteral):
            try:
                value = compile_rex(folded)(())
            except Exception:
                return folded
            return RexLiteral(value, type=rex.type)
        return folded
    return rex


def _simplify_bool(rex: RexCall) -> Rex:
    """TRUE/FALSE identity simplifications for AND/OR/NOT."""
    if rex.op == "AND":
        left, right = rex.args
        if isinstance(left, RexLiteral) and left.value is True:
            return right
        if isinstance(right, RexLiteral) and right.value is True:
            return left
        if any(isinstance(a, RexLiteral) and a.value is False for a in rex.args):
            return RexLiteral(False, type=SqlType.BOOL)
    elif rex.op == "OR":
        left, right = rex.args
        if isinstance(left, RexLiteral) and left.value is False:
            return right
        if isinstance(right, RexLiteral) and right.value is False:
            return left
        if any(isinstance(a, RexLiteral) and a.value is True for a in rex.args):
            return RexLiteral(True, type=SqlType.BOOL)
    elif rex.op == "NOT":
        (operand,) = rex.args
        if isinstance(operand, RexLiteral) and operand.value is not None:
            return RexLiteral(not operand.value, type=SqlType.BOOL)
    return rex


def split_conjuncts(rex: Rex) -> list[Rex]:
    """Flatten a predicate into its AND-ed conjuncts."""
    if isinstance(rex, RexCall) and rex.op == "AND":
        out = []
        for arg in rex.args:
            out.extend(split_conjuncts(arg))
        return out
    return [rex]


def and_all(conjuncts: list[Rex]) -> Rex:
    """Rebuild a predicate from conjuncts."""
    if not conjuncts:
        return RexLiteral(True, type=SqlType.BOOL)
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = RexCall("AND", (result, conjunct), type=SqlType.BOOL)
    return result


# ---------------------------------------------------------------------------
# rules (each returns a replacement node or None)
# ---------------------------------------------------------------------------


def _rule_fold_filter(node: LogicalNode) -> Optional[LogicalNode]:
    """Constant-fold filter predicates; drop always-true filters."""
    if not isinstance(node, FilterNode):
        return None
    folded = fold_constants(node.condition)
    if isinstance(folded, RexLiteral) and folded.value is True:
        return node.input
    if folded != node.condition:
        return FilterNode(node.input, folded)
    return None


def _rule_fold_project(node: LogicalNode) -> Optional[LogicalNode]:
    if not isinstance(node, ProjectNode):
        return None
    folded = tuple(fold_constants(e) for e in node.exprs)
    if folded != node.exprs:
        return ProjectNode(node.input, folded, node.names)
    return None


def _rule_merge_filters(node: LogicalNode) -> Optional[LogicalNode]:
    """Filter(Filter(x)) → Filter(x, a AND b)."""
    if isinstance(node, FilterNode) and isinstance(node.input, FilterNode):
        inner = node.input
        combined = and_all(
            split_conjuncts(inner.condition) + split_conjuncts(node.condition)
        )
        return FilterNode(inner.input, combined)
    return None


def _substitute(rex: Rex, exprs: tuple[Rex, ...]) -> Rex:
    """Inline a lower projection's expressions into ``rex``."""
    if isinstance(rex, RexInput):
        return exprs[rex.index]
    if isinstance(rex, RexLiteral):
        return rex
    if isinstance(rex, RexCall):
        return RexCall(
            rex.op,
            tuple(_substitute(a, exprs) for a in rex.args),
            function=rex.function,
            type=rex.type,
        )
    if isinstance(rex, RexCase):
        return RexCase(
            tuple(
                (_substitute(c, exprs), _substitute(v, exprs)) for c, v in rex.whens
            ),
            _substitute(rex.else_, exprs) if rex.else_ is not None else None,
            type=rex.type,
        )
    if isinstance(rex, RexCast):
        return RexCast(_substitute(rex.operand, exprs), type=rex.type)
    return rex


def _rule_merge_projects(node: LogicalNode) -> Optional[LogicalNode]:
    """Project(Project(x)) → Project(x) by expression inlining."""
    if isinstance(node, ProjectNode) and isinstance(node.input, ProjectNode):
        inner = node.input
        merged = tuple(_substitute(e, inner.exprs) for e in node.exprs)
        return ProjectNode(inner.input, merged, node.names)
    return None


def _rule_filter_through_project(node: LogicalNode) -> Optional[LogicalNode]:
    """Filter(Project(x)) → Project(Filter(x)): evaluate the predicate early."""
    if isinstance(node, FilterNode) and isinstance(node.input, ProjectNode):
        project = node.input
        pushed = _substitute(node.condition, project.exprs)
        return ProjectNode(
            FilterNode(project.input, pushed), project.exprs, project.names
        )
    return None


def _rule_filter_into_join(node: LogicalNode) -> Optional[LogicalNode]:
    """Push a filter over a join into the join sides and condition."""
    if not (isinstance(node, FilterNode) and isinstance(node.input, JoinNode)):
        return None
    join = node.input
    if join.kind not in (JoinKind.INNER, JoinKind.CROSS):
        return None
    left_width = len(join.left.schema)
    total = len(join.schema)
    left_only: list[Rex] = []
    right_only: list[Rex] = []
    mixed: list[Rex] = []
    for conjunct in split_conjuncts(node.condition):
        refs = references(conjunct)
        if refs and max(refs) < left_width:
            left_only.append(conjunct)
        elif refs and min(refs) >= left_width:
            right_only.append(
                shift_inputs(conjunct, {i: i - left_width for i in range(left_width, total)})
            )
        else:
            mixed.append(conjunct)
    if not left_only and not right_only and join.kind is not JoinKind.CROSS and not mixed:
        return None
    left = join.left
    if left_only:
        left = FilterNode(left, and_all(left_only))
    right = join.right
    if right_only:
        right = FilterNode(right, and_all(right_only))
    condition = join.condition
    if mixed:
        existing = split_conjuncts(condition) if condition is not None else []
        condition = and_all(existing + mixed)
    changed = (
        left is not join.left or right is not join.right or condition != join.condition
    )
    if not changed:
        return None
    new_join = JoinNode(
        left,
        right,
        JoinKind.INNER if condition is not None else join.kind,
        condition,
    )
    return new_join


def _rule_filter_through_window(node: LogicalNode) -> Optional[LogicalNode]:
    """Push predicates on data columns below a windowing TVF.

    The TVF only *adds* wstart/wend (and, for Hop, multiplies rows), so
    a conjunct that references only the original data columns filters
    the same rows more cheaply below the expansion.
    """
    if not (isinstance(node, FilterNode) and isinstance(node.input, WindowNode)):
        return None
    window = node.input
    pushable: list[Rex] = []
    kept: list[Rex] = []
    for conjunct in split_conjuncts(node.condition):
        refs = references(conjunct)
        if refs and min(refs) >= 2:  # wstart/wend are ordinals 0 and 1
            pushable.append(
                shift_inputs(conjunct, {i: i - 2 for i in refs})
            )
        else:
            kept.append(conjunct)
    if not pushable:
        return None
    pushed = window.with_inputs([FilterNode(window.input, and_all(pushable))])
    if kept:
        return FilterNode(pushed, and_all(kept))
    return pushed


def _rule_filter_through_union(node: LogicalNode) -> Optional[LogicalNode]:
    if isinstance(node, FilterNode) and isinstance(node.input, UnionNode):
        union = node.input
        return UnionNode(
            [FilterNode(child, node.condition) for child in union.inputs]
        )
    return None


def _rule_join_analysis(node: LogicalNode) -> Optional[LogicalNode]:
    """Derive hash keys and state-expiry bounds from a join condition."""
    if not isinstance(node, JoinNode) or node.condition is None:
        return None
    if node.hash_left or node.expire_left or node.expire_right:
        return None  # already analyzed
    left_width = len(node.left.schema)
    hash_left: list[int] = []
    hash_right: list[int] = []
    # time-difference constraints: left_time - right_time in [lo, hi]
    lo: Optional[int] = None
    hi: Optional[int] = None
    time_pair: Optional[tuple[int, int]] = None

    for conjunct in split_conjuncts(node.condition):
        if not isinstance(conjunct, RexCall):
            continue
        if conjunct.op == "=":
            sides = _input_pair(conjunct.args, left_width)
            if sides is not None:
                left_idx, right_idx = sides
                hash_left.append(left_idx)
                hash_right.append(right_idx - left_width)
                continue
        bound = _time_bound_of(conjunct, node, left_width)
        if bound is not None:
            pair, is_lower, value = bound
            if time_pair is None:
                time_pair = pair
            if pair != time_pair:
                continue
            if is_lower:
                lo = value if lo is None else max(lo, value)
            else:
                hi = value if hi is None else min(hi, value)

    expire_left = expire_right = None
    if (
        node.kind is JoinKind.INNER
        and time_pair is not None
        and lo is not None
        and hi is not None
    ):
        left_time, right_time = time_pair
        # Left row l joins right rows r with r.time in
        # [l.time - hi, l.time - lo]; once the watermark passes
        # l.time - lo no such right row can still arrive, so the left
        # row expires at watermark >= l.time + max(-lo, 0).
        expire_left = (left_time, max(-lo, 0))
        expire_right = (right_time - left_width, max(hi, 0))

    if not hash_left and expire_left is None:
        return None
    clone = node.with_inputs(list(node.inputs))
    clone.hash_left = tuple(hash_left)
    clone.hash_right = tuple(hash_right)
    clone.expire_left = expire_left
    clone.expire_right = expire_right
    return clone if _join_meta_differs(node, clone) else None


def _join_meta_differs(a: JoinNode, b: JoinNode) -> bool:
    return (
        a.hash_left != b.hash_left
        or a.hash_right != b.hash_right
        or a.expire_left != b.expire_left
        or a.expire_right != b.expire_right
    )


def _input_pair(
    args: tuple[Rex, ...], left_width: int
) -> Optional[tuple[int, int]]:
    """Match ``$l = $r`` with one ordinal on each join side."""
    a, b = args
    if isinstance(a, RexInput) and isinstance(b, RexInput):
        if a.index < left_width <= b.index:
            return a.index, b.index
        if b.index < left_width <= a.index:
            return b.index, a.index
    return None


def _time_term(rex: Rex) -> Optional[tuple[int, int]]:
    """Match ``$i`` or ``$i ± INTERVAL`` over a TIMESTAMP column.

    Returns ``(ordinal, shift_millis)``.
    """
    if isinstance(rex, RexInput) and rex.type is SqlType.TIMESTAMP:
        return rex.index, 0
    if (
        isinstance(rex, RexCall)
        and rex.op in ("+", "-")
        and rex.type is SqlType.TIMESTAMP
        and isinstance(rex.args[0], RexInput)
        and isinstance(rex.args[1], RexLiteral)
        and rex.args[1].type is SqlType.INTERVAL
    ):
        shift = rex.args[1].value
        return rex.args[0].index, shift if rex.op == "+" else -shift

    return None


def _time_bound_of(
    conjunct: RexCall, join: JoinNode, left_width: int
) -> Optional[tuple[tuple[int, int], bool, int]]:
    """Extract a ``left_time - right_time >= / <= value`` constraint.

    Returns ``((left_ordinal, right_ordinal), is_lower_bound, value)``
    where both ordinals are event-time-aligned columns on opposite join
    sides.  Strict bounds are relaxed by a millisecond, which is always
    conservative for state expiry.
    """
    if conjunct.op not in ("<", "<=", ">", ">="):
        return None
    left_term = _time_term(conjunct.args[0])
    right_term = _time_term(conjunct.args[1])
    if left_term is None or right_term is None:
        return None
    (ai, ashift), (bi, bshift) = left_term, right_term
    schema = join.schema
    if not (schema.columns[ai].event_time and schema.columns[bi].event_time):
        return None
    # normalize to: a - b OP (bshift - ashift)
    value = bshift - ashift
    op = conjunct.op
    if ai < left_width <= bi:
        pair = (ai, bi)
    elif bi < left_width <= ai:
        # flip to left-minus-right form
        pair = (bi, ai)
        value = -value
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
    else:
        return None
    if op in (">", ">="):
        bound_value = value if op == ">=" else value + 1
        return pair, True, bound_value
    bound_value = value if op == "<=" else value - 1
    return pair, False, bound_value


def _rule_drop_trivial_sort(node: LogicalNode) -> Optional[LogicalNode]:
    if isinstance(node, SortNode) and not node.keys and node.limit is None:
        return node.input
    return None


_RULES: list[Callable[[LogicalNode], Optional[LogicalNode]]] = [
    _rule_fold_filter,
    _rule_fold_project,
    _rule_merge_filters,
    _rule_merge_projects,
    _rule_filter_through_project,
    _rule_filter_into_join,
    _rule_filter_through_window,
    _rule_filter_through_union,
    _rule_join_analysis,
    _rule_drop_trivial_sort,
]
