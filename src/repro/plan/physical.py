"""Physical planning: the one-phase / two-phase aggregation choice.

The sharded runtime (``repro.runtime.sharded``) routes rows to their
owner shard and merges every output change at the sink, so a grouped
aggregation ships one retract/insert pair per input row across the
merge.  When the aggregate is *decomposable* — partial state folded on
each shard and combined once per micro-batch reproduces the
single-phase result — the planner can instead run a
:class:`~repro.plan.logical.PartialAggregateNode` on every shard and a
single combine operator at the merge stage.  The partial stage is the
pre-aggregate reduction before the merge reshuffle: the only rows that
cross shards are one payload per (shard, batch), not one changelog
entry per input row.

The choice is made by :func:`plan_physical` from three inputs:

* **eligibility** (:func:`split_eligibility`) — the plan must end in a
  grouped aggregate (optionally under stateless Project/Filter
  finishing steps) whose functions all opt into the delta protocol
  (``AggregateFunction.decomposable``);
* **configuration** — ``ExecutionConfig.two_phase`` is ``auto`` /
  ``on`` / ``off``;
* **counter feedback** — in ``auto`` mode a prior run's
  :class:`~repro.obs.metrics.MetricsReport` supplies the observed
  fan-in (aggregate input rows per created group).  Below
  :data:`MIN_COMBINE_FANIN` the combine stage costs more than the
  per-row merge it replaces, so the planner falls back to one phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .logical import (
    AggregateNode,
    FilterNode,
    LogicalNode,
    PartialAggregateNode,
    ProjectNode,
)
from .planner import QueryPlan

__all__ = [
    "MIN_COMBINE_FANIN",
    "PhysicalDecision",
    "TwoPhaseSplit",
    "estimate_fan_in",
    "plan_physical",
    "split_eligibility",
]

#: Minimum observed rows-per-group below which the combine stage is not
#: worth its overhead: with nearly one row per group the partial stage
#: forwards as many entries as single-phase forwards changes.
MIN_COMBINE_FANIN = 4.0


@dataclass(frozen=True)
class TwoPhaseSplit:
    """The rewritten shard-side plan plus the pieces the merge needs.

    ``finish`` lists the stateless nodes between the original plan root
    and the aggregate, root-first; the combine stage rebuilds them as
    operators downstream of the combine so the merged changelog passes
    through the exact same finishing steps as single-phase execution.
    """

    shard_plan: QueryPlan
    partial: PartialAggregateNode
    aggregate: AggregateNode
    finish: tuple[LogicalNode, ...] = field(default_factory=tuple)


def split_eligibility(
    plan: QueryPlan,
) -> tuple[Optional[TwoPhaseSplit], str]:
    """Decide whether ``plan`` can run as partial + combine.

    Returns ``(split, reason)``; ``split`` is ``None`` when the plan
    must stay single-phase, with ``reason`` saying why (surfaced by
    ``explain(mode="costs")``).
    """
    finish: list[LogicalNode] = []
    node = plan.root
    while isinstance(node, (ProjectNode, FilterNode)):
        finish.append(node)
        node = node.inputs[0]
    if not isinstance(node, AggregateNode):
        return None, "no grouped aggregate at the plan root"
    if not node.group_indices:
        # A global aggregate keeps one group for all rows; it is not
        # partitionable in the first place, but guard it here too.
        return None, "global aggregates keep one group for all rows"
    for call in node.aggs:
        if not call.function.decomposable:
            return None, (
                f"{call.function.name} is not decomposable into "
                "partial + combine"
            )
    partial = PartialAggregateNode(node.input, node.group_indices, node.aggs)
    shard_plan = QueryPlan(root=partial, emit=plan.emit, sql=plan.sql)
    split = TwoPhaseSplit(
        shard_plan=shard_plan,
        partial=partial,
        aggregate=node,
        finish=tuple(finish),
    )
    agg_names = ", ".join(call.function.name for call in node.aggs)
    return split, f"grouped aggregate over decomposable [{agg_names}]"


@dataclass(frozen=True)
class PhysicalDecision:
    """The planner's one-phase / two-phase verdict for one query."""

    mode: str  # 'two_phase' | 'single'
    reason: str
    fan_in: Optional[float] = None

    @property
    def use_two_phase(self) -> bool:
        return self.mode == "two_phase"


def estimate_fan_in(report) -> Optional[float]:
    """Observed aggregate rows-per-group from a prior run's metrics.

    Reads the monotonic ``groups_created`` counter (the ``groups``
    gauge can be zero after watermark freeing) against the aggregate's
    input row count.  The combine operator counts payloads as
    ``rows_in``, so it exports the true entry count as ``agg_rows_in``.
    """
    if report is None:
        return None
    for entry in report.operators:
        groups = entry.get("groups_created")
        if not groups:
            continue
        rows = entry.get("agg_rows_in")
        if rows is None:
            rows = sum(entry.get("rows_in", ()))
        if rows:
            return rows / groups
    return None


def plan_physical(
    plan: QueryPlan,
    decision,
    config,
    feedback=None,
) -> PhysicalDecision:
    """Choose the physical aggregation shape for one query.

    ``decision`` is the :class:`~repro.runtime.partition
    .PartitionDecision` for the plan, ``config`` a resolved
    ``ExecutionConfig`` (only ``two_phase`` and ``parallelism`` are
    read), and ``feedback`` an optional :class:`MetricsReport` from a
    prior run of the same query.
    """
    knob = getattr(config, "two_phase", None) or "auto"
    if knob == "off":
        return PhysicalDecision("single", "two-phase disabled (two_phase=off)")
    parallelism = getattr(config, "parallelism", 1) or 1
    if parallelism <= 1:
        return PhysicalDecision(
            "single", "serial execution has no merge stage to relieve"
        )
    if not decision.partitionable:
        return PhysicalDecision("single", decision.reason)
    split, reason = split_eligibility(plan)
    if split is None:
        return PhysicalDecision("single", reason)
    if knob == "on":
        return PhysicalDecision("two_phase", f"forced on: {reason}")
    fan_in = estimate_fan_in(feedback)
    if fan_in is not None and fan_in < MIN_COMBINE_FANIN:
        return PhysicalDecision(
            "single",
            f"observed fan-in {fan_in:.2f} rows/group below the "
            f"combine threshold {MIN_COMBINE_FANIN:g}",
            fan_in=fan_in,
        )
    return PhysicalDecision("two_phase", reason, fan_in=fan_in)
