"""Pipeline fusion: collapse adjacent Filter/Project chains.

When the executor runs in columnar mode it rewrites the logical tree
so that every maximal chain of :class:`~repro.plan.logical.FilterNode`
and :class:`~repro.plan.logical.ProjectNode` becomes one
:class:`PipelineNode`.  The compiled
:class:`~repro.exec.operators.pipeline.PipelineOperator` then executes
the whole chain in a single generated loop (:mod:`repro.exec.codegen`)
instead of shuttling intermediate row lists between operators.

The rewrite is purely physical — the fused node copies its schema and
streaming metadata (boundedness, completion columns, emit keys)
verbatim from the top of the chain, so EMIT handling, watermark
alignment, and EXPLAIN metadata are unchanged.

Fusion is memoized per plan object (:func:`get_fused_root`).  That is
load-bearing, not a convenience: the executor's sharing machinery —
operator-state donor transplants in ``attach_output``, checkpoint
recipes in ``from_structure``, sharded shard construction from one
shared ``shard_plan`` — correlates operators by the *identity* of
logical nodes.  Re-fusing per dataflow would mint fresh node objects
each time and silently break every one of those id-keyed maps.
"""

from __future__ import annotations

from typing import Any, Sequence, Union

from .logical import FilterNode, LogicalNode, ProjectNode
from .rex import Rex

__all__ = ["PipelineNode", "fuse_pipelines", "get_fused_root"]

# ("filter", Rex) or ("project", tuple[Rex, ...])
PipelineStep = tuple


class PipelineNode(LogicalNode):
    """A fused chain of filter/project steps over one input.

    ``steps`` run bottom-up: ``steps[0]`` sees the input row, each
    project replaces the row the following steps observe.  The node
    carries the chain top's schema and streaming metadata unchanged.
    """

    def __init__(
        self,
        input: LogicalNode,
        steps: Sequence[PipelineStep],
        like: LogicalNode,
    ):
        self.input = input
        self.steps = tuple(steps)
        self.inputs = (input,)
        self.schema = like.schema
        self.bounded = like.bounded
        self.completion_indices = like.completion_indices
        self.emit_key_indices = like.emit_key_indices
        # Retained so with_inputs can rebuild without re-deriving
        # metadata from the (discarded) original chain.
        self._like = like

    def with_inputs(self, inputs: Sequence[LogicalNode]) -> "PipelineNode":
        (child,) = inputs
        return PipelineNode(child, self.steps, self._like)

    def step_kinds(self) -> str:
        return "+".join(kind for kind, _ in self.steps)

    def _describe(self) -> str:
        return f"Pipeline[{self.step_kinds()}]"


def fuse_pipelines(root: LogicalNode) -> LogicalNode:
    """Rewrite ``root`` so maximal Filter/Project chains become
    :class:`PipelineNode`.  Nodes with unchanged children are returned
    as-is (identity preserved); rebuilt nodes keep any physical
    attributes stamped on the originals (``delta_mode``)."""

    def rewrite(node: LogicalNode) -> LogicalNode:
        if isinstance(node, (FilterNode, ProjectNode)):
            chain = [node]
            cursor = node.inputs[0]
            while isinstance(cursor, (FilterNode, ProjectNode)):
                chain.append(cursor)
                cursor = cursor.inputs[0]
            steps = []
            for link in reversed(chain):
                if isinstance(link, FilterNode):
                    steps.append(("filter", link.condition))
                else:
                    steps.append(("project", link.exprs))
            return PipelineNode(rewrite(cursor), steps, like=node)
        children = [rewrite(child) for child in node.inputs]
        if all(new is old for new, old in zip(children, node.inputs)):
            return node
        rebuilt = node.with_inputs(children)
        # Physical annotations (e.g. the two-phase splitter stamping
        # delta_mode on the partial aggregate) live outside the
        # constructor; carry them across the rebuild.
        delta_mode = getattr(node, "delta_mode", None)
        if delta_mode is not None:
            rebuilt.delta_mode = delta_mode
        return rebuilt

    return rewrite(root)


def get_fused_root(plan: Any) -> LogicalNode:
    """The fused tree for ``plan`` (a QueryPlan-like object with a
    ``root``), computed once and cached on the plan object so every
    dataflow built from the same plan sees identical node objects."""
    cached = getattr(plan, "_fused_root", None)
    if cached is not None and getattr(plan, "_fused_from", None) is plan.root:
        return cached
    fused = fuse_pipelines(plan.root)
    plan._fused_root = fused
    plan._fused_from = plan.root
    return fused
