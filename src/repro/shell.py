r"""An interactive streaming-SQL shell.

Beam SQL ships an interactive shell (Appendix B.3.1); this is ours.
Backslash commands manage the catalog and the query instant, and any
other input is buffered until a ``;`` and executed as SQL::

    repro> \load Bid examples/data/paper_bids.script
    repro> \at 8:13
    repro> SELECT * FROM Bid;
    repro> SELECT ... EMIT STREAM;        -- renders the changelog

Run it with ``python -m repro``.
"""

from __future__ import annotations

import sys
from typing import Optional, TextIO

from .core.errors import ReproError
from .core.times import MAX_TIMESTAMP, fmt_time, t
from .engine import StreamEngine
from .explain import EXPLAIN_MODES, parse_explain
from .io import parse_script

__all__ = ["Shell"]

_HELP = """\
Commands:
  \\help               show this help
  \\tables             list registered relations
  \\schema NAME        show a relation's schema
  \\load NAME PATH     register a stream from a dataset script file
  \\save NAME PATH     write a registered relation as a dataset script
  \\at TIME            set the table-view instant (e.g. \\at 8:13)
  \\until TIME         set the stream-view horizon
  \\explain [MODE] SQL;  show the plan (MODE: logical|physical|costs|analyze)
  \\analyze SQL;       run a query and show the plan with operator metrics
  \\watch SQL;         run a query with a live telemetry dashboard
  \\state SQL;         run a query and show per-operator state
  \\view NAME SQL;     register a view (expanded wherever referenced)
  \\subscribe TENANT SQL;  admit a standing query and subscribe to it
  \\queries            list resident standing queries
  \\pump NAME PATH     feed a recorded file through the standing queries
  \\lineage QUERY SEQ  trace a standing query's delta back to source rows
  \\quit               exit
Anything else is SQL, terminated by ';'.  Add EMIT STREAM to see the
changelog rendering instead of a table; EXPLAIN, EXPLAIN ANALYZE, and
EXPLAIN (PHYSICAL|COSTS) prefixes work like their backslash commands."""


class Shell:
    """A line-oriented shell around a :class:`StreamEngine`.

    ``feed`` consumes one input line and returns the output to display
    (or ``None`` while buffering a multi-line statement), which makes
    the shell fully testable without a terminal.
    """

    def __init__(self, engine: Optional[StreamEngine] = None):
        self.engine = engine or StreamEngine()
        self.at: int | None = None
        self.until: int | None = None
        self.done = False
        self._buffer: list[str] = []
        #: where ``\watch`` writes its refreshing frames; ``run()`` points
        #: this at its stdout, tests leave it None and get the final frame.
        self.watch_sink: Optional[TextIO] = None
        #: lazily built standing-query service sharing this engine.
        self._service = None
        #: the shell's own subscriber per standing query it follows.
        self._subscribers: dict[str, object] = {}

    # -- driving ---------------------------------------------------------------

    def feed(self, line: str) -> Optional[str]:
        """Process one line of input; returns printable output or None."""
        stripped = line.strip()
        if not self._buffer and stripped.startswith("\\"):
            return self._command(stripped)
        if not stripped and not self._buffer:
            return None
        self._buffer.append(line)
        if stripped.endswith(";"):
            statement = "\n".join(self._buffer)
            self._buffer = []
            return self._run_sql(statement)
        return None

    @property
    def prompt(self) -> str:
        return "   ...> " if self._buffer else "repro> "

    def run(self, stdin: TextIO = sys.stdin, stdout: TextIO = sys.stdout) -> None:
        """Interactive loop until EOF or ``\\quit``."""
        stdout.write("repro streaming SQL shell — \\help for help\n")
        self.watch_sink = stdout
        while not self.done:
            stdout.write(self.prompt)
            stdout.flush()
            line = stdin.readline()
            if not line:
                break
            output = self.feed(line)
            if output:
                stdout.write(output + "\n")

    # -- commands ---------------------------------------------------------------

    def _command(self, line: str) -> str:
        parts = line.split()
        name = parts[0].lower()
        args = parts[1:]
        try:
            if name in ("\\q", "\\quit", "\\exit"):
                self.done = True
                return "bye"
            if name in ("\\h", "\\help"):
                return _HELP
            if name == "\\tables":
                names = self.engine._catalog.names()
                return "\n".join(names) if names else "(no relations registered)"
            if name == "\\schema":
                if len(args) != 1:
                    return "usage: \\schema NAME"
                return str(self.engine.source(args[0]).schema)
            if name == "\\load":
                if len(args) != 2:
                    return "usage: \\load NAME PATH"
                with open(args[1]) as handle:
                    tvr = parse_script(handle.read())
                self.engine.register_stream(args[0], tvr)
                return (
                    f"registered stream {args[0]} "
                    f"({len(tvr.events())} events)"
                )
            if name == "\\at":
                if not args:
                    self.at = None
                    return "table instant reset to latest"
                self.at = _parse_instant(args[0])
                return f"table views will render as of {fmt_time(self.at)}"
            if name == "\\until":
                if not args:
                    self.until = None
                    return "stream horizon reset to latest"
                self.until = _parse_instant(args[0])
                return f"stream views will render until {fmt_time(self.until)}"
            if name == "\\explain":
                rest = line.split(None, 1)[1].rstrip(";")
                mode = "logical"
                head = rest.split(None, 1)
                if head and head[0].lower() in EXPLAIN_MODES:
                    mode = head[0].lower()
                    rest = head[1] if len(head) > 1 else ""
                if not rest.strip():
                    return "usage: \\explain [MODE] SELECT ...;"
                return self.engine.explain(rest, mode=mode)
            if name == "\\analyze":
                sql = line.split(None, 1)[1].rstrip(";")
                return self.engine.explain(sql, mode="analyze")
            if name == "\\watch":
                if len(parts) < 2:
                    return "usage: \\watch SELECT ...;"
                sql = line.split(None, 1)[1].rstrip(";")
                return self._watch(sql)
            if name == "\\save":
                if len(args) != 2:
                    return "usage: \\save NAME PATH"
                from .io import format_script

                tvr = self.engine.source(args[0])
                with open(args[1], "w") as handle:
                    handle.write(format_script(tvr))
                return f"wrote {args[0]} ({len(tvr.events())} events) to {args[1]}"
            if name == "\\view":
                rest = line.split(None, 2)
                if len(rest) < 3:
                    return "usage: \\view NAME SELECT ...;"
                self.engine.register_view(rest[1], rest[2].rstrip(";"))
                return f"registered view {rest[1]}"
            if name == "\\state":
                sql = line.split(None, 1)[1].rstrip(";")
                dataflow = self.engine.query(sql).dataflow()
                dataflow.run()
                return str(dataflow.state_report())
            if name == "\\subscribe":
                rest = line.split(None, 2)
                if len(rest) < 3:
                    return "usage: \\subscribe TENANT SELECT ...;"
                return self._subscribe(rest[1], rest[2].rstrip(";"))
            if name == "\\queries":
                return self._queries()
            if name == "\\pump":
                if len(args) != 2:
                    return "usage: \\pump NAME PATH"
                return self._pump(args[0], args[1])
            if name == "\\lineage":
                if len(args) != 2:
                    return "usage: \\lineage QUERY_ID SEQ"
                return self._lineage(args[0], int(args[1]))
            return f"unknown command {name} (\\help for help)"
        except (ReproError, OSError, KeyError, ValueError) as exc:
            return f"error: {exc}"

    def _watch(self, sql: str, frames: int = 8) -> str:
        """Run ``sql`` incrementally under a live telemetry dashboard.

        Events are replayed through the incremental dataflow API in the
        same same-instant runs as ``Dataflow.run()`` (so ``batch_size``
        and ``coalesce_updates`` shape the dashboard, including the
        coalesce line); every ``total/frames`` events a one-screen frame
        (rows/sec, watermark, lag percentiles, per-shard skew) is
        written to :attr:`watch_sink` with an ANSI clear so the view
        refreshes in place.  The final frame is returned either way,
        so the command is fully testable without a terminal.

        When the effective config carries a fault plan and the query is
        sharded, the run goes through the supervised batch path instead
        (faults fire, workers restart from checkpoints) and the final
        frame shows the recovery line: restarts, rows replayed, dedup
        drops.
        """
        import time

        from .exec.executor import iter_event_runs, merge_source_events
        from .obs.telemetry import render_dashboard

        query = self.engine.query(sql)
        use_sharded = (
            self.engine.parallelism > 1
            and query.partition_decision().partitionable
        )
        flow = query.sharded_dataflow() if use_sharded else query.dataflow()
        exporter = self.engine.telemetry
        if exporter is not None:
            flow.trace = exporter.on_event
        events = merge_source_events(self.engine._sources)
        total = len(events)
        interval = max(1, total // frames)
        start = time.perf_counter()

        def frame(done: int, final: bool) -> str:
            return render_dashboard(
                title=sql,
                events_done=done,
                events_total=total,
                rows_emitted=flow.output_size,
                elapsed=time.perf_counter() - start,
                watermark=flow.root_watermark,
                telemetry=flow.telemetry,
                shard_rows=flow.shard_routed_rows() if use_sharded else None,
                recovery=getattr(flow, "recovery", None),
                coalesced=flow.changes_coalesced(),
                tenants=(
                    self._tenant_rows() if self._service is not None else None
                ),
                final=final,
            )

        sink = self.watch_sink
        supervised = use_sharded and flow.fault_plan is not None
        if supervised:
            # Fault injection only fires on the supervised batch path,
            # so drive the whole run at once and show the outcome frame.
            result = flow.run()
            if exporter is not None:
                exporter.export(result)
            return frame(total, final=True)
        # Serial flows replay through the same run iterator as
        # Dataflow.run(), so batch_size / coalesce_updates shape the
        # dashboard exactly as they shape a batch run.  Sharded flows
        # route per event (cross-shard batching would break the merge
        # order), which iter_event_runs with batch_size=1 degenerates to.
        if use_sharded:
            batch_size, batchable = 1, lambda source: False
        else:
            batch_size, batchable = flow.batch_size, flow.batchable_source
        next_frame = interval
        done = 0
        interrupted = False
        cursor_hidden = False
        try:
            if sink is not None:
                # Hide the cursor for the refresh loop; the finally
                # below restores it (and resets ANSI state) even when
                # the loop is interrupted, so Ctrl-C never leaves the
                # terminal cursorless or mid-escape.
                sink.write("\x1b[?25l")
                sink.flush()
                cursor_hidden = True
            for i, j in iter_event_runs(events, batch_size, batchable):
                if j == i + 1:
                    flow.process(*events[i])
                else:
                    flow.process_batch(
                        [pair[0] for pair in events[i:j]], events[i][1]
                    )
                done = j
                if sink is not None and j < total and j >= next_frame:
                    sink.write("\x1b[2J\x1b[H" + frame(j, final=False) + "\n")
                    sink.flush()
                    next_frame = (j // interval + 1) * interval
            result = flow.finish()
            if exporter is not None:
                exporter.export(result)
            done = total
        except KeyboardInterrupt:
            interrupted = True
        finally:
            if cursor_hidden:
                sink.write("\x1b[?25h\x1b[0m")
                sink.flush()
        final = frame(done, final=True)
        if interrupted:
            final += f"\n(interrupted after {done}/{total} events)"
        return final

    # -- standing queries --------------------------------------------------------

    @property
    def service(self):
        """The shell's standing-query service (created on first use).

        Shares this shell's engine, so ``\\load``-ed relations are the
        service's catalog and ``\\pump`` advances the same sources SQL
        statements query.
        """
        if self._service is None:
            from dataclasses import replace

            from .service import StandingQueryService

            # The shell is an exploration tool, so provenance tracing
            # defaults on — \lineage works out of the box — whenever the
            # launch flags left it at the global default (off).
            config = self.engine.config
            if config.lineage_sample == 0:
                config = replace(config, lineage_sample=1)
            self._service = StandingQueryService(
                engine=self.engine, config=config
            )
        return self._service

    def _subscribe(self, tenant: str, sql: str) -> str:
        from .service import AdmissionError

        try:
            query = self.service.submit(tenant, sql)
        except AdmissionError as exc:
            return f"rejected [{exc.code}]: {exc.detail}"
        subscriber = self.service.subscribe(
            query.query_id, f"shell-{query.query_id}"
        )
        self._subscribers[query.query_id] = subscriber
        info = query.describe()
        return (
            f"admitted {query.query_id} for tenant {tenant} "
            f"({info['runtime']}); subscribed from seq {subscriber.cursor}"
        )

    def _queries(self) -> str:
        if self._service is None or not self.service.list_queries():
            return "(no standing queries)"
        lines = []
        for info in self.service.list_queries():
            shared = info.get("shared_with") or []
            sharing = f"  shared_with={','.join(shared)}" if shared else ""
            lines.append(
                f"{info['query_id']}  tenant={info['tenant']}  "
                f"runtime={info['runtime']}  deltas={info['deltas']}  "
                f"subscribers={info['subscribers']}  "
                f"state_rows={info['state_rows']}{sharing}"
            )
            lines.append(f"    {info['sql']}")
        return "\n".join(lines)

    def _pump(self, name: str, path: str) -> str:
        """Feed a recorded file through the resident standing queries.

        The interactive stand-in for the server's live tailers: every
        event in the file advances the named source and all standing
        queries, and deltas delivered to this shell's own subscriptions
        are printed changelog-style.
        """
        from .io import TailParser

        parser = TailParser(self.engine.source(name).schema)
        with open(path) as handle:
            events = parser.feed(handle.read())
        events += parser.close()
        published = 0
        for event in events:
            for deltas in self.service.ingest(event, name).values():
                published += len(deltas)
        printed: list[str] = []
        for query_id, subscriber in self._subscribers.items():
            for delta in subscriber.take():
                info = delta.as_dict()
                printed.append(
                    f"{query_id} #{info['seq']} {fmt_time(info['ptime'])} "
                    f"{info['kind']} {tuple(info['values'])}"
                )
        header = f"pumped {len(events)} events; {published} deltas published"
        return "\n".join([header] + printed)

    def _lineage(self, query_id: str, seq: int) -> str:
        """Render one delta's provenance: source rows, then the path."""
        if self._service is None:
            return "(no standing queries; \\subscribe first)"
        explanation = self.service.explain_delta(query_id, seq)
        if explanation is None:
            return (
                f"{query_id} #{seq}: not traced (position outside the "
                f"sample, evicted, or lineage disabled)"
            )
        lines = [
            f"{query_id} #{seq}  trace={explanation['trace_id']}",
            "source rows:",
        ]
        for row in explanation["sources"]:
            if row["kind"] == "watermark":
                lines.append(
                    f"  {row['source']} seq={row['seq']} "
                    f"watermark→{fmt_time(row['values'])} "
                    f"@{fmt_time(row['ptime'])}"
                )
            else:
                lines.append(
                    f"  {row['source']} seq={row['seq']} "
                    f"{tuple(row['values'])} @{fmt_time(row['ptime'])}"
                )
        lines.append("path:")
        for step in explanation["path"]:
            where = f" [shard {step['shard']}]" if step["shard"] is not None else ""
            shared = (
                f" [shared ×{step['shared_by']}]" if step["shared_by"] > 1 else ""
            )
            lines.append(
                f"  {step['operator']}{where}{shared} "
                f"→ {step['produced']} change(s)"
            )
        return "\n".join(lines)

    def _tenant_rows(self) -> list[dict]:
        """Per-tenant service health for the \\watch dashboard."""
        by_tenant: dict[str, dict] = {}
        for query in self.service.session.queries():
            row = by_tenant.setdefault(
                query.tenant,
                {"tenant": query.tenant, "queries": 0, "deltas": 0,
                 "emit": []},
            )
            row["queries"] += 1
            row["deltas"] += query.subscriptions.delivered
            row["emit"].append(
                query.flow.telemetry_of(query.output_id).emit_latency
            )
        from .obs.histogram import Histogram

        out = []
        for tenant in sorted(by_tenant):
            row = by_tenant.pop(tenant)
            merged = Histogram.merged(row.pop("emit"))
            row["p99_emit_ms"] = merged.percentile(0.99)
            out.append(row)
        return out

    def _run_sql(self, sql: str) -> str:
        try:
            statement = sql.strip().rstrip(";").strip()
            explained = parse_explain(statement)
            if explained is not None:
                mode, inner = explained
                return self.engine.explain(inner, mode=mode)
            query = self.engine.query(sql)
            if query.emit.stream:
                until = self.until if self.until is not None else MAX_TIMESTAMP
                return query.stream_table(until=until).to_table()
            at = self.at if self.at is not None else MAX_TIMESTAMP
            return query.table(at=at).to_table()
        except ReproError as exc:
            return f"error: {exc}"


def _parse_instant(text: str) -> int:
    if ":" in text:
        return t(text)
    return int(text)
