"""Function registry: scalar functions and retractable aggregates.

Scalar functions are plain Python callables registered with a return
type rule.  Aggregates follow the *add/retract/result* protocol the
incremental executor needs: when the input to an aggregation is itself
a changelog (e.g. the output of another query), retractions must undo
prior additions, which is why ``MIN``/``MAX`` keep a sorted multiset
rather than a single extreme (Appendix B.2.3's discussion of operator
state).

Users can extend the registry through
:meth:`repro.engine.StreamEngine.register_function` — NEXMark's
``DOLTOEUR`` is registered exactly that way in the benchmarks.
"""

from __future__ import annotations

import math
from bisect import insort
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..core.containers import SortedMultiset
from ..core.errors import ValidationError
from ..core.schema import SqlType

__all__ = [
    "ScalarFunction",
    "AggregateFunction",
    "FunctionRegistry",
    "default_registry",
    "AGGREGATE_NAMES",
]


@dataclass(frozen=True)
class ScalarFunction:
    """A scalar function: an implementation plus a return-type rule.

    ``null_propagating`` functions return NULL whenever any argument is
    NULL without invoking the implementation (the SQL default).
    """

    name: str
    impl: Callable[..., Any]
    return_type: Callable[[list[SqlType]], SqlType]
    min_args: int
    max_args: int
    null_propagating: bool = True

    def check_arity(self, n: int) -> None:
        if not (self.min_args <= n <= self.max_args):
            raise ValidationError(
                f"{self.name} expects between {self.min_args} and "
                f"{self.max_args} arguments, got {n}"
            )


class AggregateFunction:
    """Protocol for incremental aggregates with retraction support."""

    name: str = ""

    #: Whether shard-local partial aggregation may stand in for this
    #: function: partial state folded per shard and merged at the
    #: combine stage must equal feeding every row to one accumulator.
    #: The built-in COUNT/SUM/AVG/MIN/MAX opt in; anything else
    #: (including user registrations) defaults to single-phase so an
    #: unknown function can never be silently split.
    decomposable: bool = False

    def return_type(self, arg_type: Optional[SqlType]) -> SqlType:
        raise NotImplementedError

    def create(self) -> Any:
        """A fresh accumulator."""
        raise NotImplementedError

    def add(self, acc: Any, value: Any) -> None:
        raise NotImplementedError

    def retract(self, acc: Any, value: Any) -> None:
        raise NotImplementedError

    def result(self, acc: Any) -> Any:
        raise NotImplementedError

    # -- two-phase delta protocol ---------------------------------------
    #
    # A *delta* is a shard-batch-local summary of adds and retracts,
    # folded cheaply per row and shipped to the combine stage once per
    # micro-batch.  The generic encoding below — the literal value
    # lists — is correct for any function; numeric functions override
    # it with O(1) accumulator-shaped deltas (COUNT ships one integer,
    # SUM/AVG a (total, count) pair).

    def delta_create(self) -> Any:
        """A fresh per-batch delta builder."""
        return ([], [])

    def delta_add(self, delta: Any, value: Any) -> None:
        delta[0].append(value)

    def delta_retract(self, delta: Any, value: Any) -> None:
        delta[1].append(value)

    def delta_freeze(self, delta: Any) -> Any:
        """A hashable, picklable form of the builder for the payload."""
        return (tuple(delta[0]), tuple(delta[1]))

    def delta_apply(self, acc: Any, frozen: Any) -> None:
        """Fold one frozen delta into a combine-stage accumulator.

        Adds apply before retracts so a value inserted and removed
        within the same batch passes through multiset state cleanly.
        """
        adds, removes = frozen
        for value in adds:
            self.add(acc, value)
        for value in removes:
            self.retract(acc, value)


class _Count(AggregateFunction):
    """COUNT(x): number of non-null inputs; COUNT(*) counts rows."""

    name = "COUNT"
    decomposable = True

    def __init__(self, star: bool = False):
        self._star = star

    def return_type(self, arg_type: Optional[SqlType]) -> SqlType:
        return SqlType.INT

    def create(self) -> list[int]:
        return [0]

    def add(self, acc: list[int], value: Any) -> None:
        if self._star or value is not None:
            acc[0] += 1

    def retract(self, acc: list[int], value: Any) -> None:
        if self._star or value is not None:
            acc[0] -= 1

    def result(self, acc: list[int]) -> int:
        return acc[0]

    # delta: one signed integer per (group, batch)
    def delta_create(self) -> list[int]:
        return [0]

    def delta_add(self, delta: list[int], value: Any) -> None:
        if self._star or value is not None:
            delta[0] += 1

    def delta_retract(self, delta: list[int], value: Any) -> None:
        if self._star or value is not None:
            delta[0] -= 1

    def delta_freeze(self, delta: list[int]) -> int:
        return delta[0]

    def delta_apply(self, acc: list[int], frozen: int) -> None:
        acc[0] += frozen


class _Sum(AggregateFunction):
    """SUM(x): NULL over an empty (or all-null) group, like SQL."""

    name = "SUM"
    decomposable = True

    def return_type(self, arg_type: Optional[SqlType]) -> SqlType:
        if arg_type is None or not arg_type.is_numeric:
            raise ValidationError(f"SUM requires a numeric argument, got {arg_type}")
        return arg_type

    def create(self) -> list:
        return [0, 0]  # running sum, non-null count

    def add(self, acc: list, value: Any) -> None:
        if value is not None:
            acc[0] += value
            acc[1] += 1

    def retract(self, acc: list, value: Any) -> None:
        if value is not None:
            acc[0] -= value
            acc[1] -= 1

    def result(self, acc: list) -> Any:
        return acc[0] if acc[1] else None

    # delta: a (sum, non-null count) pair — same shape as the
    # accumulator, so folding is two additions
    def delta_create(self) -> list:
        return [0, 0]

    def delta_add(self, delta: list, value: Any) -> None:
        if value is not None:
            delta[0] += value
            delta[1] += 1

    def delta_retract(self, delta: list, value: Any) -> None:
        if value is not None:
            delta[0] -= value
            delta[1] -= 1

    def delta_freeze(self, delta: list) -> tuple:
        return (delta[0], delta[1])

    def delta_apply(self, acc: list, frozen: tuple) -> None:
        acc[0] += frozen[0]
        acc[1] += frozen[1]


class _Avg(AggregateFunction):
    """AVG(x): arithmetic mean of non-null inputs."""

    name = "AVG"
    decomposable = True

    def return_type(self, arg_type: Optional[SqlType]) -> SqlType:
        if arg_type is None or not arg_type.is_numeric:
            raise ValidationError(f"AVG requires a numeric argument, got {arg_type}")
        return SqlType.FLOAT

    def create(self) -> list:
        return [0, 0]

    def add(self, acc: list, value: Any) -> None:
        if value is not None:
            acc[0] += value
            acc[1] += 1

    def retract(self, acc: list, value: Any) -> None:
        if value is not None:
            acc[0] -= value
            acc[1] -= 1

    def result(self, acc: list) -> Any:
        return acc[0] / acc[1] if acc[1] else None

    # delta: (sum, count), identical to SUM's
    def delta_create(self) -> list:
        return [0, 0]

    def delta_add(self, delta: list, value: Any) -> None:
        if value is not None:
            delta[0] += value
            delta[1] += 1

    def delta_retract(self, delta: list, value: Any) -> None:
        if value is not None:
            delta[0] -= value
            delta[1] -= 1

    def delta_freeze(self, delta: list) -> tuple:
        return (delta[0], delta[1])

    def delta_apply(self, acc: list, frozen: tuple) -> None:
        acc[0] += frozen[0]
        acc[1] += frozen[1]


class _Extreme(AggregateFunction):
    """Shared implementation of MIN and MAX.

    Keeps the whole multiset so a retraction of the current extreme can
    reveal the runner-up.  Decomposable via the generic value-list
    delta: every value still reaches the combine-stage multiset (there
    is no smaller exact summary that supports retraction), but batched
    into one payload instead of one changelog entry per row.
    """

    decomposable = True

    def __init__(self, name: str):
        self.name = name
        self._take_last = name == "MAX"

    def return_type(self, arg_type: Optional[SqlType]) -> SqlType:
        if arg_type is None:
            raise ValidationError(f"{self.name} requires an argument")
        return arg_type

    def create(self) -> SortedMultiset:
        return SortedMultiset()

    # add/result run once per input row on the hot aggregation path, so
    # both work on the multiset's backing list directly — one frame per
    # row instead of three.

    def add(self, acc: SortedMultiset, value: Any) -> None:
        if value is not None:
            insort(acc._items, value)

    def retract(self, acc: SortedMultiset, value: Any) -> None:
        if value is not None:
            acc.remove(value)

    def result(self, acc: SortedMultiset) -> Any:
        items = acc._items
        if not items:
            return None
        return items[-1] if self._take_last else items[0]

    def delta_add(self, delta: Any, value: Any) -> None:
        if value is not None:
            delta[0].append(value)

    def delta_retract(self, delta: Any, value: Any) -> None:
        if value is not None:
            delta[1].append(value)


class _Variance(AggregateFunction):
    """VAR_POP / VAR_SAMP / STDDEV_POP / STDDEV_SAMP.

    Maintains (count, sum, sum of squares), which supports exact
    retraction; the result is derived on demand.

    Left out of two-phase splitting (``decomposable`` stays False):
    merging float partial sums changes the accumulation order, and
    the cancellation guard in :meth:`result` makes that observable.
    """

    def __init__(self, name: str):
        self.name = name
        self._sample = name.endswith("_SAMP")
        self._sqrt = name.startswith("STDDEV")

    def return_type(self, arg_type: Optional[SqlType]) -> SqlType:
        if arg_type is None or not arg_type.is_numeric:
            raise ValidationError(
                f"{self.name} requires a numeric argument, got {arg_type}"
            )
        return SqlType.FLOAT

    def create(self) -> list:
        return [0, 0.0, 0.0]  # count, sum, sum of squares

    def add(self, acc: list, value: Any) -> None:
        if value is not None:
            acc[0] += 1
            acc[1] += value
            acc[2] += value * value

    def retract(self, acc: list, value: Any) -> None:
        if value is not None:
            acc[0] -= 1
            acc[1] -= value
            acc[2] -= value * value

    def result(self, acc: list) -> Any:
        count, total, squares = acc
        denominator = count - 1 if self._sample else count
        if denominator <= 0:
            return None
        variance = (squares - total * total / count) / denominator
        variance = max(variance, 0.0)  # guard FP cancellation
        return math.sqrt(variance) if self._sqrt else variance


#: Names the planner treats as aggregate calls.
AGGREGATE_NAMES = frozenset(
    {
        "COUNT", "SUM", "AVG", "MIN", "MAX",
        "VAR_POP", "VAR_SAMP", "STDDEV_POP", "STDDEV_SAMP",
    }
)


class FunctionRegistry:
    """Lookup for scalar and aggregate functions, user-extensible."""

    def __init__(self) -> None:
        self._scalars: dict[str, ScalarFunction] = {}
        self._aggregates: dict[str, Callable[[bool], AggregateFunction]] = {}

    # -- scalar ---------------------------------------------------------

    def register_scalar(
        self,
        name: str,
        impl: Callable[..., Any],
        return_type: SqlType | Callable[[list[SqlType]], SqlType],
        min_args: int,
        max_args: int | None = None,
        null_propagating: bool = True,
    ) -> None:
        """Register (or replace) a scalar function."""
        if not callable(return_type):
            fixed = return_type
            return_type = lambda arg_types: fixed  # noqa: E731
        self._scalars[name.upper()] = ScalarFunction(
            name.upper(),
            impl,
            return_type,
            min_args,
            max_args if max_args is not None else min_args,
            null_propagating,
        )

    def scalar(self, name: str) -> ScalarFunction:
        try:
            return self._scalars[name.upper()]
        except KeyError:
            raise ValidationError(f"unknown function {name}") from None

    def has_scalar(self, name: str) -> bool:
        return name.upper() in self._scalars

    # -- aggregate ------------------------------------------------------

    def aggregate(self, name: str, star: bool = False) -> AggregateFunction:
        try:
            factory = self._aggregates[name.upper()]
        except KeyError:
            raise ValidationError(f"unknown aggregate function {name}") from None
        return factory(star)

    def is_aggregate(self, name: str) -> bool:
        return name.upper() in self._aggregates

    def register_aggregate(
        self, name: str, factory: Callable[[bool], AggregateFunction]
    ) -> None:
        self._aggregates[name.upper()] = factory

    def copy(self) -> "FunctionRegistry":
        clone = FunctionRegistry()
        clone._scalars = dict(self._scalars)
        clone._aggregates = dict(self._aggregates)
        return clone


def _numeric_promote(arg_types: list[SqlType]) -> SqlType:
    return (
        SqlType.FLOAT
        if any(t is SqlType.FLOAT for t in arg_types)
        else SqlType.INT
    )


def _same_as_first(arg_types: list[SqlType]) -> SqlType:
    return arg_types[0] if arg_types else SqlType.NULL


def _coalesce_type(arg_types: list[SqlType]) -> SqlType:
    for t in arg_types:
        if t is not SqlType.NULL:
            return t
    return SqlType.NULL


def default_registry() -> FunctionRegistry:
    """The registry with the built-in SQL functions."""
    reg = FunctionRegistry()
    reg.register_scalar("ABS", abs, _same_as_first, 1)
    reg.register_scalar("UPPER", str.upper, SqlType.STRING, 1)
    reg.register_scalar("LOWER", str.lower, SqlType.STRING, 1)
    reg.register_scalar("LENGTH", len, SqlType.INT, 1)
    reg.register_scalar("CHAR_LENGTH", len, SqlType.INT, 1)
    reg.register_scalar(
        "SUBSTRING",
        lambda s, start, length=None: (
            s[start - 1 :] if length is None else s[start - 1 : start - 1 + length]
        ),
        SqlType.STRING,
        2,
        3,
    )
    reg.register_scalar(
        "CONCAT", lambda *parts: "".join(str(p) for p in parts), SqlType.STRING, 1, 64
    )
    reg.register_scalar(
        "COALESCE",
        lambda *vals: next((v for v in vals if v is not None), None),
        _coalesce_type,
        1,
        64,
        null_propagating=False,
    )
    reg.register_scalar(
        "NULLIF",
        lambda a, b: None if a == b else a,
        _same_as_first,
        2,
        null_propagating=False,
    )
    reg.register_scalar("FLOOR", math.floor, SqlType.INT, 1)
    reg.register_scalar("CEIL", math.ceil, SqlType.INT, 1)
    reg.register_scalar("CEILING", math.ceil, SqlType.INT, 1)
    reg.register_scalar("ROUND", round, _same_as_first, 1, 2)
    reg.register_scalar("POWER", lambda a, b: a**b, SqlType.FLOAT, 2)
    reg.register_scalar("SQRT", math.sqrt, SqlType.FLOAT, 1)
    reg.register_scalar("LN", math.log, SqlType.FLOAT, 1)
    reg.register_scalar("EXP", math.exp, SqlType.FLOAT, 1)
    reg.register_scalar("GREATEST", max, _same_as_first, 1, 64)
    reg.register_scalar("LEAST", min, _same_as_first, 1, 64)

    reg.register_aggregate("COUNT", lambda star: _Count(star))
    reg.register_aggregate("SUM", lambda star: _Sum())
    reg.register_aggregate("AVG", lambda star: _Avg())
    reg.register_aggregate("MIN", lambda star: _Extreme("MIN"))
    reg.register_aggregate("MAX", lambda star: _Extreme("MAX"))
    for name in ("VAR_POP", "VAR_SAMP", "STDDEV_POP", "STDDEV_SAMP"):
        reg.register_aggregate(name, lambda star, n=name: _Variance(n))
    return reg
