"""Abstract syntax tree for the SQL dialect.

Nodes are plain frozen dataclasses produced by :mod:`repro.sql.parser`
and consumed by :mod:`repro.plan.planner`.  Each node keeps the source
position of the token that introduced it so the planner can raise
position-annotated :class:`~repro.core.errors.ValidationError`.

The extensions beyond textbook SQL mirror the paper exactly:

* :class:`TableArg` / :class:`Descriptor` — the ``TABLE(Bid)`` and
  ``DESCRIPTOR(bidtime)`` argument markers of SQL:2016 polymorphic
  table functions.
* :class:`TvfCall` — a table-valued function (``Tumble``, ``Hop``,
  ``Session``) in the ``FROM`` clause, with ``name => value`` arguments.
* the ``emit`` field on :class:`Select` — Extensions 4-7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union

from ..core.emit import EmitSpec

__all__ = [
    "Expr", "Literal", "IntervalLiteral", "ColumnRef", "Star", "UnaryOp",
    "BinaryOp", "FunctionCall", "Case", "Cast", "Between", "InList",
    "InSubquery", "Exists",
    "IsNull", "Descriptor", "TableArg", "NamedArg", "ScalarSubquery",
    "CurrentTime", "OverCall",
    "PatternElement", "MatchRecognize", "ValuesRef",
    "FromItem", "TableRef", "SubqueryRef", "TvfCall", "JoinClause",
    "SelectItem", "OrderItem", "Select", "Union_", "Statement",
]


@dataclass(frozen=True)
class Node:
    """Common base: every AST node records a source position.

    The position is excluded from equality so that structurally equal
    expressions compare equal — the planner matches select-list
    expressions against ``GROUP BY`` expressions this way.
    """

    pos: int = field(default=-1, kw_only=True, compare=False)


# --------------------------------------------------------------------
# expressions
# --------------------------------------------------------------------


@dataclass(frozen=True)
class Literal(Node):
    """A numeric, string, boolean, or NULL literal."""

    value: Any


@dataclass(frozen=True)
class IntervalLiteral(Node):
    """``INTERVAL '10' MINUTE`` — resolved to milliseconds at parse time."""

    millis: int
    text: str = ""


@dataclass(frozen=True)
class ColumnRef(Node):
    """A possibly-qualified column reference like ``Bid.price``."""

    parts: tuple[str, ...]

    def __str__(self) -> str:
        return ".".join(self.parts)


@dataclass(frozen=True)
class Star(Node):
    """``*`` or ``alias.*`` in a select list."""

    qualifier: Optional[str] = None


@dataclass(frozen=True)
class UnaryOp(Node):
    """``NOT x`` or ``-x``."""

    op: str
    operand: "Expr"


@dataclass(frozen=True)
class BinaryOp(Node):
    """A binary operator application; ``op`` is the normalized symbol."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class FunctionCall(Node):
    """A scalar or aggregate function call."""

    name: str
    args: tuple["Expr", ...]
    distinct: bool = False
    is_star: bool = False  # COUNT(*)


@dataclass(frozen=True)
class Case(Node):
    """``CASE WHEN c THEN v ... [ELSE e] END`` (searched form)."""

    whens: tuple[tuple["Expr", "Expr"], ...]
    else_: Optional["Expr"]


@dataclass(frozen=True)
class Cast(Node):
    """``CAST(expr AS TYPE)``."""

    operand: "Expr"
    type_name: str


@dataclass(frozen=True)
class Between(Node):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: "Expr"
    low: "Expr"
    high: "Expr"
    negated: bool = False


@dataclass(frozen=True)
class InList(Node):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: "Expr"
    items: tuple["Expr", ...]
    negated: bool = False


@dataclass(frozen=True)
class InSubquery(Node):
    """``expr [NOT] IN (SELECT ...)`` — planned as a semi/anti join."""

    operand: "Expr"
    query: "Select"
    negated: bool = False


@dataclass(frozen=True)
class Exists(Node):
    """``[NOT] EXISTS (SELECT ...)`` — an uncorrelated emptiness test."""

    query: "Select"
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Node):
    """``expr IS [NOT] NULL``."""

    operand: "Expr"
    negated: bool = False


@dataclass(frozen=True)
class Descriptor(Node):
    """``DESCRIPTOR(col)`` — names an event time column for a TVF."""

    column: str


@dataclass(frozen=True)
class TableArg(Node):
    """``TABLE(name)`` — passes a relation into a TVF."""

    name: str


@dataclass(frozen=True)
class NamedArg(Node):
    """``name => value`` in a TVF invocation."""

    name: str
    value: "Expr"


@dataclass(frozen=True)
class ScalarSubquery(Node):
    """A parenthesized SELECT used as a scalar expression."""

    query: "Select"


@dataclass(frozen=True)
class OverCall(Node):
    """``agg(x) OVER (PARTITION BY … ORDER BY et [ROWS …])``.

    Appendix B.2.3 lists "OVER windows with an ORDER BY clause on an
    event time attribute" among the operators that exploit watermarks:
    rows are sequenced per partition by event time, each emitted once
    stable with its running aggregate.  ``rows_preceding`` is the frame
    (``None`` = UNBOUNDED PRECEDING); the frame always ends at CURRENT
    ROW.
    """

    func: "FunctionCall"
    partition_by: tuple["ColumnRef", ...]
    order_by: "ColumnRef"
    rows_preceding: Optional[int] = None


@dataclass(frozen=True)
class CurrentTime(Node):
    """``CURRENT_TIME`` — a time-progressing expression (Section 8).

    Standard SQL fixes CURRENT_TIME at query execution; the paper's
    future-work extension (which we implement) lets it progress, so a
    predicate like ``bidtime > CURRENT_TIME - INTERVAL '1' HOUR``
    defines a continuously moving tail-of-stream view.
    """


Expr = Union[
    Literal, IntervalLiteral, ColumnRef, Star, UnaryOp, BinaryOp,
    FunctionCall, Case, Cast, Between, InList, InSubquery, Exists, IsNull,
    Descriptor, TableArg, NamedArg, ScalarSubquery, CurrentTime, OverCall,
]


# --------------------------------------------------------------------
# FROM items
# --------------------------------------------------------------------


@dataclass(frozen=True)
class TableRef(Node):
    """A base table or stream reference with an optional alias."""

    name: str
    alias: Optional[str] = None


@dataclass(frozen=True)
class SubqueryRef(Node):
    """A derived table: ``(SELECT ...) alias``."""

    query: "Select"
    alias: Optional[str] = None


@dataclass(frozen=True)
class ValuesRef(Node):
    """An inline constant relation: ``(VALUES (1, 'a'), (2, 'b')) t``."""

    rows: tuple[tuple[Expr, ...], ...]
    alias: Optional[str] = None


@dataclass(frozen=True)
class TvfCall(Node):
    """A windowing TVF in the FROM clause: ``Tumble(data => ..., ...)``."""

    name: str
    args: tuple[Expr, ...]
    alias: Optional[str] = None


@dataclass(frozen=True)
class PatternElement(Node):
    """One element of a MATCH_RECOGNIZE row pattern: symbol + quantifier.

    ``quantifier`` is one of ``""`` (exactly one), ``"?"``, ``"*"``,
    ``"+"`` — all greedy, as in SQL:2016.
    """

    symbol: str
    quantifier: str = ""


@dataclass(frozen=True)
class MatchRecognize(Node):
    """``<table> MATCH_RECOGNIZE (...)`` — row pattern matching.

    SQL:2016's complex-event-processing clause, which Section 6.1 of the
    paper singles out as "highly relevant to streaming SQL" when
    combined with event time semantics.  The supported subset:
    PARTITION BY, ORDER BY an event time column, MEASURES with
    FIRST/LAST/COUNT/SUM/MIN/MAX/AVG over pattern symbols, ONE ROW PER
    MATCH, AFTER MATCH SKIP PAST LAST ROW / TO NEXT ROW, and
    concatenation patterns with ``? * +`` quantifiers.
    """

    input: "TableRef"
    partition_by: tuple[ColumnRef, ...]
    order_by: ColumnRef
    measures: tuple[tuple[Expr, str], ...]
    pattern: tuple[PatternElement, ...]
    defines: tuple[tuple[str, Expr], ...]
    after_match: str = "PAST LAST ROW"
    alias: Optional[str] = None


@dataclass(frozen=True)
class JoinClause(Node):
    """An explicit ``JOIN`` with join kind and optional ``ON``.

    ``as_of`` carries the correlated temporal-table access of Section 8:
    ``JOIN Rates FOR SYSTEM_TIME AS OF o.ordertime r ON ...`` joins each
    left row against the right-side *version* valid at the left row's
    own timestamp (instead of the fixed-literal AS OF standard SQL
    allows today).
    """

    left: "FromItem"
    right: "FromItem"
    kind: str  # INNER, LEFT, RIGHT, FULL, CROSS
    condition: Optional[Expr]
    as_of: Optional[Expr] = None


FromItem = Union[
    TableRef, SubqueryRef, TvfCall, JoinClause, MatchRecognize, ValuesRef
]


# --------------------------------------------------------------------
# query structure
# --------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem(Node):
    """One select-list entry: an expression with an optional alias."""

    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem(Node):
    """One ``ORDER BY`` key."""

    expr: Expr
    ascending: bool = True


@dataclass(frozen=True)
class Select(Node):
    """A SELECT statement (or subquery)."""

    items: tuple[SelectItem, ...]
    from_items: tuple[FromItem, ...] = ()
    where: Optional[Expr] = None
    group_by: tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False
    emit: Optional[EmitSpec] = None


@dataclass(frozen=True)
class Union_(Node):
    """``query UNION|INTERSECT|EXCEPT [ALL] query``.

    ``op`` is "UNION", "INTERSECT", or "EXCEPT"; EMIT may apply at the
    top level only.
    """

    left: "Statement"
    right: "Statement"
    all: bool = False
    emit: Optional[EmitSpec] = None
    op: str = "UNION"


Statement = Union[Select, Union_]
