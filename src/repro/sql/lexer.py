"""Hand-written SQL tokenizer.

Produces a flat list of :class:`Token` for the parser.  The dialect is
standard SQL plus the paper's extensions, which need three lexical
additions over a textbook SQL lexer: the named-argument arrow ``=>``
(used by the windowing table-valued functions), and the ``EMIT`` family
of keywords.  Keywords are recognized case-insensitively; identifiers
keep their original spelling (matching is case-insensitive throughout
the engine).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.errors import LexError

__all__ = ["TokenType", "Token", "tokenize", "KEYWORDS"]


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "identifier"
    NUMBER = "number"
    STRING = "string"
    OP = "operator"
    EOF = "eof"


#: Reserved words of the dialect.  Words not in this set lex as
#: identifiers even when they appear in SQL:2016 (we reserve only what
#: the grammar needs, so NEXMark column names like ``category`` work).
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
        "ASC", "DESC", "LIMIT", "AS", "AND", "OR", "NOT",
        "IN", "IS", "NULL", "TRUE", "FALSE", "BETWEEN", "LIKE", "CASE",
        "WHEN", "THEN", "ELSE", "END", "CAST", "JOIN", "INNER", "LEFT",
        "RIGHT", "FULL", "OUTER", "CROSS", "ON", "UNION", "ALL",
        "DISTINCT", "INTERVAL", "TABLE", "DESCRIPTOR", "EMIT", "STREAM",
        "INTERSECT", "EXCEPT",
        "AFTER", "WATERMARK", "DELAY", "EXISTS", "VALUES", "MOD",
        "FOR", "SYSTEM_TIME", "OF", "MATCH_RECOGNIZE", "OVER",
    }
)

_SIMPLE_OPS = {
    "(", ")", ",", ".", ";", "+", "-", "*", "/", "%", "=", "?",
    "[", "]",  # CQL window specifications: Bid [RANGE 10 MINUTE]
}

_WORD_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$"
)
_WORD_CONT = _WORD_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")


@dataclass(frozen=True)
class Token:
    """One lexical token with its position in the source text."""

    type: TokenType
    value: str
    pos: int

    @property
    def upper(self) -> str:
        return self.value.upper()

    def is_keyword(self, *words: str) -> bool:
        return self.type is TokenType.KEYWORD and self.upper in words

    def __str__(self) -> str:
        if self.type is TokenType.EOF:
            return "end of input"
        return repr(self.value)


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``, raising :class:`LexError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch == "/" and sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end == -1:
                raise LexError("unterminated block comment", sql, i)
            i = end + 2
            continue
        if ch in _WORD_START:
            start = i
            while i < n and sql[i] in _WORD_CONT:
                i += 1
            word = sql[start:i]
            kind = TokenType.KEYWORD if word.upper() in KEYWORDS else TokenType.IDENT
            tokens.append(Token(kind, word, start))
            continue
        if ch in _DIGITS or (ch == "." and i + 1 < n and sql[i + 1] in _DIGITS):
            start = i
            seen_dot = False
            seen_exp = False
            while i < n:
                c = sql[i]
                if c in _DIGITS:
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    i += 1
                elif c in "eE" and not seen_exp and i + 1 < n and (
                    sql[i + 1] in _DIGITS
                    or (sql[i + 1] in "+-" and i + 2 < n and sql[i + 2] in _DIGITS)
                ):
                    seen_exp = True
                    i += 2 if sql[i + 1] in "+-" else 1
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, sql[start:i], start))
            continue
        if ch == "'":
            start = i
            i += 1
            parts: list[str] = []
            while True:
                if i >= n:
                    raise LexError("unterminated string literal", sql, start)
                if sql[i] == "'":
                    if i + 1 < n and sql[i + 1] == "'":  # escaped quote
                        parts.append("'")
                        i += 2
                        continue
                    i += 1
                    break
                parts.append(sql[i])
                i += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), start))
            continue
        if ch == '"':
            start = i
            end = sql.find('"', i + 1)
            if end == -1:
                raise LexError("unterminated quoted identifier", sql, start)
            tokens.append(Token(TokenType.IDENT, sql[i + 1 : end], start))
            i = end + 1
            continue
        # multi-character operators, longest match first
        for op in ("=>", "<>", "!=", "<=", ">=", "||"):
            if sql.startswith(op, i):
                tokens.append(Token(TokenType.OP, op, i))
                i += len(op)
                break
        else:
            if ch in _SIMPLE_OPS or ch in "<>":
                tokens.append(Token(TokenType.OP, ch, i))
                i += 1
            else:
                raise LexError(f"unexpected character {ch!r}", sql, i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
