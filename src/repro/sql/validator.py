"""Name resolution and expression typing.

:class:`Scope` models the namespace of a ``FROM`` clause: an ordered
list of (alias, schema) entries, each at a column offset into the
concatenated row.  :class:`ExprTranslator` converts AST expressions
into typed :mod:`~repro.plan.rex` trees against a scope, deriving types
and raising :class:`~repro.core.errors.ValidationError` with source
positions on any semantic problem.

The translator accepts an *interceptor* hook: the planner uses it to
rewrite expressions against an aggregate's output (matching ``GROUP
BY`` expressions and aggregate calls) while reusing all of the typing
logic here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..core.errors import ValidationError
from ..core.schema import Column, Schema, SqlType
from ..plan import rex
from . import ast
from .functions import FunctionRegistry

__all__ = ["ScopeEntry", "Scope", "ExprTranslator"]


@dataclass(frozen=True)
class ScopeEntry:
    """One FROM item visible in a scope."""

    alias: Optional[str]
    schema: Schema
    offset: int
    is_window_tvf: bool = False

    def matches_alias(self, name: str) -> bool:
        return self.alias is not None and self.alias.lower() == name.lower()


class Scope:
    """The namespace produced by a FROM clause."""

    def __init__(self, entries: Sequence[ScopeEntry], sql: str | None = None):
        self.entries = list(entries)
        self.sql = sql

    @classmethod
    def single(
        cls,
        schema: Schema,
        alias: Optional[str] = None,
        sql: str | None = None,
        is_window_tvf: bool = False,
    ) -> "Scope":
        return cls([ScopeEntry(alias, schema, 0, is_window_tvf)], sql=sql)

    @property
    def total_width(self) -> int:
        if not self.entries:
            return 0
        last = self.entries[-1]
        return last.offset + len(last.schema)

    def resolve(self, parts: tuple[str, ...], pos: int = -1) -> tuple[int, Column]:
        """Resolve a possibly-qualified name to (ordinal, column)."""
        if len(parts) == 2:
            qualifier, column = parts
            for entry in self.entries:
                if entry.matches_alias(qualifier):
                    if column.lower() not in {
                        c.name.lower() for c in entry.schema.columns
                    }:
                        raise ValidationError(
                            f"table {qualifier!r} has no column {column!r}",
                            self.sql,
                            pos,
                        )
                    idx = entry.schema.index_of(column)
                    return entry.offset + idx, entry.schema.columns[idx]
            raise ValidationError(f"unknown table alias {qualifier!r}", self.sql, pos)
        if len(parts) == 1:
            name = parts[0]
            hits: list[tuple[int, Column]] = []
            for entry in self.entries:
                if name.lower() in {c.name.lower() for c in entry.schema.columns}:
                    idx = entry.schema.index_of(name)
                    hits.append((entry.offset + idx, entry.schema.columns[idx]))
            if not hits:
                raise ValidationError(f"unknown column {name!r}", self.sql, pos)
            if len(hits) > 1:
                raise ValidationError(f"ambiguous column {name!r}", self.sql, pos)
            return hits[0]
        raise ValidationError(
            f"cannot resolve nested name {'.'.join(parts)!r}", self.sql, pos
        )

    def expand_star(self, qualifier: Optional[str], pos: int = -1) -> list[int]:
        """Ordinals covered by ``*`` or ``qualifier.*``."""
        if qualifier is None:
            return list(range(self.total_width))
        for entry in self.entries:
            if entry.matches_alias(qualifier):
                return list(range(entry.offset, entry.offset + len(entry.schema)))
        raise ValidationError(f"unknown table alias {qualifier!r}", self.sql, pos)

    def column_at(self, ordinal: int) -> Column:
        for entry in self.entries:
            if entry.offset <= ordinal < entry.offset + len(entry.schema):
                return entry.schema.columns[ordinal - entry.offset]
        raise ValidationError(f"ordinal {ordinal} out of range")


# Interceptor: returns a Rex to use for this AST node, or None to let the
# default translation proceed.
Interceptor = Callable[[ast.Expr], Optional[rex.Rex]]

_TYPE_NAMES = {
    "INT": SqlType.INT,
    "INTEGER": SqlType.INT,
    "BIGINT": SqlType.INT,
    "FLOAT": SqlType.FLOAT,
    "DOUBLE": SqlType.FLOAT,
    "REAL": SqlType.FLOAT,
    "VARCHAR": SqlType.STRING,
    "CHAR": SqlType.STRING,
    "STRING": SqlType.STRING,
    "TEXT": SqlType.STRING,
    "BOOLEAN": SqlType.BOOL,
    "BOOL": SqlType.BOOL,
    "TIMESTAMP": SqlType.TIMESTAMP,
    "INTERVAL": SqlType.INTERVAL,
}


class ExprTranslator:
    """Translates AST expressions to typed rex trees."""

    def __init__(
        self,
        scope: Scope,
        registry: FunctionRegistry,
        sql: str | None = None,
        interceptor: Optional[Interceptor] = None,
    ):
        self._scope = scope
        self._registry = registry
        self._sql = sql
        self._interceptor = interceptor

    def _error(self, message: str, node: ast.Node) -> ValidationError:
        return ValidationError(message, self._sql, node.pos)

    def translate(self, expr: ast.Expr) -> rex.Rex:
        if self._interceptor is not None:
            replaced = self._interceptor(expr)
            if replaced is not None:
                return replaced
        return self._translate(expr)

    # -- node dispatch ----------------------------------------------------

    def _translate(self, expr: ast.Expr) -> rex.Rex:
        if isinstance(expr, ast.Literal):
            return rex.RexLiteral(expr.value, type=_literal_type(expr.value))
        if isinstance(expr, ast.IntervalLiteral):
            return rex.RexLiteral(expr.millis, type=SqlType.INTERVAL)
        if isinstance(expr, ast.ColumnRef):
            ordinal, column = self._scope.resolve(expr.parts, expr.pos)
            return rex.RexInput(ordinal, type=column.type)
        if isinstance(expr, ast.UnaryOp):
            return self._unary(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._binary(expr)
        if isinstance(expr, ast.FunctionCall):
            return self._call(expr)
        if isinstance(expr, ast.Case):
            return self._case(expr)
        if isinstance(expr, ast.Cast):
            return self._cast(expr)
        if isinstance(expr, ast.Between):
            low = ast.BinaryOp(">=", expr.operand, expr.low, pos=expr.pos)
            high = ast.BinaryOp("<=", expr.operand, expr.high, pos=expr.pos)
            both = ast.BinaryOp("AND", low, high, pos=expr.pos)
            translated = self.translate(both)
            if expr.negated:
                return rex.RexCall("NOT", (translated,), type=SqlType.BOOL)
            return translated
        if isinstance(expr, ast.InList):
            operand = self.translate(expr.operand)
            items = tuple(self.translate(item) for item in expr.items)
            in_call = rex.RexCall("IN", (operand,) + items, type=SqlType.BOOL)
            if expr.negated:
                return rex.RexCall("NOT", (in_call,), type=SqlType.BOOL)
            return in_call
        if isinstance(expr, ast.IsNull):
            operand = self.translate(expr.operand)
            op = "IS NOT NULL" if expr.negated else "IS NULL"
            return rex.RexCall(op, (operand,), type=SqlType.BOOL)
        if isinstance(expr, ast.CurrentTime):
            return rex.RexCurrentTime(type=SqlType.TIMESTAMP)
        if isinstance(expr, ast.OverCall):
            raise self._error(
                "OVER windows are only allowed in the select list of a "
                "query without GROUP BY",
                expr,
            )
        if isinstance(expr, ast.Star):
            raise self._error("* is only allowed in the select list", expr)
        if isinstance(expr, ast.Exists):
            raise self._error(
                "[NOT] EXISTS is only supported as a top-level AND-ed "
                "conjunct of WHERE",
                expr,
            )
        if isinstance(expr, ast.InSubquery):
            raise self._error(
                "[NOT] IN (SELECT ...) is only supported as a top-level "
                "AND-ed conjunct of WHERE",
                expr,
            )
        if isinstance(expr, ast.ScalarSubquery):
            raise self._error(
                "scalar subqueries are not supported; rewrite as a join "
                "(see the paper's Listing 2 formulation of NEXMark Q7)",
                expr,
            )
        if isinstance(expr, (ast.Descriptor, ast.TableArg, ast.NamedArg)):
            raise self._error(
                f"{type(expr).__name__} is only allowed as a table function "
                f"argument",
                expr,
            )
        raise self._error(f"cannot translate {type(expr).__name__}", expr)

    def _unary(self, expr: ast.UnaryOp) -> rex.Rex:
        operand = self.translate(expr.operand)
        if expr.op == "NOT":
            if operand.type not in (SqlType.BOOL, SqlType.NULL):
                raise self._error("NOT requires a BOOLEAN operand", expr)
            return rex.RexCall("NOT", (operand,), type=SqlType.BOOL)
        if expr.op == "-":
            if not (operand.type.is_numeric or operand.type is SqlType.INTERVAL
                    or operand.type is SqlType.NULL):
                raise self._error(f"cannot negate {operand.type}", expr)
            if isinstance(operand, rex.RexLiteral) and operand.value is not None:
                return rex.RexLiteral(-operand.value, type=operand.type)
            return rex.RexCall("NEG", (operand,), type=operand.type)
        raise self._error(f"unknown unary operator {expr.op}", expr)

    def _binary(self, expr: ast.BinaryOp) -> rex.Rex:
        op = expr.op
        left = self.translate(expr.left)
        right = self.translate(expr.right)
        lt, rt = left.type, right.type
        if op in ("AND", "OR"):
            for side, t in (("left", lt), ("right", rt)):
                if t not in (SqlType.BOOL, SqlType.NULL):
                    raise self._error(f"{op} requires BOOLEAN operands, got {t}", expr)
            return rex.RexCall(op, (left, right), type=SqlType.BOOL)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            if not lt.is_comparable_with(rt):
                raise self._error(f"cannot compare {lt} with {rt}", expr)
            return rex.RexCall(op, (left, right), type=SqlType.BOOL)
        if op == "||":
            return rex.RexCall("||", (left, right), type=SqlType.STRING)
        if op == "LIKE":
            if lt not in (SqlType.STRING, SqlType.NULL) or rt not in (
                SqlType.STRING,
                SqlType.NULL,
            ):
                raise self._error("LIKE requires string operands", expr)
            return rex.RexCall("LIKE", (left, right), type=SqlType.BOOL)
        if op in ("+", "-"):
            result = self._additive_type(op, lt, rt, expr)
            return rex.RexCall(op, (left, right), type=result)
        if op in ("*", "/", "%"):
            result = self._multiplicative_type(op, lt, rt, expr)
            return rex.RexCall(op, (left, right), type=result)
        raise self._error(f"unknown operator {op}", expr)

    def _additive_type(
        self, op: str, lt: SqlType, rt: SqlType, expr: ast.Expr
    ) -> SqlType:
        if lt is SqlType.TIMESTAMP and rt is SqlType.INTERVAL:
            return SqlType.TIMESTAMP
        if lt is SqlType.INTERVAL and rt is SqlType.TIMESTAMP and op == "+":
            return SqlType.TIMESTAMP
        if lt is SqlType.INTERVAL and rt is SqlType.INTERVAL:
            return SqlType.INTERVAL
        if lt is SqlType.TIMESTAMP and rt is SqlType.TIMESTAMP and op == "-":
            return SqlType.INTERVAL
        if (lt.is_numeric or lt is SqlType.NULL) and (
            rt.is_numeric or rt is SqlType.NULL
        ):
            return (
                SqlType.FLOAT
                if SqlType.FLOAT in (lt, rt)
                else SqlType.INT
            )
        raise self._error(f"cannot apply {op} to {lt} and {rt}", expr)

    def _multiplicative_type(
        self, op: str, lt: SqlType, rt: SqlType, expr: ast.Expr
    ) -> SqlType:
        if op == "*" and {lt, rt} == {SqlType.INTERVAL, SqlType.INT}:
            return SqlType.INTERVAL
        if (lt.is_numeric or lt is SqlType.NULL) and (
            rt.is_numeric or rt is SqlType.NULL
        ):
            if op == "/" and lt is SqlType.INT and rt is SqlType.INT:
                return SqlType.INT
            if op == "%":
                return SqlType.INT
            return (
                SqlType.FLOAT
                if SqlType.FLOAT in (lt, rt)
                else SqlType.INT
            )
        raise self._error(f"cannot apply {op} to {lt} and {rt}", expr)

    def _call(self, expr: ast.FunctionCall) -> rex.Rex:
        if self._registry.is_aggregate(expr.name):
            raise self._error(
                f"aggregate {expr.name} is not allowed here", expr
            )
        fn = self._registry.scalar(expr.name)
        fn.check_arity(len(expr.args))
        args = tuple(self.translate(a) for a in expr.args)
        result_type = fn.return_type([a.type for a in args])
        return rex.RexCall(fn.name, args, function=fn, type=result_type)

    def _case(self, expr: ast.Case) -> rex.Rex:
        whens = []
        result_type = SqlType.NULL
        for cond, value in expr.whens:
            c = self.translate(cond)
            if c.type not in (SqlType.BOOL, SqlType.NULL):
                raise self._error("CASE condition must be BOOLEAN", expr)
            v = self.translate(value)
            if result_type is SqlType.NULL:
                result_type = v.type
            whens.append((c, v))
        else_rex = self.translate(expr.else_) if expr.else_ is not None else None
        if result_type is SqlType.NULL and else_rex is not None:
            result_type = else_rex.type
        return rex.RexCase(tuple(whens), else_rex, type=result_type)

    def _cast(self, expr: ast.Cast) -> rex.Rex:
        operand = self.translate(expr.operand)
        target = _TYPE_NAMES.get(expr.type_name)
        if target is None:
            raise self._error(f"unknown type {expr.type_name} in CAST", expr)
        return rex.RexCast(operand, type=target)


def _literal_type(value: object) -> SqlType:
    if value is None:
        return SqlType.NULL
    if isinstance(value, bool):
        return SqlType.BOOL
    if isinstance(value, int):
        return SqlType.INT
    if isinstance(value, float):
        return SqlType.FLOAT
    if isinstance(value, str):
        return SqlType.STRING
    raise ValidationError(f"unsupported literal {value!r}")
