"""Recursive-descent parser for the streaming SQL dialect.

Grammar (informally)::

    statement   := select { UNION [ALL] select } [emit] [";"]
    select      := SELECT [DISTINCT] items [FROM from_list] [WHERE expr]
                   [GROUP BY exprs] [HAVING expr] [ORDER BY keys]
                   [LIMIT n] [emit]
    from_list   := join_chain { "," join_chain }
    join_chain  := from_primary { join_kind JOIN from_primary [ON expr] }
    from_primary:= table [alias] | "(" select ")" [alias]
                 | ident "(" tvf_args ")" [alias]
    emit        := EMIT [STREAM] [after {AND after}]
    after       := AFTER WATERMARK | AFTER DELAY interval

Expressions use conventional precedence:
``OR < AND < NOT < comparison/IS/IN/BETWEEN/LIKE < +,-,|| < *,/,% < unary``.
"""

from __future__ import annotations

from typing import Optional

from ..core.emit import EmitSpec
from ..core.errors import ParseError
from ..core.times import (
    MILLIS_PER_DAY,
    MILLIS_PER_HOUR,
    MILLIS_PER_MINUTE,
    MILLIS_PER_SECOND,
)
from . import ast
from .lexer import Token, TokenType, tokenize

__all__ = ["parse", "parse_expression"]

_INTERVAL_UNITS = {
    "MILLISECOND": 1,
    "MILLISECONDS": 1,
    "SECOND": MILLIS_PER_SECOND,
    "SECONDS": MILLIS_PER_SECOND,
    "MINUTE": MILLIS_PER_MINUTE,
    "MINUTES": MILLIS_PER_MINUTE,
    "HOUR": MILLIS_PER_HOUR,
    "HOURS": MILLIS_PER_HOUR,
    "DAY": MILLIS_PER_DAY,
    "DAYS": MILLIS_PER_DAY,
}

_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}


def parse(sql: str) -> ast.Statement:
    """Parse one SQL statement, raising :class:`ParseError` on failure."""
    return _Parser(sql).parse_statement()


def parse_expression(sql: str) -> ast.Expr:
    """Parse a standalone expression (used by tests and the REPL)."""
    parser = _Parser(sql)
    expr = parser._expr()
    parser._expect_eof()
    return expr


class _Parser:
    def __init__(self, sql: str):
        self._sql = sql
        self._tokens = tokenize(sql)
        self._i = 0

    # -- token plumbing -------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._i]

    def _peek(self, ahead: int = 1) -> Token:
        j = min(self._i + ahead, len(self._tokens) - 1)
        return self._tokens[j]

    def _advance(self) -> Token:
        token = self._cur
        if token.type is not TokenType.EOF:
            self._i += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> ParseError:
        token = token or self._cur
        return ParseError(message, self._sql, token.pos)

    def _at_keyword(self, *words: str) -> bool:
        return self._cur.is_keyword(*words)

    def _accept_keyword(self, *words: str) -> bool:
        if self._at_keyword(*words):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> Token:
        if not self._at_keyword(word):
            raise self._error(f"expected {word}, found {self._cur}")
        return self._advance()

    def _at_op(self, *ops: str) -> bool:
        return self._cur.type is TokenType.OP and self._cur.value in ops

    def _accept_op(self, *ops: str) -> bool:
        if self._at_op(*ops):
            self._advance()
            return True
        return False

    def _expect_op(self, op: str) -> Token:
        if not self._at_op(op):
            raise self._error(f"expected {op!r}, found {self._cur}")
        return self._advance()

    def _expect_ident(self, what: str = "identifier") -> Token:
        if self._cur.type is not TokenType.IDENT:
            raise self._error(f"expected {what}, found {self._cur}")
        return self._advance()

    def _expect_eof(self) -> None:
        if self._cur.type is not TokenType.EOF:
            raise self._error(f"unexpected trailing input: {self._cur}")

    # -- statements -------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        stmt: ast.Statement = self._union_term()
        while self._at_keyword("UNION", "INTERSECT", "EXCEPT"):
            op_token = self._advance()
            is_all = self._accept_keyword("ALL")
            right = self._union_term()
            # A trailing EMIT binds to the whole set operation, not its
            # last arm, so hoist it (EMIT is top-level only).
            hoisted = right.emit
            if hoisted is not None:
                right = _with_emit(right, None)
            stmt = ast.Union_(
                stmt,
                right,
                all=is_all,
                emit=hoisted,
                op=op_token.upper,
                pos=op_token.pos,
            )
        emit = self._emit_clause()
        if emit is not None:
            if isinstance(stmt, ast.Select):
                if stmt.emit is not None:
                    raise self._error("duplicate EMIT clause")
                stmt = _with_emit(stmt, emit)
            else:
                stmt = ast.Union_(
                    stmt.left,
                    stmt.right,
                    all=stmt.all,
                    emit=emit,
                    op=stmt.op,
                    pos=stmt.pos,
                )
        self._accept_op(";")
        self._expect_eof()
        return stmt

    def _union_term(self) -> ast.Select:
        if self._accept_op("("):
            inner = self._select()
            self._expect_op(")")
            return inner
        return self._select()

    def _select(self) -> ast.Select:
        pos = self._expect_keyword("SELECT").pos
        distinct = False
        if self._accept_keyword("DISTINCT"):
            distinct = True
        else:
            self._accept_keyword("ALL")
        items = [self._select_item()]
        while self._accept_op(","):
            items.append(self._select_item())

        from_items: list[ast.FromItem] = []
        if self._accept_keyword("FROM"):
            from_items.append(self._join_chain())
            while self._accept_op(","):
                from_items.append(self._join_chain())

        where = self._expr() if self._accept_keyword("WHERE") else None

        group_by: list[ast.Expr] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._expr())
            while self._accept_op(","):
                group_by.append(self._expr())

        having = self._expr() if self._accept_keyword("HAVING") else None

        order_by: list[ast.OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._order_item())
            while self._accept_op(","):
                order_by.append(self._order_item())

        limit: Optional[int] = None
        if self._accept_keyword("LIMIT"):
            token = self._advance()
            if token.type is not TokenType.NUMBER or "." in token.value:
                raise self._error("LIMIT expects an integer", token)
            limit = int(token.value)

        emit = self._emit_clause()
        return ast.Select(
            items=tuple(items),
            from_items=tuple(from_items),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
            emit=emit,
            pos=pos,
        )

    def _select_item(self) -> ast.SelectItem:
        pos = self._cur.pos
        # `*` and `alias.*`
        if self._at_op("*"):
            self._advance()
            return ast.SelectItem(ast.Star(pos=pos), pos=pos)
        if (
            self._cur.type is TokenType.IDENT
            and self._peek().type is TokenType.OP
            and self._peek().value == "."
            and self._peek(2).type is TokenType.OP
            and self._peek(2).value == "*"
        ):
            qualifier = self._advance().value
            self._advance()  # .
            self._advance()  # *
            return ast.SelectItem(ast.Star(qualifier=qualifier, pos=pos), pos=pos)
        expr = self._expr()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident("alias").value
        elif self._cur.type is TokenType.IDENT:
            alias = self._advance().value
        return ast.SelectItem(expr, alias, pos=pos)

    def _order_item(self) -> ast.OrderItem:
        pos = self._cur.pos
        expr = self._expr()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(expr, ascending, pos=pos)

    # -- FROM clause ------------------------------------------------------

    def _join_chain(self) -> ast.FromItem:
        left = self._from_primary()
        while True:
            kind: Optional[str] = None
            pos = self._cur.pos
            if self._accept_keyword("CROSS"):
                kind = "CROSS"
            elif self._accept_keyword("INNER"):
                kind = "INNER"
            elif self._at_keyword("LEFT", "RIGHT", "FULL"):
                kind = self._advance().upper
                self._accept_keyword("OUTER")
            elif self._at_keyword("JOIN"):
                kind = "INNER"
            if kind is None:
                return left
            self._expect_keyword("JOIN")
            right = self._from_primary()
            # `FOR SYSTEM_TIME AS OF <expr>`: a correlated temporal join.
            as_of: Optional[ast.Expr] = None
            if self._accept_keyword("FOR"):
                self._expect_keyword("SYSTEM_TIME")
                self._expect_keyword("AS")
                self._expect_keyword("OF")
                as_of = self._expr()
                # the version-table alias follows the AS OF clause
                alias = self._from_alias()
                if alias is not None:
                    if isinstance(right, ast.TableRef):
                        right = ast.TableRef(right.name, alias, pos=right.pos)
                    else:
                        raise self._error(
                            "FOR SYSTEM_TIME AS OF requires a plain table"
                        )
            condition: Optional[ast.Expr] = None
            if kind != "CROSS":
                self._expect_keyword("ON")
                condition = self._expr()
            left = ast.JoinClause(left, right, kind, condition, as_of=as_of, pos=pos)

    def _from_primary(self) -> ast.FromItem:
        pos = self._cur.pos
        if self._accept_op("("):
            if self._at_keyword("VALUES"):
                self._advance()
                rows = [self._values_row()]
                while self._accept_op(","):
                    rows.append(self._values_row())
                self._expect_op(")")
                alias = self._from_alias()
                return ast.ValuesRef(tuple(rows), alias, pos=pos)
            query = self._select()
            self._expect_op(")")
            alias = self._from_alias()
            return ast.SubqueryRef(query, alias, pos=pos)
        name_token = self._expect_ident("table name")
        if self._at_keyword("MATCH_RECOGNIZE"):
            return self._match_recognize(
                ast.TableRef(name_token.value, pos=name_token.pos)
            )
        # A TVF call looks like `Name ( ... )`.
        if self._at_op("("):
            self._advance()
            args: list[ast.Expr] = []
            if not self._at_op(")"):
                args.append(self._tvf_arg())
                while self._accept_op(","):
                    args.append(self._tvf_arg())
            self._expect_op(")")
            alias = self._from_alias()
            return ast.TvfCall(name_token.value, tuple(args), alias, pos=pos)
        alias = self._from_alias()
        return ast.TableRef(name_token.value, alias, pos=pos)

    def _values_row(self) -> tuple[ast.Expr, ...]:
        self._expect_op("(")
        exprs = [self._expr()]
        while self._accept_op(","):
            exprs.append(self._expr())
        self._expect_op(")")
        return tuple(exprs)

    def _from_alias(self) -> Optional[str]:
        if self._accept_keyword("AS"):
            return self._expect_ident("alias").value
        if self._cur.type is TokenType.IDENT:
            return self._advance().value
        return None

    def _tvf_arg(self) -> ast.Expr:
        # `name => value` named argument
        if (
            self._cur.type is TokenType.IDENT
            and self._peek().type is TokenType.OP
            and self._peek().value == "=>"
        ):
            pos = self._cur.pos
            name = self._advance().value
            self._advance()  # =>
            return ast.NamedArg(name, self._expr(), pos=pos)
        return self._expr()

    # -- OVER windows ----------------------------------------------------------

    def _over_clause(self, call: ast.FunctionCall) -> ast.OverCall:
        pos = self._expect_keyword("OVER").pos
        self._expect_op("(")
        partition_by: list[ast.ColumnRef] = []
        if self._accept_word("PARTITION"):
            self._expect_keyword("BY")
            partition_by.append(self._column_ref())
            while self._accept_op(","):
                partition_by.append(self._column_ref())
        self._expect_keyword("ORDER")
        self._expect_keyword("BY")
        order_by = self._column_ref()
        rows_preceding: Optional[int] = None
        if self._accept_word("ROWS"):
            self._expect_keyword("BETWEEN")
            if self._accept_word("UNBOUNDED"):
                self._expect_word("PRECEDING")
            else:
                count_token = self._advance()
                if count_token.type is not TokenType.NUMBER:
                    raise self._error("expected a row count", count_token)
                rows_preceding = int(count_token.value)
                self._expect_word("PRECEDING")
            self._expect_keyword("AND")
            self._expect_word("CURRENT")
            self._expect_word("ROW")
        self._expect_op(")")
        return ast.OverCall(
            call, tuple(partition_by), order_by, rows_preceding, pos=pos
        )

    # -- MATCH_RECOGNIZE -----------------------------------------------------

    def _at_word(self, word: str) -> bool:
        """Soft keyword: match an IDENT or KEYWORD by its text."""
        return (
            self._cur.type in (TokenType.IDENT, TokenType.KEYWORD)
            and self._cur.upper == word
        )

    def _accept_word(self, word: str) -> bool:
        if self._at_word(word):
            self._advance()
            return True
        return False

    def _expect_word(self, word: str) -> None:
        if not self._accept_word(word):
            raise self._error(f"expected {word}, found {self._cur}")

    def _column_ref(self) -> ast.ColumnRef:
        expr = self._ident_expr()
        if not isinstance(expr, ast.ColumnRef):
            raise self._error("expected a column reference")
        return expr

    def _match_recognize(self, input_ref: ast.TableRef) -> ast.MatchRecognize:
        pos = self._expect_keyword("MATCH_RECOGNIZE").pos
        self._expect_op("(")

        partition_by: list[ast.ColumnRef] = []
        if self._accept_word("PARTITION"):
            self._expect_keyword("BY")
            partition_by.append(self._column_ref())
            while self._accept_op(","):
                partition_by.append(self._column_ref())

        self._expect_keyword("ORDER")
        self._expect_keyword("BY")
        order_by = self._column_ref()

        self._expect_word("MEASURES")
        measures: list[tuple[ast.Expr, str]] = []
        while True:
            expr = self._expr()
            self._expect_keyword("AS")
            alias = self._expect_ident("measure name").value
            measures.append((expr, alias))
            if not self._accept_op(","):
                break

        if self._accept_word("ONE"):
            self._expect_word("ROW")
            self._expect_word("PER")
            self._expect_word("MATCH")

        after_match = "PAST LAST ROW"
        if self._accept_keyword("AFTER"):
            self._expect_word("MATCH")
            self._expect_word("SKIP")
            if self._accept_word("PAST"):
                self._expect_word("LAST")
                self._expect_word("ROW")
            else:
                self._expect_word("TO")
                self._expect_word("NEXT")
                self._expect_word("ROW")
                after_match = "TO NEXT ROW"

        self._expect_word("PATTERN")
        self._expect_op("(")
        pattern: list[ast.PatternElement] = []
        while not self._at_op(")"):
            symbol = self._expect_ident("pattern symbol")
            quantifier = ""
            if self._at_op("?", "*", "+"):
                quantifier = self._advance().value
            pattern.append(
                ast.PatternElement(symbol.value, quantifier, pos=symbol.pos)
            )
        self._expect_op(")")
        if not pattern:
            raise self._error("PATTERN must contain at least one symbol")

        self._expect_word("DEFINE")
        defines: list[tuple[str, ast.Expr]] = []
        while True:
            symbol = self._expect_ident("pattern symbol").value
            self._expect_keyword("AS")
            defines.append((symbol, self._expr()))
            if not self._accept_op(","):
                break

        self._expect_op(")")
        alias = self._from_alias()
        return ast.MatchRecognize(
            input=input_ref,
            partition_by=tuple(partition_by),
            order_by=order_by,
            measures=tuple(measures),
            pattern=tuple(pattern),
            defines=tuple(defines),
            after_match=after_match,
            alias=alias,
            pos=pos,
        )

    # -- EMIT clause --------------------------------------------------------

    def _emit_clause(self) -> Optional[EmitSpec]:
        if not self._accept_keyword("EMIT"):
            return None
        stream = self._accept_keyword("STREAM")
        after_watermark = False
        delay: Optional[int] = None
        saw_after = False
        while self._accept_keyword("AFTER"):
            saw_after = True
            if self._accept_keyword("WATERMARK"):
                after_watermark = True
            elif self._accept_keyword("DELAY"):
                if not self._at_keyword("INTERVAL"):
                    raise self._error("AFTER DELAY expects an INTERVAL literal")
                delay = self._interval_literal().millis
            else:
                raise self._error("expected WATERMARK or DELAY after AFTER")
            if not self._accept_keyword("AND"):
                break
        if not stream and not saw_after:
            raise self._error("EMIT requires STREAM and/or AFTER clauses")
        return EmitSpec(stream=stream, after_watermark=after_watermark, delay=delay)

    # -- expressions ----------------------------------------------------------

    def _expr(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self._at_keyword("OR"):
            pos = self._advance().pos
            left = ast.BinaryOp("OR", left, self._and_expr(), pos=pos)
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._not_expr()
        while self._at_keyword("AND"):
            pos = self._advance().pos
            left = ast.BinaryOp("AND", left, self._not_expr(), pos=pos)
        return left

    def _not_expr(self) -> ast.Expr:
        if self._at_keyword("NOT"):
            pos = self._advance().pos
            return ast.UnaryOp("NOT", self._not_expr(), pos=pos)
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        if self._cur.type is TokenType.OP and self._cur.value in _COMPARISON_OPS:
            token = self._advance()
            op = "<>" if token.value == "!=" else token.value
            return ast.BinaryOp(op, left, self._additive(), pos=token.pos)
        if self._at_keyword("IS"):
            pos = self._advance().pos
            negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return ast.IsNull(left, negated, pos=pos)
        negated = False
        if self._at_keyword("NOT") and self._peek().is_keyword("IN", "BETWEEN", "LIKE"):
            self._advance()
            negated = True
        if self._at_keyword("BETWEEN"):
            pos = self._advance().pos
            low = self._additive()
            self._expect_keyword("AND")
            high = self._additive()
            return ast.Between(left, low, high, negated, pos=pos)
        if self._at_keyword("IN"):
            pos = self._advance().pos
            self._expect_op("(")
            if self._at_keyword("SELECT"):
                query = self._select()
                self._expect_op(")")
                return ast.InSubquery(left, query, negated, pos=pos)
            items = [self._expr()]
            while self._accept_op(","):
                items.append(self._expr())
            self._expect_op(")")
            return ast.InList(left, tuple(items), negated, pos=pos)
        if self._at_keyword("LIKE"):
            pos = self._advance().pos
            pattern = self._additive()
            expr: ast.Expr = ast.BinaryOp("LIKE", left, pattern, pos=pos)
            if negated:
                expr = ast.UnaryOp("NOT", expr, pos=pos)
            return expr
        if negated:
            raise self._error("expected IN, BETWEEN, or LIKE after NOT")
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while self._at_op("+", "-", "||"):
            token = self._advance()
            left = ast.BinaryOp(token.value, left, self._multiplicative(), pos=token.pos)
        return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while self._at_op("*", "/", "%") or self._at_keyword("MOD"):
            token = self._advance()
            op = "%" if token.upper == "MOD" else token.value
            left = ast.BinaryOp(op, left, self._unary(), pos=token.pos)
        return left

    def _unary(self) -> ast.Expr:
        if self._at_op("-"):
            pos = self._advance().pos
            return ast.UnaryOp("-", self._unary(), pos=pos)
        if self._at_op("+"):
            self._advance()
            return self._unary()
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self._cur
        pos = token.pos
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            value = float(text) if ("." in text or "e" in text or "E" in text) else int(text)
            return ast.Literal(value, pos=pos)
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value, pos=pos)
        if self._accept_keyword("TRUE"):
            return ast.Literal(True, pos=pos)
        if self._accept_keyword("FALSE"):
            return ast.Literal(False, pos=pos)
        if self._accept_keyword("NULL"):
            return ast.Literal(None, pos=pos)
        if self._at_keyword("INTERVAL"):
            return self._interval_literal()
        if self._at_keyword("CASE"):
            return self._case_expr()
        if self._accept_keyword("CAST"):
            self._expect_op("(")
            operand = self._expr()
            self._expect_keyword("AS")
            type_name = self._advance().value.upper()
            self._expect_op(")")
            return ast.Cast(operand, type_name, pos=pos)
        if self._accept_keyword("EXISTS"):
            self._expect_op("(")
            query = self._select()
            self._expect_op(")")
            return ast.Exists(query, pos=pos)
        if self._accept_keyword("TABLE"):
            self._expect_op("(")
            name = self._expect_ident("table name").value
            self._expect_op(")")
            return ast.TableArg(name, pos=pos)
        if self._accept_keyword("DESCRIPTOR"):
            self._expect_op("(")
            column = self._expect_ident("column name").value
            self._expect_op(")")
            return ast.Descriptor(column, pos=pos)
        if self._accept_op("("):
            if self._at_keyword("SELECT"):
                query = self._select()
                self._expect_op(")")
                return ast.ScalarSubquery(query, pos=pos)
            expr = self._expr()
            self._expect_op(")")
            return expr
        if token.type is TokenType.IDENT:
            return self._ident_expr()
        raise self._error(f"unexpected {token} in expression")

    def _ident_expr(self) -> ast.Expr:
        token = self._advance()
        pos = token.pos
        if token.upper in ("CURRENT_TIME", "CURRENT_TIMESTAMP") and not self._at_op("("):
            return ast.CurrentTime(pos=pos)
        # function call?
        if self._at_op("(") and token.type is TokenType.IDENT:
            self._advance()
            distinct = self._accept_keyword("DISTINCT")
            if self._at_op("*"):
                self._advance()
                self._expect_op(")")
                star_call = ast.FunctionCall(
                    token.value.upper(), (), is_star=True, pos=pos
                )
                if self._at_keyword("OVER"):
                    return self._over_clause(star_call)
                return star_call
            args: list[ast.Expr] = []
            if not self._at_op(")"):
                args.append(self._expr())
                while self._accept_op(","):
                    args.append(self._expr())
            self._expect_op(")")
            call = ast.FunctionCall(
                token.value.upper(), tuple(args), distinct=distinct, pos=pos
            )
            if self._at_keyword("OVER"):
                return self._over_clause(call)
            return call
        # qualified column reference
        parts = [token.value]
        while self._at_op(".") and self._peek().type is TokenType.IDENT:
            self._advance()
            parts.append(self._advance().value)
        return ast.ColumnRef(tuple(parts), pos=pos)

    def _interval_literal(self) -> ast.IntervalLiteral:
        pos = self._expect_keyword("INTERVAL").pos
        token = self._advance()
        if token.type is TokenType.STRING:
            text = token.value
        elif token.type is TokenType.NUMBER:
            text = token.value
        else:
            raise self._error("INTERVAL expects a quoted or numeric value", token)
        try:
            amount = float(text)
        except ValueError:
            raise self._error(f"bad INTERVAL value {text!r}", token) from None
        unit_token = self._advance()
        unit = unit_token.value.upper()
        if unit not in _INTERVAL_UNITS:
            raise self._error(f"unknown INTERVAL unit {unit_token.value!r}", unit_token)
        total = int(amount * _INTERVAL_UNITS[unit])
        return ast.IntervalLiteral(total, text=f"INTERVAL '{text}' {unit}", pos=pos)

    def _case_expr(self) -> ast.Case:
        pos = self._expect_keyword("CASE").pos
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        base: Optional[ast.Expr] = None
        if not self._at_keyword("WHEN"):
            base = self._expr()  # simple CASE: CASE x WHEN v THEN ...
        while self._accept_keyword("WHEN"):
            cond = self._expr()
            if base is not None:
                cond = ast.BinaryOp("=", base, cond, pos=pos)
            self._expect_keyword("THEN")
            whens.append((cond, self._expr()))
        if not whens:
            raise self._error("CASE requires at least one WHEN")
        else_ = self._expr() if self._accept_keyword("ELSE") else None
        self._expect_keyword("END")
        return ast.Case(tuple(whens), else_, pos=pos)


def _with_emit(select: ast.Select, emit: Optional[EmitSpec]) -> ast.Select:
    return ast.Select(
        items=select.items,
        from_items=select.from_items,
        where=select.where,
        group_by=select.group_by,
        having=select.having,
        order_by=select.order_by,
        limit=select.limit,
        distinct=select.distinct,
        emit=emit,
        pos=select.pos,
    )
