"""SQL front end: lexer, parser, AST, functions, name resolution."""

from . import ast
from .functions import FunctionRegistry, default_registry
from .lexer import Token, TokenType, tokenize
from .parser import parse, parse_expression
from .validator import ExprTranslator, Scope, ScopeEntry

__all__ = [
    "ast",
    "tokenize",
    "Token",
    "TokenType",
    "parse",
    "parse_expression",
    "FunctionRegistry",
    "default_registry",
    "Scope",
    "ScopeEntry",
    "ExprTranslator",
]
