"""NEXMark data model (Tucker et al.): an online auction platform.

Three streams — Person, Auction, Bid — plus a static Category table,
exactly the model Section 4 of the paper describes.  Every stream
carries a watermarked event time column named ``dateTime`` (``bidtime``
on Bid, matching the paper's Query 7 column naming).
"""

from __future__ import annotations

from ..core.schema import (
    Schema,
    int_col,
    string_col,
    timestamp_col,
)

__all__ = [
    "PERSON_SCHEMA",
    "AUCTION_SCHEMA",
    "BID_SCHEMA",
    "PAPER_BID_SCHEMA",
    "CATEGORY_SCHEMA",
    "CATEGORIES",
    "US_STATES",
    "CITIES",
    "FIRST_NAMES",
    "LAST_NAMES",
]

PERSON_SCHEMA = Schema(
    [
        int_col("id"),
        string_col("name"),
        string_col("email"),
        string_col("city"),
        string_col("state"),
        timestamp_col("dateTime", event_time=True),
    ]
)

AUCTION_SCHEMA = Schema(
    [
        int_col("id"),
        string_col("itemName"),
        int_col("initialBid"),
        int_col("reserve"),
        timestamp_col("dateTime", event_time=True),
        timestamp_col("expires"),
        int_col("seller"),
        int_col("category"),
    ]
)

BID_SCHEMA = Schema(
    [
        int_col("auction"),
        int_col("bidder"),
        int_col("price"),
        timestamp_col("bidtime", event_time=True),
    ]
)

#: The three-column Bid variant used in the paper's Section 4 walkthrough.
PAPER_BID_SCHEMA = Schema(
    [
        timestamp_col("bidtime", event_time=True),
        int_col("price"),
        string_col("item"),
    ]
)

CATEGORY_SCHEMA = Schema([int_col("id"), string_col("name")])

#: The static Category table contents.
CATEGORIES: list[tuple[int, str]] = [
    (10, "Collectibles"),
    (11, "Electronics"),
    (12, "Books"),
    (13, "Fashion"),
    (14, "Home"),
    (15, "Garden"),
    (16, "Toys"),
    (17, "Music"),
    (18, "Sports"),
    (19, "Art"),
]

US_STATES = ["OR", "ID", "CA", "WA", "NV", "AZ", "UT", "NY", "TX", "MA"]
CITIES = [
    "Portland", "Boise", "San Francisco", "Seattle", "Reno",
    "Phoenix", "Salt Lake City", "New York", "Austin", "Boston",
]
FIRST_NAMES = [
    "Ada", "Ben", "Carol", "Dan", "Eve", "Frank", "Grace", "Hugo",
    "Iris", "Jack", "Kay", "Liam", "Maya", "Noel", "Opal", "Pete",
]
LAST_NAMES = [
    "Abrams", "Baker", "Chen", "Diaz", "Evans", "Fox", "Gupta",
    "Hansen", "Ito", "Jones", "Klein", "Lopez", "Moore", "Nakamura",
]
