"""NEXMark queries in the proposed streaming SQL, plus Query 7 in CQL.

Query 7 is the paper's running example (Listings 1-2); the rest are the
standard NEXMark suite expressed in the dialect this library
implements.  Queries whose groupings have no event-time key (Q4, Q6)
are run over *recorded* streams registered as bounded tables — exactly
the reprocessing scenario Appendix B highlights — because Extension 2
forbids them on unbounded inputs.
"""

from __future__ import annotations

from ..core.schema import SqlType
from ..core.times import Duration, fmt_duration, minutes
from ..core.tvr import TimeVaryingRelation
from ..cql import CqlStream, range_window, rstream, select
from ..cql.relops import project, scalar
from ..core.schema import Schema, int_col, string_col

__all__ = [
    "register_udfs",
    "Q0_PASSTHROUGH",
    "Q1_CURRENCY",
    "q2_selection",
    "Q3_LOCAL_ITEM_SUGGESTION",
    "Q4_AVERAGE_PRICE_FOR_CATEGORY",
    "q5_hot_items",
    "Q6_AVERAGE_SELLING_PRICE_BY_SELLER",
    "q7_highest_bid",
    "q7_paper",
    "q7_cql",
    "q8_monitor_new_users",
]


def register_udfs(engine) -> None:
    """Register NEXMark's DOLTOEUR currency conversion on an engine."""
    engine.register_function(
        "DOLTOEUR", lambda dollars: dollars * 0.89, SqlType.FLOAT, 1
    )


#: Q0: passthrough — measures raw engine overhead.
Q0_PASSTHROUGH = "SELECT auction, bidder, price, bidtime FROM Bid"

#: Q1: currency conversion on every bid (map).
Q1_CURRENCY = (
    "SELECT auction, bidder, DOLTOEUR(price) AS price, bidtime FROM Bid"
)


def q2_selection(divisor: int = 123) -> str:
    """Q2: bids on a sampled subset of auctions (filter)."""
    return (
        f"SELECT auction, price FROM Bid WHERE auction % {divisor} = 0"
    )


#: Q3: people from three states selling in category 10 (incremental join).
Q3_LOCAL_ITEM_SUGGESTION = """
SELECT P.name, P.city, P.state, A.id
FROM Auction A JOIN Person P ON A.seller = P.id
WHERE A.category = 10 AND P.state IN ('OR', 'ID', 'CA')
"""

#: Q4: average closing price per category (nested aggregation; runs over
#: recorded tables because the groupings carry no event-time key).
Q4_AVERAGE_PRICE_FOR_CATEGORY = """
SELECT Closed.category, AVG(Closed.final) AS avgPrice
FROM (
  SELECT A.id, A.category AS category, MAX(B.price) AS final
  FROM Auction A JOIN Bid B ON A.id = B.auction
  WHERE B.bidtime >= A.dateTime AND B.bidtime <= A.expires
  GROUP BY A.id, A.category
) Closed
GROUP BY Closed.category
"""


def q5_hot_items(size: Duration = minutes(2), slide: Duration = minutes(1)) -> str:
    """Q5: the auction(s) with the most bids per sliding window."""
    hop = (
        "Hop(data => TABLE(Bid), timecol => DESCRIPTOR(bidtime), "
        f"dur => INTERVAL '{size // 1000}' SECONDS, "
        f"slide => INTERVAL '{slide // 1000}' SECONDS)"
    )
    return f"""
SELECT AuctionBids.wstart, AuctionBids.wend,
       AuctionBids.auction, AuctionBids.num
FROM (
  SELECT HB.wstart wstart, HB.wend wend, HB.auction auction,
         COUNT(*) num
  FROM {hop} HB
  GROUP BY HB.wstart, HB.wend, HB.auction
) AuctionBids,
(
  SELECT AB.wstart wstart, AB.wend wend, MAX(AB.num) maxnum
  FROM (
    SELECT HB2.wstart wstart, HB2.wend wend, HB2.auction auction,
           COUNT(*) num
    FROM {hop} HB2
    GROUP BY HB2.wstart, HB2.wend, HB2.auction
  ) AB
  GROUP BY AB.wstart, AB.wend
) MaxBids
WHERE AuctionBids.wstart = MaxBids.wstart
  AND AuctionBids.wend = MaxBids.wend
  AND AuctionBids.num = MaxBids.maxnum
"""


#: Q6: average selling price per seller over their last 10 closed
#: auctions — the original's ROW window, expressed with an analytic
#: OVER frame (recorded tables: the grouping has no event-time key).
Q6_AVERAGE_SELLING_PRICE_BY_SELLER = """
SELECT Closed.seller, Closed.expires,
       AVG(Closed.final) OVER (
         PARTITION BY Closed.seller
         ORDER BY Closed.expires
         ROWS BETWEEN 9 PRECEDING AND CURRENT ROW) AS avgPrice
FROM (
  SELECT A.seller AS seller, A.expires AS expires, MAX(B.price) AS final
  FROM Auction A JOIN Bid B ON A.id = B.auction
  WHERE B.bidtime >= A.dateTime AND B.bidtime <= A.expires
  GROUP BY A.id, A.seller, A.expires
) Closed
"""


def q7_highest_bid(window: Duration = minutes(10), emit: str = "") -> str:
    """Q7 over the four-column NEXMark Bid stream."""
    secs = window // 1000
    return f"""
SELECT MaxBid.wstart, MaxBid.wend,
       Bid.bidtime, Bid.price, Bid.auction
FROM Bid,
  (SELECT MAX(TB.price) maxPrice, TB.wstart wstart, TB.wend wend
   FROM Tumble(
     data    => TABLE(Bid),
     timecol => DESCRIPTOR(bidtime),
     dur     => INTERVAL '{secs}' SECONDS) TB
   GROUP BY TB.wend) MaxBid
WHERE Bid.price = MaxBid.maxPrice
  AND Bid.bidtime >= MaxBid.wend - INTERVAL '{secs}' SECONDS
  AND Bid.bidtime < MaxBid.wend
{emit}
"""


def q7_paper(emit: str = "") -> str:
    """Q7 exactly as in Listing 2 (three-column Bid schema)."""
    return f"""
SELECT
  MaxBid.wstart, MaxBid.wend,
  Bid.bidtime, Bid.price, Bid.item
FROM
  Bid,
  (SELECT
     MAX(TumbleBid.price) maxPrice,
     TumbleBid.wstart wstart,
     TumbleBid.wend wend
   FROM Tumble(
     data    => TABLE(Bid),
     timecol => DESCRIPTOR(bidtime),
     dur     => INTERVAL '10' MINUTE) TumbleBid
   GROUP BY TumbleBid.wend) MaxBid
WHERE
  Bid.price = MaxBid.maxPrice AND
  Bid.bidtime >= MaxBid.wend - INTERVAL '10' MINUTE AND
  Bid.bidtime < MaxBid.wend
{emit}
"""


def q7_cql(
    bid: TimeVaryingRelation,
    timecol: str = "bidtime",
    price_col: str = "price",
    window: Duration = minutes(10),
) -> CqlStream:
    """Listing 1: NEXMark Query 7 in CQL, executed on the CQL baseline.

    ``Rstream(price, item) FROM Bid [RANGE w SLIDE w] WHERE price =
    (SELECT MAX(price) FROM Bid [RANGE w SLIDE w])``.
    """
    stream = CqlStream.from_tvr(bid, timecol, keep_time_column=True)
    price_idx = stream.schema.index_of(price_col)

    def top_bids(rel):
        max_price = scalar(rel, lambda rows: max(r[price_idx] for r in rows))
        return select(rel, lambda r: r[price_idx] == max_price)

    windowed = range_window(stream, window, window)
    return rstream(windowed.map(top_bids))


def q8_monitor_new_users(window: Duration = minutes(2)) -> str:
    """Q8: people who created auctions right after registering."""
    secs = window // 1000
    return f"""
SELECT P.id, P.name, P.wstart
FROM
  (SELECT TP.id id, TP.name name, TP.wstart wstart, TP.wend wend
   FROM Tumble(
     data    => TABLE(Person),
     timecol => DESCRIPTOR(dateTime),
     dur     => INTERVAL '{secs}' SECONDS) TP) P
JOIN
  (SELECT TA.seller seller, TA.wstart wstart, TA.wend wend
   FROM Tumble(
     data    => TABLE(Auction),
     timecol => DESCRIPTOR(dateTime),
     dur     => INTERVAL '{secs}' SECONDS) TA) A
ON P.id = A.seller AND P.wstart = A.wstart AND P.wend = A.wend
"""
