"""Deterministic NEXMark event generator with out-of-order event time.

The paper's motivating point is that real streams arrive out of order
in event time; the generator therefore decouples the two time domains:

* **processing time** advances strictly (one event per
  ``inter_event_gap`` milliseconds of arrival time);
* **event time** is the processing time minus a bounded random skew, so
  rows arrive up to ``max_skew`` late relative to event time;
* **watermarks** are emitted every ``watermark_interval`` events as
  ``arrival_time - max_skew`` — a sound bounded-out-of-orderness
  assertion by construction.

Event kinds follow the original generator's 1:3:46 person/auction/bid
proportions within each 50-event epoch.  Everything is driven by a
seeded PRNG, so a given config reproduces byte-identical streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.times import Duration, Timestamp, minutes, seconds, t
from ..core.tvr import TimeVaryingRelation
from . import model

__all__ = ["NexmarkConfig", "NexmarkStreams", "generate", "paper_bid_stream"]

_PERSONS_PER_EPOCH = 1
_AUCTIONS_PER_EPOCH = 3
_EPOCH = 50  # events per epoch; the remainder are bids


@dataclass(frozen=True)
class NexmarkConfig:
    """Generator parameters.

    ``events_per_instant`` models bursty arrivals: processing time
    advances by ``inter_event_gap`` only once per that many events, so
    consecutive events within a burst share one processing-time
    instant.  The default of 1 reproduces the historical one-event-per-
    instant streams byte for byte (the PRNG consumption is unchanged);
    larger values give the micro-batching executor same-instant runs to
    batch and the compactor intra-instant churn to cancel.
    """

    num_events: int = 1000
    seed: int = 42
    first_ptime: Timestamp = t("8:00")
    inter_event_gap: Duration = 100  # ms of processing time per event
    max_skew: Duration = seconds(4)  # bound on event-time lateness
    watermark_interval: int = 20  # events between watermark emissions
    auction_duration: Duration = minutes(2)
    events_per_instant: int = 1  # arrival burst size (1 = no bursts)


@dataclass
class NexmarkStreams:
    """The generated workload: three streams plus the static table."""

    persons: TimeVaryingRelation
    auctions: TimeVaryingRelation
    bids: TimeVaryingRelation
    categories: TimeVaryingRelation
    config: NexmarkConfig = field(default_factory=NexmarkConfig)

    def register_on(self, engine) -> None:
        """Register all four relations on a StreamEngine."""
        engine.register_stream("Person", self.persons)
        engine.register_stream("Auction", self.auctions)
        engine.register_stream("Bid", self.bids)
        engine.register_table("Category", self.categories)

    def register_recorded_on(self, engine) -> None:
        """Register the *recorded* streams as bounded tables.

        This is the paper's replay property: the same query that
        processes the live stream can reprocess the recording.
        """
        engine.register_table("Person", _as_table(self.persons))
        engine.register_table("Auction", _as_table(self.auctions))
        engine.register_table("Bid", _as_table(self.bids))
        engine.register_table("Category", self.categories)


def _as_table(tvr: TimeVaryingRelation) -> TimeVaryingRelation:
    return TimeVaryingRelation.from_table(
        tvr.schema, [c.values for c in tvr.changelog if c.is_insert]
    )


def generate(config: NexmarkConfig = NexmarkConfig()) -> NexmarkStreams:
    """Generate the full NEXMark workload for ``config``."""
    rng = random.Random(config.seed)
    persons = TimeVaryingRelation(model.PERSON_SCHEMA)
    auctions = TimeVaryingRelation(model.AUCTION_SCHEMA)
    bids = TimeVaryingRelation(model.BID_SCHEMA)

    person_ids: list[int] = []
    auction_rows: list[tuple] = []  # (id, expires) of open auctions
    next_person_id = 1000
    next_auction_id = 5000

    burst = max(1, config.events_per_instant)
    ptime = config.first_ptime
    for i in range(config.num_events):
        if i % burst == 0:
            ptime += config.inter_event_gap
        skew = rng.randrange(config.max_skew + 1)
        event_time = ptime - skew
        slot = i % _EPOCH

        if slot < _PERSONS_PER_EPOCH or not person_ids:
            pid = next_person_id
            next_person_id += 1
            person_ids.append(pid)
            name = (
                f"{rng.choice(model.FIRST_NAMES)} "
                f"{rng.choice(model.LAST_NAMES)}"
            )
            city_idx = rng.randrange(len(model.CITIES))
            persons.insert(
                ptime,
                (
                    pid,
                    name,
                    f"{name.split()[0].lower()}@example.com",
                    model.CITIES[city_idx],
                    model.US_STATES[city_idx],
                    event_time,
                ),
            )
        elif slot < _PERSONS_PER_EPOCH + _AUCTIONS_PER_EPOCH or not auction_rows:
            aid = next_auction_id
            next_auction_id += 1
            expires = event_time + config.auction_duration
            auction_rows.append((aid, expires))
            auctions.insert(
                ptime,
                (
                    aid,
                    f"item-{aid}",
                    rng.randrange(1, 100),
                    rng.randrange(100, 200),
                    event_time,
                    expires,
                    rng.choice(person_ids),
                    rng.choice(model.CATEGORIES)[0],
                ),
            )
        else:
            aid, _ = rng.choice(auction_rows)
            bids.insert(
                ptime,
                (
                    aid,
                    rng.choice(person_ids),
                    rng.randrange(1, 1000),
                    event_time,
                ),
            )

        if (i + 1) % config.watermark_interval == 0:
            wm_value = ptime - config.max_skew
            for stream in (persons, auctions, bids):
                stream.advance_watermark(ptime, wm_value)

    # Final watermark: close out every window that has data.
    final = ptime + config.max_skew + 1
    for stream in (persons, auctions, bids):
        stream.advance_watermark(ptime + 1, final)

    categories = TimeVaryingRelation.from_table(
        model.CATEGORY_SCHEMA, model.CATEGORIES
    )
    return NexmarkStreams(persons, auctions, bids, categories, config)


def paper_bid_stream() -> TimeVaryingRelation:
    """The exact example dataset of Section 4 of the paper.

    ::

        8:07  WM -> 8:05
        8:08  INSERT (8:07, $2, A)
        8:12  INSERT (8:11, $3, B)
        8:13  INSERT (8:05, $4, C)
        8:14  WM -> 8:08
        8:15  INSERT (8:09, $5, D)
        8:16  WM -> 8:12
        8:17  INSERT (8:13, $1, E)
        8:18  INSERT (8:17, $6, F)
        8:21  WM -> 8:20
    """
    bid = TimeVaryingRelation(model.PAPER_BID_SCHEMA)
    bid.advance_watermark(t("8:07"), t("8:05"))
    bid.insert(t("8:08"), (t("8:07"), 2, "A"))
    bid.insert(t("8:12"), (t("8:11"), 3, "B"))
    bid.insert(t("8:13"), (t("8:05"), 4, "C"))
    bid.advance_watermark(t("8:14"), t("8:08"))
    bid.insert(t("8:15"), (t("8:09"), 5, "D"))
    bid.advance_watermark(t("8:16"), t("8:12"))
    bid.insert(t("8:17"), (t("8:13"), 1, "E"))
    bid.insert(t("8:18"), (t("8:17"), 6, "F"))
    bid.advance_watermark(t("8:21"), t("8:20"))
    return bid
