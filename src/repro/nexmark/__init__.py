"""NEXMark: the benchmark workload the paper's examples are drawn from."""

from . import model, queries
from .generator import NexmarkConfig, NexmarkStreams, generate, paper_bid_stream

__all__ = [
    "model",
    "queries",
    "NexmarkConfig",
    "NexmarkStreams",
    "generate",
    "paper_bid_stream",
]
