"""Entry point: ``python -m repro`` starts the interactive SQL shell;
``python -m repro serve`` starts the standing-query service.

Shell flags mirror the fields of :class:`~repro.config.ExecutionConfig`
and build the engine-layer config behind the shell::

    python -m repro --parallelism 4 --backend threads \\
                    --telemetry prometheus:metrics.prom \\
                    --max-restarts 3 --checkpoint-interval 50

``--telemetry`` takes the same spec strings as
``ExecutionConfig(telemetry=...)``: ``jsonl:PATH`` writes every trace
event as one JSON object per line; ``prometheus:PATH`` rewrites a text
exposition file after each query run.  ``--fault-plan`` injects
deterministic shard failures (testing/demo), e.g.
``crash-after-checkpoint:shard=1,at=2`` — see ``docs/RUNTIME.md``.

Serve mode adds live sources and multi-tenant admission::

    python -m repro serve --listen 127.0.0.1:7654 \\
                          --tail Bid=feeds/bids.jsonl \\
                          --policy tenants.json \\
                          --checkpoint-dir /var/lib/repro

Clients speak the line-JSON protocol of
:class:`~repro.service.server.ServiceServer`; see ``docs/SERVICE.md``.
"""

import argparse
import asyncio
import json
import sys
from typing import Optional

from .config import ExecutionConfig
from .engine import StreamEngine
from .runtime.faults import FAULT_KINDS
from .runtime.supervisor import RetryPolicy
from .shell import Shell


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    """The flags shared by shell and serve mode (ExecutionConfig fields)."""
    parser.add_argument(
        "--parallelism", type=int, default=None,
        help="number of shards for key-partitionable queries (default 1)",
    )
    parser.add_argument(
        "--backend", default=None,
        help="shard worker pool: threads (default), processes, or sync",
    )
    parser.add_argument(
        "--telemetry", default=None, metavar="SPEC",
        help="telemetry exporter: jsonl:PATH or prometheus:PATH",
    )
    parser.add_argument(
        "--allowed-lateness", type=int, default=None, metavar="MS",
        help="milliseconds of state retention past the watermark for "
             "late-row updates (default 0)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="row events delivered per micro-batch; output is "
             "byte-identical at any value (default 1: per-change)",
    )
    parser.add_argument(
        "--coalesce-updates", action="store_true", default=None,
        help="compact intra-instant insert/retract churn (snapshot-"
             "preserving; EMIT STREAM renders fewer rows)",
    )
    parser.add_argument(
        "--two-phase", choices=("auto", "on", "off"), default=None,
        help="shard-local partial aggregation with a final combine stage "
             "for decomposable aggregates; auto (default) consults the "
             "cost model's counter feedback, on forces the split, off "
             "disables it",
    )
    parser.add_argument(
        "--columnar", choices=("auto", "on", "off"), default=None,
        help="columnar micro-batch execution with fused filter/project "
             "pipelines; auto (default) enables it whenever batch size "
             "exceeds 1, on forces it, off keeps row-at-a-time batches "
             "(output is byte-identical in every mode)",
    )
    parser.add_argument(
        "--share-plans", action=argparse.BooleanOptionalAction, default=None,
        help="serve mode: graft standing queries with matching subplan "
             "fingerprints onto one dataflow, computing shared prefixes "
             "once (default on; deltas are byte-identical either way)",
    )
    recovery = parser.add_argument_group(
        "fault tolerance (ExecutionConfig.retry / .fault_plan)"
    )
    recovery.add_argument(
        "--max-restarts", type=int, default=None, metavar="N",
        help="restart budget per shard worker before the failure "
             "propagates (default 2)",
    )
    recovery.add_argument(
        "--backoff-base-ms", type=int, default=None, metavar="MS",
        help="base delay before the first restart, doubled per retry "
             "(default 0: restart immediately)",
    )
    recovery.add_argument(
        "--checkpoint-interval", type=int, default=None, metavar="N",
        help="checkpoint each shard every N input events so restarts "
             "replay less; in serve mode, also the session checkpoint "
             "cadence (default 0: start-of-run state only)",
    )
    recovery.add_argument(
        "--fault-plan", default=None, metavar="PLAN",
        help="inject deterministic shard failures, e.g. "
             "'crash-after-checkpoint:shard=1,at=2;slow-shard:shard=0'; "
             f"kinds: {', '.join(FAULT_KINDS)}",
    )
    obs = parser.add_argument_group(
        "observability (ExecutionConfig lineage / slow-query fields)"
    )
    obs.add_argument(
        "--lineage-sample", type=int, default=None, metavar="N",
        help="trace delta provenance for a deterministic 1-in-N sample "
             "of source events (0 = off, the default; 1 = every event); "
             "changelogs are byte-identical either way",
    )
    obs.add_argument(
        "--lineage-max-traces", type=int, default=None, metavar="N",
        help="retain at most N lineage traces per dataflow, evicting "
             "the oldest (default 4096)",
    )
    obs.add_argument(
        "--slow-query-p99-ms", type=int, default=None, metavar="MS",
        help="serve mode: log a standing query whose p99 emit latency "
             "crosses MS milliseconds (default 0: off)",
    )
    obs.add_argument(
        "--slow-query-depth", type=int, default=None, metavar="N",
        help="serve mode: log a standing query whose undrained "
             "subscriber depth crosses N deltas (default 0: off)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Interactive streaming-SQL shell. Flags map one-to-one onto "
            "repro.ExecutionConfig fields (see docs/API.md). "
            "Run 'python -m repro serve --help' for service mode."
        ),
    )
    _add_config_arguments(parser)
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description=(
            "Standing-query service: keep admitted queries resident and "
            "push changelog deltas to subscribers as sources advance "
            "(see docs/SERVICE.md)."
        ),
    )
    _add_config_arguments(parser)
    service = parser.add_argument_group("service")
    service.add_argument(
        "--listen", default="127.0.0.1:7654", metavar="HOST:PORT",
        help="address for the line-JSON protocol (default 127.0.0.1:7654)",
    )
    service.add_argument(
        "--source", action="append", default=[], metavar="NAME=PATH",
        help="register a recorded relation from a script/JSONL file "
             "(repeatable); bounded recordings register as tables",
    )
    service.add_argument(
        "--tail", action="append", default=[], metavar="NAME=PATH",
        help="follow a growing feed file into source NAME (repeatable); "
             "the file must lead with its schema line",
    )
    service.add_argument(
        "--listen-source", action="append", default=[],
        metavar="NAME=HOST:PORT",
        help="accept line-oriented feed connections into source NAME "
             "(repeatable); the source must be registered via --source "
             "or --tail, or restored from a checkpoint",
    )
    service.add_argument(
        "--policy", default=None, metavar="PATH",
        help="tenant policy JSON: a list of policies or "
             '{"tenants": [...], "default": {...}|null}; a policy may '
             'carry a "token" shared secret, which switches the whole '
             "service into authenticated mode",
    )
    service.add_argument(
        "--queue-capacity", type=int, default=None, metavar="N",
        help="bounded depth of each live source's event queue "
             "(default 1024)",
    )
    service.add_argument(
        "--subscriber-capacity", type=int, default=None, metavar="N",
        help="undrained deltas a subscriber may buffer before "
             "slow-consumer eviction (default 256)",
    )
    service.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="directory for session checkpoints; resumed from on start "
             "when a manifest exists (default: durability off)",
    )
    service.add_argument(
        "--metrics", default=None, metavar="HOST:PORT",
        help="serve GET /metrics (Prometheus exposition) and "
             "GET /healthz (JSON liveness) over plain HTTP at this "
             "address (default: HTTP plane off)",
    )
    service.add_argument(
        "--once", action="store_true",
        help="read each tail to end-of-file, drain, print the service "
             "metrics exposition, and exit (smoke-test mode)",
    )
    return parser


def build_config(args: argparse.Namespace) -> ExecutionConfig:
    """Translate parsed CLI flags into the engine-layer ExecutionConfig."""
    retry = None
    if (
        args.max_restarts is not None
        or args.backoff_base_ms is not None
        or args.checkpoint_interval is not None
    ):
        defaults = RetryPolicy()
        retry = RetryPolicy(
            max_restarts=(
                args.max_restarts
                if args.max_restarts is not None
                else defaults.max_restarts
            ),
            backoff_base_ms=(
                args.backoff_base_ms
                if args.backoff_base_ms is not None
                else defaults.backoff_base_ms
            ),
            checkpoint_interval=(
                args.checkpoint_interval
                if args.checkpoint_interval is not None
                else defaults.checkpoint_interval
            ),
        )
    return ExecutionConfig(
        parallelism=args.parallelism,
        backend=args.backend,
        telemetry=args.telemetry,
        allowed_lateness=args.allowed_lateness,
        retry=retry,
        fault_plan=args.fault_plan,
        batch_size=args.batch_size,
        coalesce_updates=args.coalesce_updates,
        two_phase=args.two_phase,
        columnar=args.columnar,
        queue_capacity=getattr(args, "queue_capacity", None),
        subscriber_capacity=getattr(args, "subscriber_capacity", None),
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        share_plans=getattr(args, "share_plans", None),
        lineage_sample=args.lineage_sample,
        lineage_max_traces=args.lineage_max_traces,
        slow_query_p99_ms=args.slow_query_p99_ms,
        slow_query_depth=args.slow_query_depth,
    )


def _split_spec(spec: str, flag: str) -> tuple[str, str]:
    if "=" not in spec:
        raise SystemExit(f"{flag} expects NAME=PATH, got {spec!r}")
    name, path = spec.split("=", 1)
    return name, path


def _split_listen_source(spec: str) -> tuple[str, str, int]:
    """Parse a ``--listen-source NAME=HOST:PORT`` spec."""
    if "=" not in spec:
        raise SystemExit(f"--listen-source expects NAME=HOST:PORT, got {spec!r}")
    name, address = spec.split("=", 1)
    host, _, port = address.rpartition(":")
    try:
        port_number = int(port)
    except ValueError:
        raise SystemExit(f"--listen-source expects NAME=HOST:PORT, got {spec!r}")
    return name, host or "127.0.0.1", port_number


def _register_recorded(service, name: str, path: str) -> int:
    """Register a fully recorded relation from a script/JSONL file."""
    from .core.tvr import TimeVaryingRelation
    from .io import TailParser

    parser = TailParser()
    with open(path) as handle:
        events = parser.feed(handle.read())
    events += parser.close()
    if parser.schema is None:
        raise SystemExit(f"{path} declares no schema")
    tvr = TimeVaryingRelation(parser.schema)
    for event in events:
        tvr.apply(event)
    if tvr.is_bounded:
        service.register_table(name, tvr)
    else:
        service.register_stream(name, tvr)
    return len(events)


def _register_tail_schema(service, name: str, path: str) -> None:
    """Register an empty stream from a feed file's leading schema line."""
    from .core.schema import Schema
    from .core.tvr import TimeVaryingRelation
    from .io import ScriptError, parse_event_line

    with open(path) as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            try:
                parsed = parse_event_line(line, None)
            except ScriptError:
                break
            if isinstance(parsed, Schema):
                service.register_stream(name, TimeVaryingRelation(parsed))
                return
            break
    raise SystemExit(
        f"--tail {name}={path}: the feed must lead with its schema line "
        f"(script 'schema:' or JSONL {{\"schema\": ...}})"
    )


def _load_policies(path: str):
    from .service.admission import TenantPolicy

    with open(path) as handle:
        payload = json.load(handle)
    if isinstance(payload, list):
        tenants, default = payload, {"name": "*"}
    else:
        tenants = payload.get("tenants", [])
        default = payload.get("default", {"name": "*"})
    policies = {
        policy["name"]: TenantPolicy.from_dict(policy) for policy in tenants
    }
    default_policy = (
        None if default is None else TenantPolicy.from_dict(default)
    )
    return policies, default_policy


def serve_main(argv=None) -> None:
    from .service import StandingQueryService, run_service

    args = build_serve_parser().parse_args(argv)
    config = build_config(args).resolved()
    policies, default_policy = (
        _load_policies(args.policy) if args.policy else ({}, None)
    )
    if args.policy is None:
        from .service.admission import TenantPolicy

        default_policy = TenantPolicy(name="*")
    service = StandingQueryService(
        config=config, policies=policies, default_policy=default_policy
    )
    for spec in args.source:
        name, path = _split_spec(spec, "--source")
        count = _register_recorded(service, name, path)
        print(f"registered {name} ({count} recorded events)")
    tails: dict[str, str] = {}
    for spec in args.tail:
        name, path = _split_spec(spec, "--tail")
        if name.lower() not in service.engine._sources:
            _register_tail_schema(service, name, path)
            print(f"registered {name} (live tail)")
        tails[name] = path
    sockets: dict[str, tuple[str, int]] = {}
    for spec in args.listen_source:
        name, src_host, src_port = _split_listen_source(spec)
        sockets[name] = (src_host, src_port)
    restored = service.resume()
    if restored:
        print(f"resumed {restored} standing queries from checkpoint")
    for name in sockets:
        if name.lower() not in service.engine._sources:
            raise SystemExit(
                f"--listen-source {name}: source is not registered; "
                f"supply --source/--tail or a checkpoint that records it"
            )
    host, _, port = args.listen.rpartition(":")
    try:
        port_number = int(port)
    except ValueError:
        raise SystemExit(f"--listen expects HOST:PORT, got {args.listen!r}")
    http: Optional[tuple[str, int]] = None
    if args.metrics is not None:
        http_host, _, http_port = args.metrics.rpartition(":")
        try:
            http = (http_host or "127.0.0.1", int(http_port))
        except ValueError:
            raise SystemExit(
                f"--metrics expects HOST:PORT, got {args.metrics!r}"
            )
    print(f"listening on {host or '127.0.0.1'}:{port_number}")
    if http is not None:
        print(f"serving /metrics and /healthz on {http[0]}:{http[1]}")
    for name, (src_host, src_port) in sockets.items():
        print(f"accepting {name} events on {src_host}:{src_port}")

    async def drive():
        server = await run_service(
            service, host or "127.0.0.1", port_number, tails,
            sockets=sockets,
            http=http,
            follow=not args.once,
        )
        if args.once:
            print(service.scrape(), end="")
            await server.stop()

    try:
        asyncio.run(drive())
    except KeyboardInterrupt:
        print("\nshutting down")


def main(argv=None) -> None:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        serve_main(argv[1:])
        return
    args = build_parser().parse_args(argv)
    engine = StreamEngine(config=build_config(args))
    Shell(engine).run()


if __name__ == "__main__":
    main()
