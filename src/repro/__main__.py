"""Entry point: ``python -m repro`` starts the interactive SQL shell."""

from .shell import Shell

if __name__ == "__main__":
    Shell().run()
