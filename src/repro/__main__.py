"""Entry point: ``python -m repro`` starts the interactive SQL shell.

Flags mirror the fields of :class:`~repro.config.ExecutionConfig` and
build the engine-layer config behind the shell::

    python -m repro --parallelism 4 --backend threads \\
                    --telemetry prometheus:metrics.prom \\
                    --max-restarts 3 --checkpoint-interval 50

``--telemetry`` takes the same spec strings as
``ExecutionConfig(telemetry=...)``: ``jsonl:PATH`` writes every trace
event as one JSON object per line; ``prometheus:PATH`` rewrites a text
exposition file after each query run.  ``--fault-plan`` injects
deterministic shard failures (testing/demo), e.g.
``crash-after-checkpoint:shard=1,at=2`` — see ``docs/RUNTIME.md``.
"""

import argparse

from .config import ExecutionConfig
from .engine import StreamEngine
from .runtime.faults import FAULT_KINDS
from .runtime.supervisor import RetryPolicy
from .shell import Shell


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Interactive streaming-SQL shell. Flags map one-to-one onto "
            "repro.ExecutionConfig fields (see docs/API.md)."
        ),
    )
    parser.add_argument(
        "--parallelism", type=int, default=None,
        help="number of shards for key-partitionable queries (default 1)",
    )
    parser.add_argument(
        "--backend", default=None,
        help="shard worker pool: threads (default), processes, or sync",
    )
    parser.add_argument(
        "--telemetry", default=None, metavar="SPEC",
        help="telemetry exporter: jsonl:PATH or prometheus:PATH",
    )
    parser.add_argument(
        "--allowed-lateness", type=int, default=None, metavar="MS",
        help="milliseconds of state retention past the watermark for "
             "late-row updates (default 0)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="row events delivered per micro-batch; output is "
             "byte-identical at any value (default 1: per-change)",
    )
    parser.add_argument(
        "--coalesce-updates", action="store_true", default=None,
        help="compact intra-instant insert/retract churn (snapshot-"
             "preserving; EMIT STREAM renders fewer rows)",
    )
    recovery = parser.add_argument_group(
        "fault tolerance (ExecutionConfig.retry / .fault_plan)"
    )
    recovery.add_argument(
        "--max-restarts", type=int, default=None, metavar="N",
        help="restart budget per shard worker before the failure "
             "propagates (default 2)",
    )
    recovery.add_argument(
        "--backoff-base-ms", type=int, default=None, metavar="MS",
        help="base delay before the first restart, doubled per retry "
             "(default 0: restart immediately)",
    )
    recovery.add_argument(
        "--checkpoint-interval", type=int, default=None, metavar="N",
        help="checkpoint each shard every N input events so restarts "
             "replay less (default 0: start-of-run state only)",
    )
    recovery.add_argument(
        "--fault-plan", default=None, metavar="PLAN",
        help="inject deterministic shard failures, e.g. "
             "'crash-after-checkpoint:shard=1,at=2;slow-shard:shard=0'; "
             f"kinds: {', '.join(FAULT_KINDS)}",
    )
    return parser


def build_config(args: argparse.Namespace) -> ExecutionConfig:
    """Translate parsed CLI flags into the engine-layer ExecutionConfig."""
    retry = None
    if (
        args.max_restarts is not None
        or args.backoff_base_ms is not None
        or args.checkpoint_interval is not None
    ):
        defaults = RetryPolicy()
        retry = RetryPolicy(
            max_restarts=(
                args.max_restarts
                if args.max_restarts is not None
                else defaults.max_restarts
            ),
            backoff_base_ms=(
                args.backoff_base_ms
                if args.backoff_base_ms is not None
                else defaults.backoff_base_ms
            ),
            checkpoint_interval=(
                args.checkpoint_interval
                if args.checkpoint_interval is not None
                else defaults.checkpoint_interval
            ),
        )
    return ExecutionConfig(
        parallelism=args.parallelism,
        backend=args.backend,
        telemetry=args.telemetry,
        allowed_lateness=args.allowed_lateness,
        retry=retry,
        fault_plan=args.fault_plan,
        batch_size=args.batch_size,
        coalesce_updates=args.coalesce_updates,
    )


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    engine = StreamEngine(config=build_config(args))
    Shell(engine).run()


if __name__ == "__main__":
    main()
