"""Entry point: ``python -m repro`` starts the interactive SQL shell.

Flags configure the engine behind the shell::

    python -m repro --parallelism 4 --backend threads \\
                    --telemetry prometheus:metrics.prom

``--telemetry`` takes the same spec strings as
``StreamEngine(telemetry=...)``: ``jsonl:PATH`` writes every trace
event as one JSON object per line; ``prometheus:PATH`` rewrites a text
exposition file after each query run.
"""

import argparse

from .engine import StreamEngine
from .shell import Shell


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Interactive streaming-SQL shell.",
    )
    parser.add_argument(
        "--parallelism", type=int, default=1,
        help="number of shards for key-partitionable queries (default 1)",
    )
    parser.add_argument(
        "--backend", default="threads",
        help="shard worker pool: threads (default), processes, or sync",
    )
    parser.add_argument(
        "--telemetry", default=None, metavar="SPEC",
        help="telemetry exporter: jsonl:PATH or prometheus:PATH",
    )
    args = parser.parse_args(argv)
    engine = StreamEngine(
        parallelism=args.parallelism,
        backend=args.backend,
        telemetry=args.telemetry,
    )
    Shell(engine).run()


if __name__ == "__main__":
    main()
