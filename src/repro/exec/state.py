"""State introspection: relating physical state back to the query.

Section 5 of the paper: "we need to consider … how to give the user
feedback about the state being consumed, relating the physical
computation back to their query."  A :class:`StateReport` does exactly
that — a per-operator breakdown of retained rows, late drops, and
expiries, rendered next to the operator names a user can recognize
from ``EXPLAIN``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..runtime.sharded import ShardedDataflow
    from .executor import Dataflow

__all__ = [
    "OperatorState",
    "StateReport",
    "collect_sharded_state",
    "collect_state",
]


@dataclass(frozen=True)
class OperatorState:
    """State snapshot of one physical operator."""

    name: str
    retained_rows: int
    late_dropped: int = 0
    expired_rows: int = 0

    def __str__(self) -> str:
        extras = []
        if self.late_dropped:
            extras.append(f"late_dropped={self.late_dropped}")
        if self.expired_rows:
            extras.append(f"expired={self.expired_rows}")
        suffix = f" ({', '.join(extras)})" if extras else ""
        return f"{self.name}: {self.retained_rows} rows{suffix}"


@dataclass(frozen=True)
class StateReport:
    """State snapshot of a whole dataflow."""

    operators: tuple[OperatorState, ...]

    @property
    def total_rows(self) -> int:
        return sum(op.retained_rows for op in self.operators)

    @property
    def total_late_dropped(self) -> int:
        return sum(op.late_dropped for op in self.operators)

    @property
    def total_expired(self) -> int:
        return sum(op.expired_rows for op in self.operators)

    def __str__(self) -> str:
        lines = [f"total retained rows: {self.total_rows}"]
        lines.extend(f"  {op}" for op in self.operators if op.retained_rows
                     or op.late_dropped or op.expired_rows)
        return "\n".join(lines)


def collect_state(dataflow: "Dataflow") -> StateReport:
    """Snapshot every operator's retained state in plan order.

    The drop/expiry counters live uniformly on the operator base class,
    so the report simply reads them — no per-class ``isinstance``
    allowlist to fall out of date as operators gain counters.
    """
    return StateReport(
        tuple(
            OperatorState(
                name=op.name(),
                retained_rows=op.state_size(),
                late_dropped=op.late_dropped,
                expired_rows=op.expired_rows,
            )
            for op in dataflow.operators
        )
    )


def collect_sharded_state(sharded: "ShardedDataflow") -> StateReport:
    """Snapshot a sharded dataflow: per-operator counters summed over shards.

    Operator names come from each operator class (not the per-shard
    dynamic descriptions, which differ as each shard holds a different
    key subset) and are suffixed with the shard count, so the report
    still reads in plan order.
    """
    shard_ops = [shard.operators for shard in sharded.shards]
    states = []
    for ops in zip(*shard_ops):
        states.append(
            OperatorState(
                name=f"{type(ops[0]).__name__} ×{sharded.shard_count} shards",
                retained_rows=sum(op.state_size() for op in ops),
                late_dropped=sum(op.late_dropped for op in ops),
                expired_rows=sum(op.expired_rows for op in ops),
            )
        )
    return StateReport(tuple(states))
