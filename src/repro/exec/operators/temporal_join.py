"""Correlated temporal-table joins (Section 8).

Enriching a stream with the value a slowly-changing table had *at the
event's own time* — an order with the exchange rate at order time — is
the paper's flagship future-work join.  The operator:

* materializes the right side as **versions**: per key, a list of
  (version_time, row) sorted by version time;
* **buffers** left rows until the right watermark passes their
  timestamp, so the applicable version is provably final (no later
  version with an earlier timestamp can still arrive);
* on emission, binary-searches the valid version (greatest version_time
  at or before the left row's time) and outputs the concatenated row —
  or nothing if no version existed yet.

Version state is pruned on watermark advance: only the newest version
at or below the frontier plus all newer versions can ever be read
again.
"""

from __future__ import annotations

import copy

from bisect import bisect_right, insort
from typing import Sequence

from ...core.changelog import Change, ChangeKind
from ...core.errors import ExecutionError
from ...core.schema import Schema
from ...core.times import Timestamp
from .base import Operator

__all__ = ["TemporalJoinOperator"]


class TemporalJoinOperator(Operator):
    """Streaming enrichment against a versioned table."""

    def __init__(
        self,
        schema: Schema,
        left_time_index: int,
        right_time_index: int,
        left_keys: Sequence[int],
        right_keys: Sequence[int],
    ):
        super().__init__(schema, arity=2)
        self._left_time = left_time_index
        self._right_time = right_time_index
        self._left_keys = tuple(left_keys)
        self._right_keys = tuple(right_keys)
        # key -> sorted list of (version_time, seq, values)
        self._versions: dict[tuple, list[tuple[Timestamp, int, tuple]]] = {}
        # key -> newest version time discarded by pruning (for loud
        # failure if a retraction needs a pruned version)
        self._pruned_upto: dict[tuple, Timestamp] = {}
        self._seq = 0
        # left rows waiting for the right watermark: (ltime, values) bag
        self._pending: list[tuple[Timestamp, tuple]] = []
        self.unmatched_dropped = 0

    # -- data path ---------------------------------------------------------------

    def on_change(self, port: int, change: Change) -> list[Change]:
        if port == 1:
            return self._on_version(change)
        return self._on_left(change)

    def _on_version(self, change: Change) -> list[Change]:
        if change.is_retract:
            raise ExecutionError(
                "a temporal table must be an append-only stream of versions"
            )
        values = change.values
        key = tuple(values[i] for i in self._right_keys)
        vtime = values[self._right_time]
        if vtime is None:
            raise ExecutionError("NULL version timestamp in temporal table")
        self._seq += 1
        insort(self._versions.setdefault(key, []), (vtime, self._seq, values))
        return []

    def _on_left(self, change: Change) -> list[Change]:
        values = change.values
        ltime = values[self._left_time]
        if ltime is None:
            raise ExecutionError("NULL event timestamp in temporal join input")
        right_wm = self._input_wms[1]
        if change.is_retract:
            # still buffered? then it simply leaves the buffer
            entry = (ltime, values)
            if entry in self._pending:
                self._pending.remove(entry)
                return []
            # already emitted: the version lookup is deterministic, so
            # the retraction reproduces the same joined row
            joined = self._lookup(values, ltime)
            if joined is None:
                self.unmatched_dropped += 1
                return []
            return [Change(ChangeKind.RETRACT, joined, change.ptime)]
        if ltime <= right_wm:
            joined = self._lookup(values, ltime)
            if joined is None:
                self.unmatched_dropped += 1
                return []
            return [Change(ChangeKind.INSERT, joined, change.ptime)]
        self._pending.append((ltime, values))
        return []

    def _lookup(self, left_values: tuple, ltime: Timestamp) -> tuple | None:
        key = tuple(left_values[i] for i in self._left_keys)
        versions = self._versions.get(key)
        if not versions:
            return None
        # the greatest version at or before ltime
        i = bisect_right(versions, (ltime, float("inf"), ()))
        if i == 0:
            pruned = self._pruned_upto.get(key)
            if pruned is not None and pruned <= ltime:
                raise ExecutionError(
                    "temporal join cannot reconstruct a pruned version; "
                    "the left input must be append-only once rows are "
                    "past the watermark"
                )
            return None
        return left_values + versions[i - 1][2]

    # -- watermark-driven release and pruning ------------------------------------------

    def _on_watermark_advanced(self, merged: Timestamp, ptime: Timestamp) -> list[Change]:
        right_wm = self._input_wms[1]
        out: list[Change] = []
        still_pending: list[tuple[Timestamp, tuple]] = []
        for ltime, values in self._pending:
            if ltime <= right_wm:
                joined = self._lookup(values, ltime)
                if joined is None:
                    self.unmatched_dropped += 1
                else:
                    out.append(Change(ChangeKind.INSERT, joined, ptime))
            else:
                still_pending.append((ltime, values))
        self._pending = still_pending
        # prune versions no future left row can read: future left times
        # exceed the left watermark, so per key only the newest version
        # at or below that frontier plus everything newer stays.  Rows
        # still buffered for the right watermark hold the frontier back.
        frontier = self._input_wms[0]
        if self._pending:
            frontier = min(
                frontier, min(ltime for ltime, _ in self._pending)
            )
        for key, versions in self._versions.items():
            i = bisect_right(versions, (frontier, float("inf"), ()))
            if i > 1:
                self._pruned_upto[key] = versions[i - 2][0]
                del versions[: i - 1]
        return out

    # -- introspection ------------------------------------------------------------------

    def state_snapshot(self) -> dict:
        snapshot = super().state_snapshot()
        snapshot["versions"] = copy.deepcopy(self._versions)
        snapshot["pruned_upto"] = copy.deepcopy(self._pruned_upto)
        snapshot["seq"] = copy.deepcopy(self._seq)
        snapshot["pending"] = copy.deepcopy(self._pending)
        snapshot["unmatched_dropped"] = copy.deepcopy(self.unmatched_dropped)
        return snapshot

    def state_restore(self, snapshot: dict) -> None:
        super().state_restore(snapshot)
        self._versions = copy.deepcopy(snapshot["versions"])
        self._pruned_upto = copy.deepcopy(snapshot["pruned_upto"])
        self._seq = copy.deepcopy(snapshot["seq"])
        self._pending = copy.deepcopy(snapshot["pending"])
        self.unmatched_dropped = copy.deepcopy(snapshot["unmatched_dropped"])

    def state_size(self) -> int:
        return len(self._pending) + sum(
            len(v) for v in self._versions.values()
        )

    def _extra_metrics(self) -> dict:
        return {
            "unmatched_dropped": self.unmatched_dropped,
            "pending_rows": len(self._pending),
            "versions": sum(len(v) for v in self._versions.values()),
        }

    def name(self) -> str:
        return f"TemporalJoin(state={self.state_size()})"
