"""Session windows: transitive-closure sessionization.

Section 8 of the paper lists session windows ("periods of contiguous
activity") as the first expanded-windowing future-work item; Beam and
Flink both ship them, and we implement them as a third windowing TVF
with the same ``wstart``/``wend`` convention as Tumble and Hop.

Each row opens a proto-session ``[t, t + gap)``; overlapping
proto-sessions of the same key merge transitively.  Because a new row
can *merge previously separate sessions*, the operator is stateful and
retractive: when windows change, previously emitted rows are retracted
and re-emitted with the merged window — standard changelog behavior
that downstream operators already handle.

Watermark reasoning: a session whose end is at or before the watermark
can never grow again (any row that could extend it would have a
timestamp before the watermark, which the watermark contract forbids),
so its state is freed.  Rows at or before the watermark are late and
dropped, mirroring Extension 2.
"""

from __future__ import annotations

import copy

from collections import Counter
from dataclasses import dataclass, field

from ...core.changelog import Change, ChangeKind, diff_bags
from ...core.errors import ExecutionError
from ...core.schema import Schema
from ...core.times import Duration, Timestamp
from .base import Operator

__all__ = ["SessionOperator"]


@dataclass
class _Session:
    start: Timestamp
    end: Timestamp
    #: bag of (input row values) -> count
    rows: Counter = field(default_factory=Counter)

    def tagged(self) -> Counter:
        """The session's rows tagged with its window, as a bag."""
        out: Counter = Counter()
        for values, count in self.rows.items():
            out[(self.start, self.end) + values] = count
        return out


class SessionOperator(Operator):
    """Per-key transitive-closure session windows."""

    def __init__(
        self,
        schema: Schema,
        timecol: int,
        gap: Duration,
        key_indices: tuple[int, ...] = (),
        allowed_lateness: Duration = 0,
    ):
        super().__init__(schema, arity=1)
        self._timecol = timecol
        self._gap = gap
        self._key_indices = key_indices
        self._allowed_lateness = allowed_lateness
        self._sessions: dict[tuple, list[_Session]] = {}

    def _key_of(self, values: tuple) -> tuple:
        return tuple(values[i] for i in self._key_indices)

    def on_change(self, port: int, change: Change) -> list[Change]:
        ts = change.values[self._timecol]
        if ts is None:
            raise ExecutionError("NULL event timestamp in Session input")
        if ts + self._allowed_lateness <= self.input_watermark:
            self.late_dropped += 1
            return []
        key = self._key_of(change.values)
        sessions = self._sessions.setdefault(key, [])

        before: Counter = Counter()
        if change.is_insert:
            touched = [
                s for s in sessions if ts < s.end and s.start < ts + self._gap
            ]
            for s in touched:
                before.update(s.tagged())
                sessions.remove(s)
            merged = _Session(
                start=min([ts] + [s.start for s in touched]),
                end=max([ts + self._gap] + [s.end for s in touched]),
            )
            for s in touched:
                merged.rows.update(s.rows)
            merged.rows[change.values] += 1
            sessions.append(merged)
            after = merged.tagged()
        else:
            owner = next(
                (s for s in sessions if s.rows.get(change.values, 0) > 0), None
            )
            if owner is None:
                raise ExecutionError("retraction for unknown session row")
            before.update(owner.tagged())
            sessions.remove(owner)
            owner.rows[change.values] -= 1
            if owner.rows[change.values] == 0:
                del owner.rows[change.values]
            # Removing a row can split the session; re-cluster the rest.
            rebuilt = self._recluster(owner.rows)
            sessions.extend(rebuilt)
            after = Counter()
            for s in rebuilt:
                after.update(s.tagged())
        if not sessions:
            self._sessions.pop(key, None)
        return diff_bags(before, after, change.ptime)

    def _recluster(self, rows: Counter) -> list[_Session]:
        """Re-derive sessions from scratch for a bag of rows."""
        if not rows:
            return []
        ordered = sorted(rows.items(), key=lambda kv: kv[0][self._timecol])
        out: list[_Session] = []
        current: _Session | None = None
        for values, count in ordered:
            ts = values[self._timecol]
            if current is None or ts >= current.end:
                current = _Session(start=ts, end=ts + self._gap)
                out.append(current)
            current.rows[values] += count
            current.end = max(current.end, ts + self._gap)
        return out

    def _on_watermark_advanced(self, merged: Timestamp, ptime: Timestamp) -> list[Change]:
        # Sessions that can no longer grow are finalized: free the rows.
        horizon = merged - self._allowed_lateness
        for key in list(self._sessions):
            kept = [s for s in self._sessions[key] if s.end > horizon]
            if kept:
                self._sessions[key] = kept
            else:
                del self._sessions[key]
        return []

    def state_snapshot(self) -> dict:
        snapshot = super().state_snapshot()
        snapshot["sessions"] = copy.deepcopy(self._sessions)
        return snapshot

    def state_restore(self, snapshot: dict) -> None:
        super().state_restore(snapshot)
        self._sessions = copy.deepcopy(snapshot["sessions"])

    def state_size(self) -> int:
        return sum(
            sum(s.rows.values())
            for sessions in self._sessions.values()
            for s in sessions
        )

    def _extra_metrics(self) -> dict:
        return {
            "open_sessions": sum(len(s) for s in self._sessions.values())
        }
