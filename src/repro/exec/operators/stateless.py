"""Stateless operators: scan, filter, project, union, sort-passthrough.

Stateless operators transform each change independently, preserving its
kind — an insert projects to an insert, a retract to a retract.  That
is exactly why they need no state (Appendix B.2.3: "operators that
process a single row at a time ... can simply adjust and forward or
filter change messages").
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ...core.changelog import Change
from ...core.schema import Schema
from .base import Operator

__all__ = ["ScanOperator", "FilterOperator", "ProjectOperator", "UnionOperator",
           "SortOperator"]


class ScanOperator(Operator):
    """Leaf operator bound to a registered source; pure passthrough."""

    supports_columnar = True

    def __init__(self, schema: Schema, source_name: str):
        super().__init__(schema, arity=1)
        self.source_name = source_name

    def on_change(self, port: int, change: Change) -> list[Change]:
        return [change]

    def on_batch(self, port: int, changes: Sequence[Change]) -> list[Change]:
        return list(changes)

    def on_cols(self, port: int, batch):
        return batch

    def name(self) -> str:
        return f"Scan({self.source_name})"


class FilterOperator(Operator):
    """Keeps changes whose row satisfies the predicate.

    The predicate is deterministic, so an insert and its later retract
    agree on whether they pass — the changelog stays consistent.
    """

    def __init__(self, schema: Schema, predicate: Callable[[tuple], Any]):
        super().__init__(schema, arity=1)
        self._predicate = predicate

    def on_change(self, port: int, change: Change) -> list[Change]:
        if self._predicate(change.values) is True:
            return [change]
        return []

    def on_batch(self, port: int, changes: Sequence[Change]) -> list[Change]:
        predicate = self._predicate
        return [c for c in changes if predicate(c.values) is True]


class ProjectOperator(Operator):
    """Computes the output row from each input row; kind-preserving."""

    def __init__(self, schema: Schema, exprs: Sequence[Callable[[tuple], Any]]):
        super().__init__(schema, arity=1)
        self._exprs = list(exprs)

    def on_change(self, port: int, change: Change) -> list[Change]:
        values = change.values
        projected = tuple(expr(values) for expr in self._exprs)
        return [Change(change.kind, projected, change.ptime)]

    def on_batch(self, port: int, changes: Sequence[Change]) -> list[Change]:
        exprs = self._exprs
        make = Change
        # Unrolled small arities: a tuple display beats the generic
        # tuple(generator) by a wide margin on the hot projection path.
        if len(exprs) == 1:
            (e0,) = exprs
            return [make(c.kind, (e0(c.values),), c.ptime) for c in changes]
        if len(exprs) == 2:
            e0, e1 = exprs
            return [
                make(c.kind, (e0(c.values), e1(c.values)), c.ptime)
                for c in changes
            ]
        if len(exprs) == 3:
            e0, e1, e2 = exprs
            return [
                make(c.kind, (e0(c.values), e1(c.values), e2(c.values)), c.ptime)
                for c in changes
            ]
        return [
            make(c.kind, tuple(expr(c.values) for expr in exprs), c.ptime)
            for c in changes
        ]


class UnionOperator(Operator):
    """Bag union: forwards changes from every input port."""

    supports_columnar = True

    def __init__(self, schema: Schema, arity: int):
        super().__init__(schema, arity=arity)

    def on_change(self, port: int, change: Change) -> list[Change]:
        return [change]

    def on_batch(self, port: int, changes: Sequence[Change]) -> list[Change]:
        return list(changes)

    def on_cols(self, port: int, batch):
        return batch


class SortOperator(Operator):
    """ORDER BY / LIMIT placeholder.

    Ordering is a property of *table* materialization, not of a
    changelog, so the operator forwards changes untouched; the engine
    applies the sort keys and limit when rendering a snapshot
    (and rejects ``EMIT STREAM`` over LIMIT queries).
    """

    supports_columnar = True

    def __init__(self, schema: Schema):
        super().__init__(schema, arity=1)

    def on_change(self, port: int, change: Change) -> list[Change]:
        return [change]

    def on_batch(self, port: int, changes: Sequence[Change]) -> list[Change]:
        return list(changes)

    def on_cols(self, port: int, batch):
        return batch
