"""MATCH_RECOGNIZE execution: watermark-sequenced row pattern matching.

The hard part of pattern matching over a stream is out-of-order input:
patterns are defined over the *event-time order* of rows, but rows
arrive in processing-time order.  The operator therefore buffers each
partition's rows and matches only over the **stable prefix** — rows at
or below the watermark, which the watermark contract guarantees is
final.  This is exactly the event-time-first design the paper argues
for: the same query gives the same matches regardless of arrival order.

Matching is greedy with backtracking over concatenation patterns with
``? * +`` quantifiers.  An attempt that runs into the stable boundary
is *deferred* (a future row might change its outcome); a match whose
last row sits on the boundary is likewise deferred unless the input is
complete, since greedy quantifiers might still extend it.  Consumed and
unmatchable rows are discarded — pattern state is bounded by the
watermark lag, one more instance of the Section 5 state-cleanup lesson.
"""

from __future__ import annotations

import copy

from bisect import bisect_right, insort
from typing import Any, Callable, Optional, Sequence

from ...core.changelog import Change, ChangeKind
from ...core.errors import ExecutionError
from ...core.schema import Schema
from ...core.times import MAX_TIMESTAMP, Timestamp
from .base import Operator

__all__ = ["MatchRecognizeOperator"]

_MATCH = "match"
_FAIL = "fail"
_DEFER = "defer"


class MatchRecognizeOperator(Operator):
    """Per-partition greedy pattern matching over stable rows."""

    def __init__(
        self,
        schema: Schema,
        partition_indices: Sequence[int],
        order_index: int,
        measures: Sequence,  # MatchMeasure
        pattern: Sequence[tuple[str, str]],
        defines: dict[str, Callable[[tuple], Any]],
        after_match: str = "PAST LAST ROW",
    ):
        super().__init__(schema, arity=1)
        self._partition = tuple(partition_indices)
        self._order = order_index
        self._measures = tuple(measures)
        self._pattern = tuple(pattern)
        self._defines = dict(defines)
        self._skip_to_next = after_match == "TO NEXT ROW"
        # partition key -> sorted [(ts, seq, row), ...] of unconsumed rows
        self._buffers: dict[tuple, list[tuple[Timestamp, int, tuple]]] = {}
        self._seq = 0
        self.matches_emitted = 0

    # -- data path ---------------------------------------------------------------

    def on_change(self, port: int, change: Change) -> list[Change]:
        if change.is_retract:
            raise ExecutionError(
                "MATCH_RECOGNIZE requires an append-only input stream"
            )
        values = change.values
        ts = values[self._order]
        if ts is None:
            raise ExecutionError("NULL ordering timestamp in MATCH_RECOGNIZE")
        if ts <= self.input_watermark:
            self.late_dropped += 1
            return []
        key = tuple(values[i] for i in self._partition)
        self._seq += 1
        insort(self._buffers.setdefault(key, []), (ts, self._seq, values))
        return []

    def _on_watermark_advanced(self, merged: Timestamp, ptime: Timestamp) -> list[Change]:
        complete = merged >= MAX_TIMESTAMP
        out: list[Change] = []
        for key in list(self._buffers):
            buffer = self._buffers[key]
            cut = bisect_right(buffer, (merged, float("inf"), ()))
            stable = [entry[2] for entry in buffer[:cut]]
            consumed = self._match_partition(key, stable, complete, ptime, out)
            if consumed:
                del buffer[:consumed]
            if not buffer:
                del self._buffers[key]
        return out

    # -- matching -----------------------------------------------------------------

    def _match_partition(
        self,
        key: tuple,
        stable: list[tuple],
        complete: bool,
        ptime: Timestamp,
        out: list[Change],
    ) -> int:
        """Match over a partition's stable rows; returns rows consumed."""
        i = 0
        while i < len(stable):
            status, end, mapping = self._try_match(stable, i, complete)
            if status == _DEFER:
                break
            if status == _FAIL or end == i:
                # a failed start — or a zero-width match, which SQL
                # discards — can never participate in a later match
                i += 1
                continue
            out.append(
                Change(ChangeKind.INSERT, self._measure_row(key, mapping), ptime)
            )
            self.matches_emitted += 1
            i = i + 1 if self._skip_to_next else end
        return i

    def _measure_row(self, key: tuple, mapping: dict[str, list[tuple]]) -> tuple:
        return key + tuple(m.evaluate(mapping) for m in self._measures)

    def _try_match(
        self, rows: list[tuple], start: int, complete: bool
    ) -> tuple[str, int, dict[str, list[tuple]]]:
        """Greedy backtracking match attempt starting at ``start``.

        Returns (status, end_exclusive, symbol→rows).  ``_DEFER`` means
        the outcome could still change when more rows stabilize.
        """
        boundary = len(rows)
        deferred = False

        def tail_open(last_consumer: Optional[int]) -> bool:
            """Could future rows extend a match ending at the boundary?

            Yes if the element that consumed the final row is a greedy
            ``+``/``*`` (it would prefer more rows), or if any later
            element was satisfied zero-width (``?``/``*``) and could
            still claim a future row.  A pattern ending in a plain
            element is closed no matter where it ends.
            """
            if last_consumer is None:
                return False
            if self._pattern[last_consumer][1] in ("+", "*"):
                return True
            return any(
                quantifier in ("?", "*", "+")
                for _, quantifier in self._pattern[last_consumer + 1 :]
            )

        def attempt(
            elem: int, pos: int, mapping: dict[str, list[tuple]],
            last_consumer: Optional[int] = None,
        ) -> Optional[tuple[int, dict[str, list[tuple]]]]:
            nonlocal deferred
            if elem == len(self._pattern):
                # a greedy match ending on the boundary might extend
                if pos == boundary and not complete and tail_open(last_consumer):
                    deferred = True
                    return None
                return pos, mapping
            symbol, quantifier = self._pattern[elem]
            predicate = self._defines.get(symbol)

            def row_matches(index: int) -> Optional[bool]:
                nonlocal deferred
                if index >= boundary:
                    if not complete:
                        deferred = True
                    return None
                if predicate is None:
                    return True
                return predicate(rows[index]) is True

            def with_row(mapping: dict, index: int) -> dict:
                extended = dict(mapping)
                extended[symbol] = mapping.get(symbol, []) + [rows[index]]
                return extended

            if quantifier == "":
                ok = row_matches(pos)
                if ok:
                    return attempt(
                        elem + 1, pos + 1, with_row(mapping, pos), elem
                    )
                return None
            if quantifier == "?":
                ok = row_matches(pos)
                if ok:
                    result = attempt(
                        elem + 1, pos + 1, with_row(mapping, pos), elem
                    )
                    if result is not None:
                        return result
                return attempt(elem + 1, pos, mapping, last_consumer)
            # + and *: consume greedily, then backtrack
            taken: list[int] = []
            current = mapping
            index = pos
            while True:
                ok = row_matches(index)
                if not ok:
                    break
                current = with_row(current, index)
                taken.append(index)
                index += 1
            minimum = 1 if quantifier == "+" else 0
            while len(taken) >= minimum:
                consumer = elem if taken else last_consumer
                result = attempt(elem + 1, pos + len(taken), current, consumer)
                if result is not None:
                    return result
                if not taken:
                    break
                removed = taken.pop()
                current = dict(current)
                shortened = current[symbol][:-1]
                if shortened:
                    current[symbol] = shortened
                else:
                    del current[symbol]
            return None

        result = attempt(0, start, {})
        if result is not None:
            end, mapping = result
            return _MATCH, end, mapping
        if deferred:
            return _DEFER, start, {}
        return _FAIL, start, {}

    # -- introspection ------------------------------------------------------------------

    def state_snapshot(self) -> dict:
        snapshot = super().state_snapshot()
        snapshot["buffers"] = copy.deepcopy(self._buffers)
        snapshot["seq"] = copy.deepcopy(self._seq)
        snapshot["matches_emitted"] = copy.deepcopy(self.matches_emitted)
        return snapshot

    def state_restore(self, snapshot: dict) -> None:
        super().state_restore(snapshot)
        self._buffers = copy.deepcopy(snapshot["buffers"])
        self._seq = copy.deepcopy(snapshot["seq"])
        self.matches_emitted = copy.deepcopy(snapshot["matches_emitted"])

    def state_size(self) -> int:
        return sum(len(b) for b in self._buffers.values())

    def _extra_metrics(self) -> dict:
        return {
            "matches_emitted": self.matches_emitted,
            "partitions": len(self._buffers),
        }

    def name(self) -> str:
        return f"MatchRecognize({self.matches_emitted} matches)"
