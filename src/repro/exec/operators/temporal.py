"""Temporal filters: predicates over CURRENT_TIME (Section 8).

A predicate like ``bidtime > CURRENT_TIME - INTERVAL '1' HOUR`` defines
a *tail-of-stream* view: rows join the relation when they arrive and
leave it again when the moving boundary passes them — with no input
event involved.  The standard row-at-a-time filter cannot express this,
so the operator keeps the visible rows in state and uses the executor's
processing-time timer service to retract (or admit) rows exactly when
their boundary crosses ``CURRENT_TIME``.

Each :class:`~repro.plan.logical.TemporalBound` contributes one edge of
a row's visibility interval::

    'before': visible while now <  row[time_index] + offset
    'from'  : visible once  now >= row[time_index] + offset

The row is visible on the intersection of all bounds.
"""

from __future__ import annotations

import copy

from collections import Counter
from typing import Sequence

from ...core.changelog import Change, ChangeKind
from ...core.schema import Schema
from ...core.times import MAX_TIMESTAMP, MIN_TIMESTAMP, Timestamp
from ...plan.logical import TemporalBound
from .base import Operator

__all__ = ["TemporalFilterOperator"]


class TemporalFilterOperator(Operator):
    """Keeps rows whose visibility interval contains CURRENT_TIME."""

    def __init__(self, schema: Schema, bounds: Sequence[TemporalBound]):
        super().__init__(schema, arity=1)
        self._bounds = tuple(bounds)
        self._visible: Counter = Counter()
        self._future: Counter = Counter()
        # deadline -> list of ("enter" | "exit", values)
        self._agenda: dict[Timestamp, list[tuple[str, tuple]]] = {}

    def _interval(self, values: tuple) -> tuple[Timestamp, Timestamp]:
        """The [start, end) processing-time visibility of a row."""
        start, end = MIN_TIMESTAMP, MAX_TIMESTAMP
        for bound in self._bounds:
            ts = values[bound.time_index]
            if ts is None:
                return (MAX_TIMESTAMP, MAX_TIMESTAMP)  # NULL never matches
            edge = ts + bound.offset
            if bound.kind == "before":
                end = min(end, edge)
            else:
                start = max(start, edge)
        return start, end

    def _schedule(self, when: Timestamp, action: str, values: tuple) -> None:
        self._agenda.setdefault(when, []).append((action, values))
        self.register_timer(when)

    # -- data path ---------------------------------------------------------------

    def on_change(self, port: int, change: Change) -> list[Change]:
        values = change.values
        start, end = self._interval(values)
        now = change.ptime
        if change.is_insert:
            if now >= end:
                self.expired_rows += 1
                return []
            if now >= start:
                self._visible[values] += 1
                if end < MAX_TIMESTAMP:
                    self._schedule(end, "exit", values)
                return [change]
            self._future[values] += 1
            self._schedule(start, "enter", values)
            return []
        # retraction
        if self._visible.get(values, 0) > 0:
            self._visible[values] -= 1
            if self._visible[values] == 0:
                del self._visible[values]
            return [change]
        if self._future.get(values, 0) > 0:
            self._future[values] -= 1
            if self._future[values] == 0:
                del self._future[values]
            return []
        # the matching insert was already expired by a timer
        self.expired_rows += 1
        return []

    # -- timers ---------------------------------------------------------------------

    def on_timer(self, when: Timestamp) -> list[Change]:
        actions = self._agenda.pop(when, [])
        out: list[Change] = []
        for action, values in actions:
            if action == "exit":
                count = self._visible.pop(values, 0)
                out.extend(
                    Change(ChangeKind.RETRACT, values, when) for _ in range(count)
                )
            else:  # enter
                count = self._future.pop(values, 0)
                if count == 0:
                    continue  # retracted before it ever became visible
                self._visible[values] += count
                _, end = self._interval(values)
                if end < MAX_TIMESTAMP:
                    self._schedule(end, "exit", values)
                out.extend(
                    Change(ChangeKind.INSERT, values, when) for _ in range(count)
                )
        return out

    # -- introspection -----------------------------------------------------------------

    def state_snapshot(self) -> dict:
        snapshot = super().state_snapshot()
        snapshot["visible"] = copy.deepcopy(self._visible)
        snapshot["future"] = copy.deepcopy(self._future)
        snapshot["agenda"] = copy.deepcopy(self._agenda)
        return snapshot

    def state_restore(self, snapshot: dict) -> None:
        super().state_restore(snapshot)
        self._visible = copy.deepcopy(snapshot["visible"])
        self._future = copy.deepcopy(snapshot["future"])
        self._agenda = copy.deepcopy(snapshot["agenda"])

    def state_size(self) -> int:
        return sum(self._visible.values()) + sum(self._future.values())

    def _extra_metrics(self) -> dict:
        return {
            "visible_rows": sum(self._visible.values()),
            "pending_timers": len(self._agenda),
        }

    def name(self) -> str:
        return f"TemporalFilter({len(self._bounds)} bounds)"
