"""Outer joins over changelogs (LEFT and FULL; RIGHT is planned as a
mirrored LEFT).

Outer joins are the textbook hard case for incremental maintenance:
whether a row appears null-extended depends on an *aggregate* of the
other side (its match count), so changes on one side can flip rows of
the other between matched and null-extended form.  The operator tracks
the current match count per distinct row on each outer side and emits
the corresponding retract/insert pairs on every 0 ↔ >0 transition —
plain changelog algebra that every downstream operator already
understands.

Watermark-driven state expiry is deliberately *not* applied to outer
joins: expiring a row would silently flip its matches on the other side
to null-extended, which is a result change, not a no-op.  State stays
bounded only by the inputs (the same conservative stance Flink takes
for general joins).
"""

from __future__ import annotations

import copy

from collections import Counter
from typing import Any, Callable, Optional

from ...core.changelog import Change, ChangeKind
from ...core.errors import ExecutionError
from ...core.schema import Schema
from .base import Operator

__all__ = ["OuterJoinOperator", "LeftJoinOperator"]


class OuterJoinOperator(Operator):
    """Incremental LEFT / FULL OUTER JOIN with two-sided state.

    ``outer`` is a pair of booleans: whether the left / right side
    keeps unmatched rows (LEFT = (True, False), FULL = (True, True)).
    """

    def __init__(
        self,
        schema: Schema,
        left_width: int,
        right_width: int,
        condition: Optional[Callable[[tuple], Any]],
        left_key: Optional[tuple[int, ...]] = None,
        right_key: Optional[tuple[int, ...]] = None,
        outer: tuple[bool, bool] = (True, False),
    ):
        super().__init__(schema, arity=2)
        self._widths = (left_width, right_width)
        self._nulls = ((None,) * right_width, (None,) * left_width)
        self._condition = condition
        self._keys = (left_key or (), right_key or ())
        self._outer = outer
        # key -> Counter(values -> multiplicity), per side
        self._state: tuple[dict, dict] = ({}, {})
        # per side: distinct row -> current match count on the other side
        self._match_counts: tuple[dict[tuple, int], dict[tuple, int]] = ({}, {})

    # -- helpers ---------------------------------------------------------------

    def _combine(self, port: int, values: tuple, other_values: tuple) -> tuple:
        if port == 0:
            return values + other_values
        return other_values + values

    def _null_extended(self, port: int, values: tuple) -> tuple:
        if port == 0:
            return values + self._nulls[0]
        return self._nulls[1] + values

    def _matches(self, port: int, values: tuple, other_values: tuple) -> bool:
        if self._condition is None:
            return True
        return self._condition(self._combine(port, values, other_values)) is True

    def _bucket(self, port: int, key: tuple, create: bool = False) -> Counter:
        side = self._state[port]
        bucket = side.get(key)
        if bucket is None and create:
            bucket = Counter()
            side[key] = bucket
        return bucket if bucket is not None else Counter()

    def _match_count(self, port: int, key: tuple, values: tuple) -> int:
        counts = self._match_counts[port]
        if values in counts:
            return counts[values]
        total = sum(
            count
            for other_values, count in self._bucket(1 - port, key).items()
            if self._matches(port, values, other_values)
        )
        counts[values] = total
        return total

    # -- data path ---------------------------------------------------------------

    def on_change(self, port: int, change: Change) -> list[Change]:
        values = change.values
        key = tuple(values[i] for i in self._keys[port])
        bucket = self._bucket(port, key, create=change.is_insert)
        if change.is_insert:
            bucket[values] += 1
        else:
            if bucket[values] <= 0:
                raise ExecutionError("outer-join retraction for unknown row")
            bucket[values] -= 1
            if bucket[values] == 0:
                del bucket[values]
                if not bucket:
                    del self._state[port][key]

        # this row's own contribution (null row or matched rows)
        own: list[Change] = []
        matches = self._match_count(port, key, values)
        if matches == 0:
            if self._outer[port]:
                own.append(
                    Change(
                        change.kind, self._null_extended(port, values), change.ptime
                    )
                )
        else:
            for other_values, count in self._bucket(1 - port, key).items():
                if self._matches(port, values, other_values):
                    own.extend(
                        Change(
                            change.kind,
                            self._combine(port, values, other_values),
                            change.ptime,
                        )
                        for _ in range(count)
                    )
        if change.is_retract and not self._bucket(port, key).get(values):
            self._match_counts[port].pop(values, None)

        # 0 <-> >0 flips on the other side's rows
        flips: list[Change] = []
        other = 1 - port
        other_counts = self._match_counts[other]
        delta = 1 if change.is_insert else -1
        for other_values, other_count in self._bucket(other, key).items():
            if not self._matches(other, other_values, values):
                continue
            if other_values in other_counts:
                # cached values are pre-change
                previous = other_counts[other_values]
                current = previous + delta
            else:
                # a fresh scan sees the post-change bucket
                current = sum(
                    count
                    for candidate, count in self._bucket(port, key).items()
                    if self._matches(other, other_values, candidate)
                )
                previous = current - delta
            other_counts[other_values] = current
            if not self._outer[other]:
                continue
            null_row = self._null_extended(other, other_values)
            if change.is_insert and previous == 0:
                flips.extend(
                    Change(ChangeKind.RETRACT, null_row, change.ptime)
                    for _ in range(other_count)
                )
            elif change.is_retract and current == 0:
                flips.extend(
                    Change(ChangeKind.INSERT, null_row, change.ptime)
                    for _ in range(other_count)
                )
        # retractions before insertions: a consumer never transiently
        # holds both the null-extended and the matched version of a row
        if change.is_insert:
            return flips + own
        return own + flips

    # -- introspection ---------------------------------------------------------------

    def state_snapshot(self) -> dict:
        snapshot = super().state_snapshot()
        snapshot["state"] = copy.deepcopy(self._state)
        snapshot["match_counts"] = copy.deepcopy(self._match_counts)
        return snapshot

    def state_restore(self, snapshot: dict) -> None:
        super().state_restore(snapshot)
        self._state = copy.deepcopy(snapshot["state"])
        self._match_counts = copy.deepcopy(snapshot["match_counts"])

    def state_size(self) -> int:
        return sum(
            sum(bucket.values())
            for side in self._state
            for bucket in side.values()
        )

    def _extra_metrics(self) -> dict:
        return {
            "match_counts_cached": sum(len(c) for c in self._match_counts)
        }

    def name(self) -> str:
        kind = "FullJoin" if self._outer[1] else "LeftJoin"
        return f"{kind}(state={self.state_size()} rows)"


def LeftJoinOperator(
    schema: Schema,
    left_width: int,
    right_width: int,
    condition: Optional[Callable[[tuple], Any]],
    left_key: Optional[tuple[int, ...]] = None,
    right_key: Optional[tuple[int, ...]] = None,
) -> OuterJoinOperator:
    """A LEFT OUTER JOIN operator (kept as a named constructor)."""
    return OuterJoinOperator(
        schema,
        left_width,
        right_width,
        condition,
        left_key,
        right_key,
        outer=(True, False),
    )
