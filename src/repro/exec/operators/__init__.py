"""Physical operators over changelogs."""

from .aggregate import AggregateOperator
from .base import Operator
from .join import JoinOperator, TimeBound
from .match import MatchRecognizeOperator
from .outer_join import LeftJoinOperator, OuterJoinOperator
from .over import OverOperator
from .semi_join import SemiJoinOperator
from .session import SessionOperator
from .stateless import (
    FilterOperator,
    ProjectOperator,
    ScanOperator,
    SortOperator,
    UnionOperator,
)
from .temporal import TemporalFilterOperator
from .temporal_join import TemporalJoinOperator
from .window import HopOperator, TumbleOperator, hop_windows

__all__ = [
    "Operator",
    "ScanOperator",
    "FilterOperator",
    "ProjectOperator",
    "UnionOperator",
    "SortOperator",
    "TumbleOperator",
    "HopOperator",
    "hop_windows",
    "SessionOperator",
    "AggregateOperator",
    "JoinOperator",
    "TimeBound",
    "OuterJoinOperator",
    "LeftJoinOperator",
    "SemiJoinOperator",
    "TemporalFilterOperator",
    "TemporalJoinOperator",
    "MatchRecognizeOperator",
    "OverOperator",
]
