"""INTERSECT / EXCEPT over changelogs with bag semantics.

The output multiplicity of a row is a pure function of its counts on
the two sides, so the operator keeps one pair of counts per distinct
row and emits the multiplicity delta whenever a change moves either
count — rows flip in and out as either input evolves, just like every
other retractive operator here.
"""

from __future__ import annotations

import copy

from ...core.changelog import Change, ChangeKind
from ...core.errors import ExecutionError
from ...core.schema import Schema
from .base import Operator

__all__ = ["SetOpOperator"]


class SetOpOperator(Operator):
    """INTERSECT [ALL] / EXCEPT [ALL]."""

    def __init__(self, schema: Schema, op: str, all: bool):
        super().__init__(schema, arity=2)
        self._op = op
        self._all = all
        # row values -> [left count, right count]
        self._counts: dict[tuple, list[int]] = {}

    def _output_multiplicity(self, left: int, right: int) -> int:
        if self._op == "INTERSECT":
            result = min(left, right)
        else:  # EXCEPT
            result = max(left - right, 0)
        if not self._all:
            return 1 if result > 0 else 0
        return result

    def on_change(self, port: int, change: Change) -> list[Change]:
        values = change.values
        counts = self._counts.setdefault(values, [0, 0])
        before = self._output_multiplicity(*counts)
        counts[port] += change.delta
        if counts[port] < 0:
            raise ExecutionError("set operation retracted a missing row")
        after = self._output_multiplicity(*counts)
        if counts == [0, 0]:
            del self._counts[values]
        if after == before:
            return []
        kind = ChangeKind.INSERT if after > before else ChangeKind.RETRACT
        return [
            Change(kind, values, change.ptime) for _ in range(abs(after - before))
        ]

    # -- checkpointing -------------------------------------------------------

    def state_snapshot(self) -> dict:
        snapshot = super().state_snapshot()
        snapshot["counts"] = copy.deepcopy(self._counts)
        return snapshot

    def state_restore(self, snapshot: dict) -> None:
        super().state_restore(snapshot)
        self._counts = copy.deepcopy(snapshot["counts"])

    # -- introspection -----------------------------------------------------------

    def state_size(self) -> int:
        return sum(l + r for l, r in self._counts.values())

    def _extra_metrics(self) -> dict:
        return {"distinct_rows": len(self._counts)}

    def name(self) -> str:
        return f"{self._op}{' ALL' if self._all else ''}"
