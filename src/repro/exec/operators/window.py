"""Windowing TVF operators: Tumble and Hop (Extension 3).

Both are *stateless* relational transforms: they map each input row to
one (Tumble) or ``size/slide`` (Hop) output rows carrying the window's
``wstart``/``wend`` as ordinary event time columns.  This is the
paper's fix for ``GROUP BY HOP(...)``: the row multiplication happens
in a table-valued function, so the grouping above it is a plain
relational GROUP BY.

Session windows (a future-work item in Section 8 that we implement) are
stateful and live in :mod:`.session`.
"""

from __future__ import annotations

from typing import Sequence

from ...core.changelog import Change
from ...core.colbatch import ColumnarBatch
from ...core.errors import ExecutionError
from ...core.schema import Schema
from ...core.times import Duration, align_to_window
from .base import Operator

__all__ = ["TumbleOperator", "HopOperator", "hop_windows"]


class TumbleOperator(Operator):
    """Assigns each row to the fixed window containing its timestamp."""

    supports_columnar = True

    def __init__(
        self, schema: Schema, timecol: int, size: Duration, offset: Duration = 0
    ):
        super().__init__(schema, arity=1)
        self._timecol = timecol
        self._size = size
        self._offset = offset

    def on_change(self, port: int, change: Change) -> list[Change]:
        ts = change.values[self._timecol]
        if ts is None:
            raise ExecutionError("NULL event timestamp in Tumble input")
        wstart = align_to_window(ts, self._size, self._offset)
        values = (wstart, wstart + self._size) + change.values
        return [Change(change.kind, values, change.ptime)]

    def on_batch(self, port: int, changes: Sequence[Change]) -> list[Change]:
        timecol, size, offset = self._timecol, self._size, self._offset
        make = Change
        out: list[Change] = []
        append = out.append
        for change in changes:
            ts = change.values[timecol]
            if ts is None:
                raise ExecutionError("NULL event timestamp in Tumble input")
            wstart = align_to_window(ts, size, offset)
            append(
                make(
                    change.kind,
                    (wstart, wstart + size) + change.values,
                    change.ptime,
                )
            )
        return out

    def on_cols(self, port: int, batch):
        # The columnar fast path: Tumble is kind-preserving and 1:1,
        # so every input column, the kinds vector, and the ptimes
        # vector are shared with the input batch untouched — only the
        # two window columns are materialized.
        size, offset = self._size, self._offset
        wstarts: list[int] = []
        append = wstarts.append
        for ts in batch.columns[self._timecol]:
            if ts is None:
                raise ExecutionError("NULL event timestamp in Tumble input")
            # Inline align_to_window: ts - ((ts - offset) % size) is
            # the same grid alignment without the second multiply.
            append(ts - ((ts - offset) % size))
        wends = [ws + size for ws in wstarts]
        return ColumnarBatch(
            (wstarts, wends) + batch.columns, batch.kinds, batch.ptimes
        )


def hop_windows(
    ts: int, size: Duration, slide: Duration, offset: Duration = 0
) -> list[tuple[int, int]]:
    """All (wstart, wend) hop windows containing ``ts``.

    Windows start every ``slide`` and are ``size`` wide.  With
    ``slide < size`` windows overlap (each row lands in
    ``ceil(size/slide)``-ish windows); with ``slide > size`` there are
    gaps and a row may fall in no window at all.
    """
    windows: list[tuple[int, int]] = []
    # Earliest window that could contain ts starts at ts - size
    # (exclusive); walk starts aligned to the slide grid.
    first_start = align_to_window(ts - size, slide, offset) + slide
    start = first_start
    while start <= ts:
        end = start + size
        if ts < end:
            windows.append((start, end))
        start += slide
    return windows


class HopOperator(Operator):
    """Assigns each row to every sliding window that contains it."""

    supports_columnar = True

    def __init__(
        self,
        schema: Schema,
        timecol: int,
        size: Duration,
        slide: Duration,
        offset: Duration = 0,
    ):
        super().__init__(schema, arity=1)
        self._timecol = timecol
        self._size = size
        self._slide = slide
        self._offset = offset

    def on_change(self, port: int, change: Change) -> list[Change]:
        ts = change.values[self._timecol]
        if ts is None:
            raise ExecutionError("NULL event timestamp in Hop input")
        out = []
        for wstart, wend in hop_windows(ts, self._size, self._slide, self._offset):
            values = (wstart, wend) + change.values
            out.append(Change(change.kind, values, change.ptime))
        return out

    def on_batch(self, port: int, changes: Sequence[Change]) -> list[Change]:
        size, slide, offset = self._size, self._slide, self._offset
        timecol = self._timecol
        make = Change
        out: list[Change] = []
        append = out.append
        for change in changes:
            ts = change.values[timecol]
            if ts is None:
                raise ExecutionError("NULL event timestamp in Hop input")
            for wstart, wend in hop_windows(ts, size, slide, offset):
                append(
                    make(change.kind, (wstart, wend) + change.values, change.ptime)
                )
        return out

    def on_cols(self, port: int, batch):
        # Hop is 1:N, so columns cannot be shared; materialize the row
        # index list first, then gather every output column from it.
        size, slide, offset = self._size, self._slide, self._offset
        wstarts: list[int] = []
        wends: list[int] = []
        indices: list[int] = []
        tcol = batch.columns[self._timecol]
        for row, ts in enumerate(tcol):
            if ts is None:
                raise ExecutionError("NULL event timestamp in Hop input")
            for wstart, wend in hop_windows(ts, size, slide, offset):
                wstarts.append(wstart)
                wends.append(wend)
                indices.append(row)
        kinds = batch.kinds
        ptimes = batch.ptimes
        out_cols = [wstarts, wends]
        for col in batch.columns:
            out_cols.append([col[i] for i in indices])
        return ColumnarBatch(
            out_cols,
            [kinds[i] for i in indices],
            [ptimes[i] for i in indices],
        )
