"""Incremental grouped aggregation with retraction support.

The operator maintains per-group accumulators and, on every input
change, re-derives the group's output row.  If the row changed, it
emits a retraction of the previous version followed by an insertion of
the new one — the instantaneous-view changelog that EMIT STREAM renders
(Listing 9).  If the row is unchanged (e.g. a new bid that does not
beat the current MAX), nothing is emitted.

Event-time semantics (Extensions 1 & 2):

* inputs whose event-time grouping key is already covered by the input
  watermark belong to a **complete** group and are dropped as late
  data;
* when the watermark passes a group's event-time key, the group's
  accumulators are **freed** — this is the "state for an ongoing
  aggregation can be freed" lesson of Section 5, and what keeps state
  bounded on unbounded inputs (see ``bench_state_size``).
"""

from __future__ import annotations

import copy

from dataclasses import dataclass, field
from operator import itemgetter
from typing import Any, Optional, Sequence

from ...core.changelog import Change, ChangeKind
from ...core.errors import ExecutionError
from ...core.schema import Schema
from ...core.times import MIN_TIMESTAMP, Timestamp
from ...plan.logical import AggCall
from .base import Operator

__all__ = [
    "AggregateOperator",
    "CombineAggregateOperator",
    "PartialAggregateOperator",
    "SUPPRESSED",
]


class _Suppressed:
    """Placeholder for a DISTINCT duplicate the partial stage absorbed.

    A singleton with a pickle-stable identity so payloads survive the
    processes backend: ``__reduce__`` reconstructs *the* instance, and
    combine-side checks stay plain ``is`` comparisons.
    """

    _instance: Optional["_Suppressed"] = None

    def __new__(cls) -> "_Suppressed":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __reduce__(self):
        return (_Suppressed, ())

    def __repr__(self) -> str:
        return "<suppressed>"


SUPPRESSED = _Suppressed()


@dataclass
class _GroupState:
    accumulators: list[Any]
    distinct_counts: list[Optional[dict[Any, int]]]
    row_count: int = 0
    emitted: Optional[tuple[Any, ...]] = None
    # Count of retained input row occurrences (for state accounting).
    retained: int = field(default=0)


class AggregateOperator(Operator):
    """Keyed incremental aggregation over a changelog."""

    supports_columnar = True

    def __init__(
        self,
        schema: Schema,
        group_indices: Sequence[int],
        aggs: Sequence[AggCall],
        event_time_key_positions: Sequence[int],
        input_bounded: bool,
        allowed_lateness: int = 0,
    ):
        super().__init__(schema, arity=1)
        self._group_indices = tuple(group_indices)
        self._aggs = tuple(aggs)
        self._et_positions = tuple(event_time_key_positions)
        self._allowed_lateness = allowed_lateness
        self._groups: dict[tuple, _GroupState] = {}
        self._finalized_max: Timestamp = MIN_TIMESTAMP
        self._global = not self._group_indices
        # Monotonic, unlike the ``groups`` gauge (which drops back as
        # the watermark frees state): the cost model's fan-in feedback
        # needs lifetime rows-per-group.
        self._groups_created = 0

    # -- lifecycle ------------------------------------------------------------

    def on_open(self) -> list[Change]:
        if not self._global or () in self._groups:
            return []
        # A global aggregate over an empty input still has one row
        # (COUNT(*) = 0, SUM = NULL, ...), like any SQL engine.
        state = self._new_group()
        self._groups[()] = state
        row = self._output_row((), state)
        state.emitted = row
        return [Change(ChangeKind.INSERT, row, MIN_TIMESTAMP)]

    def _new_group(self) -> _GroupState:
        accumulators = [agg.function.create() for agg in self._aggs]
        distinct = [dict() if agg.distinct else None for agg in self._aggs]
        self._groups_created += 1
        return _GroupState(accumulators, distinct)

    # -- data path ---------------------------------------------------------------

    def on_change(self, port: int, change: Change) -> list[Change]:
        values = change.values
        key = tuple(values[i] for i in self._group_indices)

        if self._is_late(key):
            self.late_dropped += 1
            return []

        state = self._groups.get(key)
        if state is None:
            state = self._new_group()
            self._groups[key] = state

        if change.is_insert:
            state.row_count += 1
            state.retained += 1
            self._accumulate(state, values, add=True)
        else:
            if state.row_count <= 0:
                raise ExecutionError(
                    f"retraction for empty group {key!r} in aggregation"
                )
            state.row_count -= 1
            state.retained -= 1
            self._accumulate(state, values, add=False)

        out: list[Change] = []
        if state.row_count == 0 and not self._global:
            if state.emitted is not None:
                out.append(Change(ChangeKind.RETRACT, state.emitted, change.ptime))
            del self._groups[key]
            return out

        row = self._output_row(key, state)
        if row == state.emitted:
            return []
        if state.emitted is not None:
            out.append(Change(ChangeKind.RETRACT, state.emitted, change.ptime))
        out.append(Change(ChangeKind.INSERT, row, change.ptime))
        state.emitted = row
        return out

    def on_batch(self, port: int, changes: Sequence[Change]) -> list[Change]:
        # Same transitions as on_change, with the per-change lookups
        # hoisted: one group-dict binding, one lateness cutoff (the
        # input watermark cannot move inside a batch, because watermark
        # events break batches), one output list.
        groups = self._groups
        group_indices = self._group_indices
        et_positions = self._et_positions
        lateness = self._allowed_lateness
        is_global = self._global
        wm = self.input_watermark if et_positions else MIN_TIMESTAMP
        retract = ChangeKind.RETRACT
        insert = ChangeKind.INSERT
        out: list[Change] = []
        append = out.append
        aggs = self._aggs
        if len(aggs) == 1 and not aggs[0].distinct:
            # The dominant shape (one non-DISTINCT aggregate, e.g.
            # COUNT(*) per window): inline the single accumulator's
            # add/retract/result instead of looping the agg list per
            # change.  Transitions are identical to the generic loop.
            agg0 = aggs[0]
            arg0 = agg0.arg_index
            add0 = agg0.function.add
            retract0 = agg0.function.retract
            result0 = agg0.function.result
            single_key = group_indices[0] if len(group_indices) == 1 else None
            for change in changes:
                values = change.values
                key = (
                    (values[single_key],)
                    if single_key is not None
                    else tuple(values[i] for i in group_indices)
                )
                if et_positions and all(
                    key[pos] + lateness <= wm for pos in et_positions
                ):
                    self.late_dropped += 1
                    continue
                state = groups.get(key)
                if state is None:
                    state = self._new_group()
                    groups[key] = state
                value = values[arg0] if arg0 is not None else None
                if change.kind is insert:
                    state.row_count += 1
                    state.retained += 1
                    add0(state.accumulators[0], value)
                else:
                    if state.row_count <= 0:
                        raise ExecutionError(
                            f"retraction for empty group {key!r} in aggregation"
                        )
                    state.row_count -= 1
                    state.retained -= 1
                    retract0(state.accumulators[0], value)
                emitted = state.emitted
                if state.row_count == 0 and not is_global:
                    if emitted is not None:
                        append(Change(retract, emitted, change.ptime))
                    del groups[key]
                    continue
                row = key + (result0(state.accumulators[0]),)
                if row == emitted:
                    continue
                if emitted is not None:
                    append(Change(retract, emitted, change.ptime))
                append(Change(insert, row, change.ptime))
                state.emitted = row
            return out
        for change in changes:
            values = change.values
            key = tuple(values[i] for i in group_indices)
            if et_positions and all(
                key[pos] + lateness <= wm for pos in et_positions
            ):
                self.late_dropped += 1
                continue
            state = groups.get(key)
            if state is None:
                state = self._new_group()
                groups[key] = state
            if change.kind is insert:
                state.row_count += 1
                state.retained += 1
                self._accumulate(state, values, add=True)
            else:
                if state.row_count <= 0:
                    raise ExecutionError(
                        f"retraction for empty group {key!r} in aggregation"
                    )
                state.row_count -= 1
                state.retained -= 1
                self._accumulate(state, values, add=False)
            if state.row_count == 0 and not is_global:
                if state.emitted is not None:
                    append(Change(retract, state.emitted, change.ptime))
                del groups[key]
                continue
            row = self._output_row(key, state)
            if row == state.emitted:
                continue
            if state.emitted is not None:
                append(Change(retract, state.emitted, change.ptime))
            append(Change(insert, row, change.ptime))
            state.emitted = row
        return out

    def on_cols(self, port: int, batch) -> list[Change]:
        # Columnar entry: the single non-DISTINCT-aggregate fast path
        # reads the key and argument columns directly, so no row tuple
        # or Change is materialized per input.  Output is rows either
        # way — aggregation is where the columnar run ends.
        aggs = self._aggs
        if len(aggs) != 1 or aggs[0].distinct:
            return self.on_batch(port, batch.to_changes())
        groups = self._groups
        group_indices = self._group_indices
        et_positions = self._et_positions
        lateness = self._allowed_lateness
        is_global = self._global
        wm = self.input_watermark if et_positions else MIN_TIMESTAMP
        retract = ChangeKind.RETRACT
        insert = ChangeKind.INSERT
        out: list[Change] = []
        append = out.append
        agg0 = aggs[0]
        arg0 = agg0.arg_index
        add0 = agg0.function.add
        retract0 = agg0.function.retract
        result0 = agg0.function.result
        # COUNT(*) — no argument, unconditional transition — runs with
        # the accumulator cell inlined, three method calls fewer per row.
        count_star = arg0 is None and agg0.function.name == "COUNT"
        columns = batch.columns
        kinds = batch.kinds
        ptimes = batch.ptimes
        arg_col = columns[arg0] if arg0 is not None else None
        # One- and two-column group keys (every windowed GROUP BY is at
        # least (wend, wstart)) build their key tuples and run their
        # lateness checks with direct column indexing; wider keys take
        # the general generator path.
        key_col = kc0 = kc1 = key_cols = None
        if len(group_indices) == 1:
            key_col = columns[group_indices[0]]
        elif len(group_indices) == 2:
            kc0, kc1 = columns[group_indices[0]], columns[group_indices[1]]
        else:
            key_cols = [columns[i] for i in group_indices]
        n_et = len(et_positions)
        et_a = columns[group_indices[et_positions[0]]] if n_et >= 1 else None
        et_b = columns[group_indices[et_positions[1]]] if n_et >= 2 else None
        late_bound = wm - lateness
        # A burst usually lands in one window, making the whole batch
        # one group; ``list.count`` detects that at C speed, and the
        # constant-key loop then does one lateness check, one state
        # lookup, and no key tuple per row.
        n_rows = len(kinds)
        const_key = None
        if key_col is not None:
            v0 = key_col[0]
            if key_col.count(v0) == n_rows:
                const_key = (v0,)
        elif kc0 is not None:
            a0, b0 = kc0[0], kc1[0]
            if kc0.count(a0) == n_rows and kc1.count(b0) == n_rows:
                const_key = (a0, b0)
        if const_key is not None:
            key = const_key
            if n_et and all(key[pos] <= late_bound for pos in et_positions):
                self.late_dropped += n_rows
                return out
            state = groups.get(key)
            for idx, kind in enumerate(kinds):
                if state is None:
                    state = self._new_group()
                    groups[key] = state
                acc0 = state.accumulators[0]
                ptime = ptimes[idx]
                if kind is insert:
                    state.row_count += 1
                    state.retained += 1
                    if count_star:
                        acc0[0] += 1
                    else:
                        add0(
                            acc0,
                            arg_col[idx] if arg_col is not None else None,
                        )
                else:
                    if state.row_count <= 0:
                        raise ExecutionError(
                            f"retraction for empty group {key!r} in "
                            "aggregation"
                        )
                    state.row_count -= 1
                    state.retained -= 1
                    if count_star:
                        acc0[0] -= 1
                    else:
                        retract0(
                            acc0,
                            arg_col[idx] if arg_col is not None else None,
                        )
                emitted = state.emitted
                if state.row_count == 0 and not is_global:
                    if emitted is not None:
                        append(Change(retract, emitted, ptime))
                    del groups[key]
                    state = None
                    continue
                row = key + ((acc0[0] if count_star else result0(acc0)),)
                if row == emitted:
                    continue
                if emitted is not None:
                    append(Change(retract, emitted, ptime))
                append(Change(insert, row, ptime))
                state.emitted = row
            return out
        for idx, kind in enumerate(kinds):
            if n_et:
                if n_et == 1:
                    late = et_a[idx] <= late_bound
                elif n_et == 2:
                    late = et_a[idx] <= late_bound and et_b[idx] <= late_bound
                else:
                    late = all(
                        columns[group_indices[pos]][idx] <= late_bound
                        for pos in et_positions
                    )
                if late:
                    self.late_dropped += 1
                    continue
            if key_col is not None:
                key = (key_col[idx],)
            elif kc0 is not None:
                key = (kc0[idx], kc1[idx])
            else:
                key = tuple(col[idx] for col in key_cols)
            state = groups.get(key)
            if state is None:
                state = self._new_group()
                groups[key] = state
            acc0 = state.accumulators[0]
            ptime = ptimes[idx]
            if kind is insert:
                state.row_count += 1
                state.retained += 1
                if count_star:
                    acc0[0] += 1
                else:
                    add0(acc0, arg_col[idx] if arg_col is not None else None)
            else:
                if state.row_count <= 0:
                    raise ExecutionError(
                        f"retraction for empty group {key!r} in aggregation"
                    )
                state.row_count -= 1
                state.retained -= 1
                if count_star:
                    acc0[0] -= 1
                else:
                    retract0(acc0, arg_col[idx] if arg_col is not None else None)
            emitted = state.emitted
            if state.row_count == 0 and not is_global:
                if emitted is not None:
                    append(Change(retract, emitted, ptime))
                del groups[key]
                continue
            row = key + ((acc0[0] if count_star else result0(acc0)),)
            if row == emitted:
                continue
            if emitted is not None:
                append(Change(retract, emitted, ptime))
            append(Change(insert, row, ptime))
            state.emitted = row
        return out

    def _accumulate(self, state: _GroupState, values: tuple, add: bool) -> None:
        for i, agg in enumerate(self._aggs):
            value = values[agg.arg_index] if agg.arg_index is not None else None
            counts = state.distinct_counts[i]
            if counts is not None:
                # DISTINCT: only the first occurrence reaches the
                # accumulator; only the last removal retracts it.
                if add:
                    seen = counts.get(value, 0)
                    counts[value] = seen + 1
                    if seen:
                        continue
                else:
                    seen = counts.get(value, 0)
                    if seen > 1:
                        counts[value] = seen - 1
                        continue
                    counts.pop(value, None)
            if add:
                agg.function.add(state.accumulators[i], value)
            else:
                agg.function.retract(state.accumulators[i], value)

    def _output_row(self, key: tuple, state: _GroupState) -> tuple:
        results = tuple(
            agg.function.result(state.accumulators[i])
            for i, agg in enumerate(self._aggs)
        )
        return key + results

    # -- event time ------------------------------------------------------------------

    def _is_late(self, key: tuple) -> bool:
        """Whether this change belongs to a group declared complete.

        A group is complete once *all* of its event-time keys are
        covered by the watermark: for a window grouped by (wstart,
        wend) that is ``wend <= watermark``, since wstart < wend.  (A
        group keyed by wstart alone would otherwise complete while its
        window was still open; the planner's sibling-key injection
        guarantees wend is always present alongside wstart.)
        """
        if not self._et_positions:
            return False
        wm = self.input_watermark
        return all(
            key[pos] + self._allowed_lateness <= wm
            for pos in self._et_positions
        )

    def _group_complete_at(self, key: tuple, wm: Timestamp) -> bool:
        """With allowed lateness, state survives the watermark by that
        margin so late firings can still update the group (the "late"
        pane of the early/on-time/late pattern)."""
        return bool(self._et_positions) and all(
            key[pos] + self._allowed_lateness <= wm
            for pos in self._et_positions
        )

    def _on_watermark_advanced(self, merged: Timestamp, ptime: Timestamp) -> list[Change]:
        # Free the state of groups that just became complete.  Their
        # output rows are already current; late inputs will be dropped
        # by _is_late, so the accumulators are never needed again.
        if not self._et_positions or merged <= self._finalized_max:
            return []
        self._finalized_max = merged
        done = [
            key
            for key in self._groups
            if self._group_complete_at(key, merged)
        ]
        for key in done:
            del self._groups[key]
        return []

    # -- introspection ----------------------------------------------------------------

    def state_snapshot(self) -> dict:
        snapshot = super().state_snapshot()
        snapshot["groups"] = copy.deepcopy(self._groups)
        snapshot["finalized_max"] = copy.deepcopy(self._finalized_max)
        snapshot["groups_created"] = self._groups_created
        return snapshot

    def state_restore(self, snapshot: dict) -> None:
        super().state_restore(snapshot)
        self._groups = copy.deepcopy(snapshot["groups"])
        self._finalized_max = copy.deepcopy(snapshot["finalized_max"])
        self._groups_created = snapshot.get("groups_created", 0)

    def state_size(self) -> int:
        return sum(state.retained for state in self._groups.values())

    def _extra_metrics(self) -> dict:
        return {
            "groups": len(self._groups),
            "groups_created": self._groups_created,
        }

    @property
    def group_count(self) -> int:
        return len(self._groups)

    def name(self) -> str:
        return f"Aggregate({len(self._aggs)} aggs, {len(self._groups)} groups)"


class PartialAggregateOperator(AggregateOperator):
    """Shard-local half of a two-phase aggregation.

    Instead of maintaining accumulators and emitting a retract/insert
    pair per input row, this operator condenses each micro-batch into
    **one** payload change shipped across the merge:

    * **replay mode** (``delta_mode=False``, the byte-identity path):
      the payload carries the batch's effective rows in order as
      ``(sign, key, values)`` entries; the combine operator replays
      them through the exact single-phase transitions.
    * **delta mode** (``delta_mode=True``, paired with
      ``coalesce_updates``): the batch is folded into one delta per
      touched group via the :class:`AggregateFunction` delta protocol,
      so merge traffic is O(groups touched), not O(rows).

    The late-data check runs *here*, against the shard's input
    watermark — watermarks are broadcast, so the cutoff at each row's
    global sequence position is exactly the serial operator's.  The
    only persistent state is DISTINCT dedup counts (rows of one group
    always hash to one shard, so shard-local counts are global for
    that group); without DISTINCT the operator is stateless and the
    empty-group retraction guard falls to the combine stage.
    """

    # Payload condensation overrides on_batch, so the inherited
    # columnar fast path would bypass it; the executor converts at the
    # boundary instead.
    supports_columnar = False

    def __init__(
        self,
        schema: Schema,
        group_indices: Sequence[int],
        aggs: Sequence[AggCall],
        event_time_key_positions: Sequence[int],
        input_bounded: bool,
        allowed_lateness: int = 0,
        delta_mode: bool = False,
    ):
        super().__init__(
            schema,
            group_indices,
            aggs,
            event_time_key_positions,
            input_bounded,
            allowed_lateness,
        )
        if not self._group_indices:
            raise ExecutionError(
                "partial aggregation requires group keys; global "
                "aggregates are not split"
            )
        self.delta_mode = delta_mode
        self._has_distinct = any(agg.distinct for agg in self._aggs)
        # Hot-loop table for _delta_batch: one attribute-free tuple per
        # aggregate, so the per-row loop does no method resolution on
        # ``agg.function``.
        self._delta_specs = tuple(
            (
                agg.arg_index,
                agg.distinct,
                None if agg.distinct else agg.function.delta_create,
                None if agg.distinct else agg.function.delta_add,
                None if agg.distinct else agg.function.delta_retract,
            )
            for agg in self._aggs
        )

    # -- lifecycle ------------------------------------------------------------

    def on_open(self) -> list[Change]:
        # Never global (checked above): no seed row.  The combine
        # stage owns any output-side initialization.
        return []

    # -- data path ---------------------------------------------------------------

    def on_change(self, port: int, change: Change) -> list[Change]:
        return self.on_batch(port, (change,))

    def on_batch(self, port: int, changes: Sequence[Change]) -> list[Change]:
        if not changes:
            return []
        # Watermark events break batches, so one batch sits at one
        # processing instant and under one lateness cutoff.
        if self.delta_mode:
            return self._delta_batch(changes)
        return self._replay_batch(changes)

    def _replay_batch(self, changes: Sequence[Change]) -> list[Change]:
        group_indices = self._group_indices
        et_positions = self._et_positions
        lateness = self._allowed_lateness
        wm = self.input_watermark if et_positions else MIN_TIMESTAMP
        aggs = self._aggs
        insert = ChangeKind.INSERT
        entries: list[tuple] = []
        if not self._has_distinct:
            # Stateless: forward each effective row's sign, key, and
            # aggregate arguments verbatim.
            arg_indices = tuple(agg.arg_index for agg in aggs)
            for change in changes:
                values = change.values
                key = tuple(values[i] for i in group_indices)
                if et_positions and all(
                    key[pos] + lateness <= wm for pos in et_positions
                ):
                    self.late_dropped += 1
                    continue
                vals = tuple(
                    values[i] if i is not None else None for i in arg_indices
                )
                entries.append(
                    (1 if change.kind is insert else -1, key, vals)
                )
        else:
            # DISTINCT dedup happens shard-side so the combine stage
            # never sees a duplicate: forwarded values mark the local
            # 0->1 / 1->0 transitions, everything else ships as
            # SUPPRESSED.  Group state exists purely to host the
            # counts; it mirrors the serial operator's row_count and
            # empty-retraction guard so errors surface identically.
            groups = self._groups
            for change in changes:
                values = change.values
                key = tuple(values[i] for i in group_indices)
                if et_positions and all(
                    key[pos] + lateness <= wm for pos in et_positions
                ):
                    self.late_dropped += 1
                    continue
                state = groups.get(key)
                if state is None:
                    state = self._new_group()
                    groups[key] = state
                adding = change.kind is insert
                if adding:
                    state.row_count += 1
                    state.retained += 1
                else:
                    if state.row_count <= 0:
                        raise ExecutionError(
                            f"retraction for empty group {key!r} in aggregation"
                        )
                    state.row_count -= 1
                    state.retained -= 1
                vals = []
                for i, agg in enumerate(aggs):
                    value = (
                        values[agg.arg_index]
                        if agg.arg_index is not None
                        else None
                    )
                    counts = state.distinct_counts[i]
                    if counts is None:
                        vals.append(value)
                    elif adding:
                        seen = counts.get(value, 0)
                        counts[value] = seen + 1
                        vals.append(SUPPRESSED if seen else value)
                    else:
                        seen = counts.get(value, 0)
                        if seen > 1:
                            counts[value] = seen - 1
                            vals.append(SUPPRESSED)
                        else:
                            counts.pop(value, None)
                            vals.append(value)
                if state.row_count == 0:
                    # Death resets the dedup counts, exactly when the
                    # serial operator would drop the group.
                    del groups[key]
                entries.append(
                    (1 if adding else -1, key, tuple(vals))
                )
        if not entries:
            return []
        payload = ("P2R", len(entries), tuple(entries))
        return [Change(ChangeKind.INSERT, payload, changes[0].ptime)]

    def _delta_batch(self, changes: Sequence[Change]) -> list[Change]:
        group_indices = self._group_indices
        et_positions = self._et_positions
        lateness = self._allowed_lateness
        wm = self.input_watermark if et_positions else MIN_TIMESTAMP
        aggs = self._aggs
        specs = self._delta_specs
        insert = ChangeKind.INSERT
        if len(group_indices) == 1:
            sole = group_indices[0]
            key_of = lambda values: (values[sole],)  # noqa: E731
        else:
            key_of = itemgetter(*group_indices)
        # First-touch insertion order, so the combine emits groups in
        # a deterministic order per payload.
        builders: dict[tuple, list] = {}
        rows = 0
        for change in changes:
            values = change.values
            key = key_of(values)
            if et_positions and all(
                key[pos] + lateness <= wm for pos in et_positions
            ):
                self.late_dropped += 1
                continue
            rows += 1
            builder = builders.get(key)
            if builder is None:
                builder = [
                    0,
                    [
                        ([], []) if distinct else create()
                        for _, distinct, create, _, _ in specs
                    ],
                ]
                builders[key] = builder
            adding = change.kind is insert
            builder[0] += 1 if adding else -1
            for delta, (arg_index, distinct, _, add, retract) in zip(
                builder[1], specs
            ):
                value = values[arg_index] if arg_index is not None else None
                if distinct:
                    # DISTINCT deltas are always raw value lists; the
                    # combine's global dedup counts decide what
                    # reaches the accumulator.
                    delta[0 if adding else 1].append(value)
                elif adding:
                    add(delta, value)
                else:
                    retract(delta, value)
        if not builders:
            return []
        entries = tuple(
            (
                key,
                builder[0],
                tuple(
                    (tuple(delta[0]), tuple(delta[1]))
                    if agg.distinct
                    else agg.function.delta_freeze(delta)
                    for agg, delta in zip(aggs, builder[1])
                ),
            )
            for key, builder in builders.items()
        )
        payload = ("P2D", rows, entries)
        return [Change(ChangeKind.INSERT, payload, changes[0].ptime)]

    # -- introspection ----------------------------------------------------------------

    def _extra_metrics(self) -> dict:
        extras = super()._extra_metrics()
        extras["partial_mode"] = "delta" if self.delta_mode else "replay"
        return extras

    def name(self) -> str:
        mode = "delta" if self.delta_mode else "replay"
        return f"PartialAggregate({len(self._aggs)} aggs, {mode})"


class CombineAggregateOperator(AggregateOperator):
    """Merge-stage half of a two-phase aggregation.

    Consumes the partial payloads of every shard in global sequence
    order.  Replay payloads go through the inherited single-phase
    transitions entry by entry — group keys arrive pre-extracted, the
    lateness cutoff already happened shard-side, and SUPPRESSED marks
    a DISTINCT duplicate the shard absorbed — so the emitted changelog
    is byte-identical to serial execution.  Delta payloads fold one
    summary per touched group into the global accumulators and emit
    one retract/insert pair per group, the coalesced shape.

    ``rows_in`` counts payloads — that *is* the merge-traffic metric —
    while ``agg_rows_in`` preserves the true row count for the cost
    model's fan-in feedback.
    """

    # Payloads are opaque row changes; the columnar fast path must not
    # apply aggregate transitions to them.
    supports_columnar = False

    def __init__(
        self,
        schema: Schema,
        group_indices: Sequence[int],
        aggs: Sequence[AggCall],
        event_time_key_positions: Sequence[int],
        input_bounded: bool,
        allowed_lateness: int = 0,
    ):
        super().__init__(
            schema,
            group_indices,
            aggs,
            event_time_key_positions,
            input_bounded,
            allowed_lateness,
        )
        self._agg_rows_in = 0

    # -- data path ---------------------------------------------------------------

    def on_change(self, port: int, change: Change) -> list[Change]:
        return self.on_batch(port, (change,))

    def on_batch(self, port: int, changes: Sequence[Change]) -> list[Change]:
        out: list[Change] = []
        for change in changes:
            tag, rows, entries = change.values
            self._agg_rows_in += rows
            if tag == "P2R":
                self._replay(entries, change.ptime, out)
            elif tag == "P2D":
                self._apply_deltas(entries, change.ptime, out)
            else:
                raise ExecutionError(
                    f"unknown partial aggregation payload tag {tag!r}"
                )
        return out

    def _replay(
        self, entries: tuple, ptime: Timestamp, out: list[Change]
    ) -> None:
        groups = self._groups
        aggs = self._aggs
        retract = ChangeKind.RETRACT
        insert = ChangeKind.INSERT
        append = out.append
        for sign, key, vals in entries:
            state = groups.get(key)
            if state is None:
                state = self._new_group()
                groups[key] = state
            if sign > 0:
                state.row_count += 1
                state.retained += 1
                for i, agg in enumerate(aggs):
                    value = vals[i]
                    if value is SUPPRESSED:
                        continue
                    counts = state.distinct_counts[i]
                    if counts is not None:
                        counts[value] = 1
                    agg.function.add(state.accumulators[i], value)
            else:
                if state.row_count <= 0:
                    raise ExecutionError(
                        f"retraction for empty group {key!r} in aggregation"
                    )
                state.row_count -= 1
                state.retained -= 1
                for i, agg in enumerate(aggs):
                    value = vals[i]
                    if value is SUPPRESSED:
                        continue
                    counts = state.distinct_counts[i]
                    if counts is not None:
                        counts.pop(value, None)
                    agg.function.retract(state.accumulators[i], value)
            emitted = state.emitted
            if state.row_count == 0:
                if emitted is not None:
                    append(Change(retract, emitted, ptime))
                del groups[key]
                continue
            row = self._output_row(key, state)
            if row == emitted:
                continue
            if emitted is not None:
                append(Change(retract, emitted, ptime))
            append(Change(insert, row, ptime))
            state.emitted = row

    def _apply_deltas(
        self, entries: tuple, ptime: Timestamp, out: list[Change]
    ) -> None:
        groups = self._groups
        aggs = self._aggs
        retract = ChangeKind.RETRACT
        insert = ChangeKind.INSERT
        append = out.append
        for key, rc_delta, frozen in entries:
            state = groups.get(key)
            if state is None:
                state = self._new_group()
                groups[key] = state
            new_count = state.row_count + rc_delta
            if new_count < 0:
                raise ExecutionError(
                    f"retraction for empty group {key!r} in aggregation"
                )
            state.row_count = new_count
            state.retained += rc_delta
            for i, agg in enumerate(aggs):
                counts = state.distinct_counts[i]
                if counts is not None:
                    adds, removes = frozen[i]
                    for value in adds:
                        seen = counts.get(value, 0)
                        counts[value] = seen + 1
                        if not seen:
                            agg.function.add(state.accumulators[i], value)
                    for value in removes:
                        seen = counts.get(value, 0)
                        if seen > 1:
                            counts[value] = seen - 1
                            continue
                        counts.pop(value, None)
                        agg.function.retract(state.accumulators[i], value)
                else:
                    agg.function.delta_apply(state.accumulators[i], frozen[i])
            emitted = state.emitted
            if new_count == 0:
                if emitted is not None:
                    append(Change(retract, emitted, ptime))
                del groups[key]
                continue
            row = self._output_row(key, state)
            if row == emitted:
                continue
            if emitted is not None:
                append(Change(retract, emitted, ptime))
            append(Change(insert, row, ptime))
            state.emitted = row

    # -- introspection ----------------------------------------------------------------

    def state_snapshot(self) -> dict:
        snapshot = super().state_snapshot()
        snapshot["agg_rows_in"] = self._agg_rows_in
        return snapshot

    def state_restore(self, snapshot: dict) -> None:
        super().state_restore(snapshot)
        self._agg_rows_in = snapshot.get("agg_rows_in", 0)

    def _extra_metrics(self) -> dict:
        extras = super()._extra_metrics()
        extras["agg_rows_in"] = self._agg_rows_in
        return extras

    def name(self) -> str:
        return (
            f"CombineAggregate({len(self._aggs)} aggs, "
            f"{len(self._groups)} groups)"
        )
