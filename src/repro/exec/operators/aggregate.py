"""Incremental grouped aggregation with retraction support.

The operator maintains per-group accumulators and, on every input
change, re-derives the group's output row.  If the row changed, it
emits a retraction of the previous version followed by an insertion of
the new one — the instantaneous-view changelog that EMIT STREAM renders
(Listing 9).  If the row is unchanged (e.g. a new bid that does not
beat the current MAX), nothing is emitted.

Event-time semantics (Extensions 1 & 2):

* inputs whose event-time grouping key is already covered by the input
  watermark belong to a **complete** group and are dropped as late
  data;
* when the watermark passes a group's event-time key, the group's
  accumulators are **freed** — this is the "state for an ongoing
  aggregation can be freed" lesson of Section 5, and what keeps state
  bounded on unbounded inputs (see ``bench_state_size``).
"""

from __future__ import annotations

import copy

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ...core.changelog import Change, ChangeKind
from ...core.errors import ExecutionError
from ...core.schema import Schema
from ...core.times import MIN_TIMESTAMP, Timestamp
from ...plan.logical import AggCall
from .base import Operator

__all__ = ["AggregateOperator"]


@dataclass
class _GroupState:
    accumulators: list[Any]
    distinct_counts: list[Optional[dict[Any, int]]]
    row_count: int = 0
    emitted: Optional[tuple[Any, ...]] = None
    # Count of retained input row occurrences (for state accounting).
    retained: int = field(default=0)


class AggregateOperator(Operator):
    """Keyed incremental aggregation over a changelog."""

    def __init__(
        self,
        schema: Schema,
        group_indices: Sequence[int],
        aggs: Sequence[AggCall],
        event_time_key_positions: Sequence[int],
        input_bounded: bool,
        allowed_lateness: int = 0,
    ):
        super().__init__(schema, arity=1)
        self._group_indices = tuple(group_indices)
        self._aggs = tuple(aggs)
        self._et_positions = tuple(event_time_key_positions)
        self._allowed_lateness = allowed_lateness
        self._groups: dict[tuple, _GroupState] = {}
        self._finalized_max: Timestamp = MIN_TIMESTAMP
        self._global = not self._group_indices

    # -- lifecycle ------------------------------------------------------------

    def on_open(self) -> list[Change]:
        if not self._global or () in self._groups:
            return []
        # A global aggregate over an empty input still has one row
        # (COUNT(*) = 0, SUM = NULL, ...), like any SQL engine.
        state = self._new_group()
        self._groups[()] = state
        row = self._output_row((), state)
        state.emitted = row
        return [Change(ChangeKind.INSERT, row, MIN_TIMESTAMP)]

    def _new_group(self) -> _GroupState:
        accumulators = [agg.function.create() for agg in self._aggs]
        distinct = [dict() if agg.distinct else None for agg in self._aggs]
        return _GroupState(accumulators, distinct)

    # -- data path ---------------------------------------------------------------

    def on_change(self, port: int, change: Change) -> list[Change]:
        values = change.values
        key = tuple(values[i] for i in self._group_indices)

        if self._is_late(key):
            self.late_dropped += 1
            return []

        state = self._groups.get(key)
        if state is None:
            state = self._new_group()
            self._groups[key] = state

        if change.is_insert:
            state.row_count += 1
            state.retained += 1
            self._accumulate(state, values, add=True)
        else:
            if state.row_count <= 0:
                raise ExecutionError(
                    f"retraction for empty group {key!r} in aggregation"
                )
            state.row_count -= 1
            state.retained -= 1
            self._accumulate(state, values, add=False)

        out: list[Change] = []
        if state.row_count == 0 and not self._global:
            if state.emitted is not None:
                out.append(Change(ChangeKind.RETRACT, state.emitted, change.ptime))
            del self._groups[key]
            return out

        row = self._output_row(key, state)
        if row == state.emitted:
            return []
        if state.emitted is not None:
            out.append(Change(ChangeKind.RETRACT, state.emitted, change.ptime))
        out.append(Change(ChangeKind.INSERT, row, change.ptime))
        state.emitted = row
        return out

    def on_batch(self, port: int, changes: Sequence[Change]) -> list[Change]:
        # Same transitions as on_change, with the per-change lookups
        # hoisted: one group-dict binding, one lateness cutoff (the
        # input watermark cannot move inside a batch, because watermark
        # events break batches), one output list.
        groups = self._groups
        group_indices = self._group_indices
        et_positions = self._et_positions
        lateness = self._allowed_lateness
        is_global = self._global
        wm = self.input_watermark if et_positions else MIN_TIMESTAMP
        retract = ChangeKind.RETRACT
        insert = ChangeKind.INSERT
        out: list[Change] = []
        append = out.append
        aggs = self._aggs
        if len(aggs) == 1 and not aggs[0].distinct:
            # The dominant shape (one non-DISTINCT aggregate, e.g.
            # COUNT(*) per window): inline the single accumulator's
            # add/retract/result instead of looping the agg list per
            # change.  Transitions are identical to the generic loop.
            agg0 = aggs[0]
            arg0 = agg0.arg_index
            add0 = agg0.function.add
            retract0 = agg0.function.retract
            result0 = agg0.function.result
            single_key = group_indices[0] if len(group_indices) == 1 else None
            for change in changes:
                values = change.values
                key = (
                    (values[single_key],)
                    if single_key is not None
                    else tuple(values[i] for i in group_indices)
                )
                if et_positions and all(
                    key[pos] + lateness <= wm for pos in et_positions
                ):
                    self.late_dropped += 1
                    continue
                state = groups.get(key)
                if state is None:
                    state = self._new_group()
                    groups[key] = state
                value = values[arg0] if arg0 is not None else None
                if change.kind is insert:
                    state.row_count += 1
                    state.retained += 1
                    add0(state.accumulators[0], value)
                else:
                    if state.row_count <= 0:
                        raise ExecutionError(
                            f"retraction for empty group {key!r} in aggregation"
                        )
                    state.row_count -= 1
                    state.retained -= 1
                    retract0(state.accumulators[0], value)
                emitted = state.emitted
                if state.row_count == 0 and not is_global:
                    if emitted is not None:
                        append(Change(retract, emitted, change.ptime))
                    del groups[key]
                    continue
                row = key + (result0(state.accumulators[0]),)
                if row == emitted:
                    continue
                if emitted is not None:
                    append(Change(retract, emitted, change.ptime))
                append(Change(insert, row, change.ptime))
                state.emitted = row
            return out
        for change in changes:
            values = change.values
            key = tuple(values[i] for i in group_indices)
            if et_positions and all(
                key[pos] + lateness <= wm for pos in et_positions
            ):
                self.late_dropped += 1
                continue
            state = groups.get(key)
            if state is None:
                state = self._new_group()
                groups[key] = state
            if change.kind is insert:
                state.row_count += 1
                state.retained += 1
                self._accumulate(state, values, add=True)
            else:
                if state.row_count <= 0:
                    raise ExecutionError(
                        f"retraction for empty group {key!r} in aggregation"
                    )
                state.row_count -= 1
                state.retained -= 1
                self._accumulate(state, values, add=False)
            if state.row_count == 0 and not is_global:
                if state.emitted is not None:
                    append(Change(retract, state.emitted, change.ptime))
                del groups[key]
                continue
            row = self._output_row(key, state)
            if row == state.emitted:
                continue
            if state.emitted is not None:
                append(Change(retract, state.emitted, change.ptime))
            append(Change(insert, row, change.ptime))
            state.emitted = row
        return out

    def _accumulate(self, state: _GroupState, values: tuple, add: bool) -> None:
        for i, agg in enumerate(self._aggs):
            value = values[agg.arg_index] if agg.arg_index is not None else None
            counts = state.distinct_counts[i]
            if counts is not None:
                # DISTINCT: only the first occurrence reaches the
                # accumulator; only the last removal retracts it.
                if add:
                    seen = counts.get(value, 0)
                    counts[value] = seen + 1
                    if seen:
                        continue
                else:
                    seen = counts.get(value, 0)
                    if seen > 1:
                        counts[value] = seen - 1
                        continue
                    counts.pop(value, None)
            if add:
                agg.function.add(state.accumulators[i], value)
            else:
                agg.function.retract(state.accumulators[i], value)

    def _output_row(self, key: tuple, state: _GroupState) -> tuple:
        results = tuple(
            agg.function.result(state.accumulators[i])
            for i, agg in enumerate(self._aggs)
        )
        return key + results

    # -- event time ------------------------------------------------------------------

    def _is_late(self, key: tuple) -> bool:
        """Whether this change belongs to a group declared complete.

        A group is complete once *all* of its event-time keys are
        covered by the watermark: for a window grouped by (wstart,
        wend) that is ``wend <= watermark``, since wstart < wend.  (A
        group keyed by wstart alone would otherwise complete while its
        window was still open; the planner's sibling-key injection
        guarantees wend is always present alongside wstart.)
        """
        if not self._et_positions:
            return False
        wm = self.input_watermark
        return all(
            key[pos] + self._allowed_lateness <= wm
            for pos in self._et_positions
        )

    def _group_complete_at(self, key: tuple, wm: Timestamp) -> bool:
        """With allowed lateness, state survives the watermark by that
        margin so late firings can still update the group (the "late"
        pane of the early/on-time/late pattern)."""
        return bool(self._et_positions) and all(
            key[pos] + self._allowed_lateness <= wm
            for pos in self._et_positions
        )

    def _on_watermark_advanced(self, merged: Timestamp, ptime: Timestamp) -> list[Change]:
        # Free the state of groups that just became complete.  Their
        # output rows are already current; late inputs will be dropped
        # by _is_late, so the accumulators are never needed again.
        if not self._et_positions or merged <= self._finalized_max:
            return []
        self._finalized_max = merged
        done = [
            key
            for key in self._groups
            if self._group_complete_at(key, merged)
        ]
        for key in done:
            del self._groups[key]
        return []

    # -- introspection ----------------------------------------------------------------

    def state_snapshot(self) -> dict:
        snapshot = super().state_snapshot()
        snapshot["groups"] = copy.deepcopy(self._groups)
        snapshot["finalized_max"] = copy.deepcopy(self._finalized_max)
        return snapshot

    def state_restore(self, snapshot: dict) -> None:
        super().state_restore(snapshot)
        self._groups = copy.deepcopy(snapshot["groups"])
        self._finalized_max = copy.deepcopy(snapshot["finalized_max"])

    def state_size(self) -> int:
        return sum(state.retained for state in self._groups.values())

    def _extra_metrics(self) -> dict:
        return {"groups": len(self._groups)}

    @property
    def group_count(self) -> int:
        return len(self._groups)

    def name(self) -> str:
        return f"Aggregate({len(self._aggs)} aggs, {len(self._groups)} groups)"
