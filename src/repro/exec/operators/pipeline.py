"""The fused filter/project operator.

One :class:`PipelineOperator` executes a whole chain of filter and
project steps (see :mod:`repro.plan.pipeline`).  With codegen enabled
the chain runs as a single generated loop — one per encoding: a row
loop producing ``Change`` objects and a columnar loop producing a
:class:`~repro.core.colbatch.ColumnarBatch` that shares untouched
columns with its input.  With codegen disabled (or unavailable) it
falls back to interpreting the compiled per-step closures, which is
still one operator hop instead of one per chain link.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...core.changelog import Change
from ...core.colbatch import ColumnarBatch
from ...core.schema import Schema
from ...plan import rex as rexmod
from .. import codegen
from .base import Operator

__all__ = ["PipelineOperator"]


class PipelineOperator(Operator):
    """Runs fused filter/project steps in one generated loop."""

    supports_columnar = True

    def __init__(
        self,
        schema: Schema,
        in_width: int,
        steps: Sequence[codegen.Step],
    ):
        super().__init__(schema, arity=1)
        self._steps = tuple(steps)
        self._in_width = in_width
        self._run_cols: Optional[callable] = None
        if codegen.ENABLED:
            self._run_rows, self._run_cols = codegen.compile_pipeline(
                self._steps, in_width
            )
        else:
            compiled = []
            for kind, payload in self._steps:
                if kind == "filter":
                    compiled.append((True, rexmod.compile_rex(payload)))
                else:
                    compiled.append(
                        (False, tuple(rexmod.compile_rex(e) for e in payload))
                    )
            self._compiled_steps = compiled
            self._run_rows = self._interp_rows

    def _interp_rows(self, changes: Sequence[Change]) -> list[Change]:
        out: list[Change] = []
        append = out.append
        steps = self._compiled_steps
        make = Change
        for change in changes:
            values = change.values
            dropped = False
            projected = False
            for is_filter, fns in steps:
                if is_filter:
                    if fns(values) is not True:
                        dropped = True
                        break
                else:
                    values = tuple(fn(values) for fn in fns)
                    projected = True
            if dropped:
                continue
            append(
                make(change.kind, values, change.ptime) if projected else change
            )
        return out

    def on_batch(self, port: int, changes: Sequence[Change]) -> list[Change]:
        return self._run_rows(changes)

    def on_change(self, port: int, change: Change) -> list[Change]:
        return self._run_rows((change,))

    def on_cols(self, port: int, batch: ColumnarBatch) -> ColumnarBatch:
        run_cols = self._run_cols
        if run_cols is not None:
            return run_cols(batch)
        return self._run_rows(batch.to_changes())

    def name(self) -> str:
        kinds = "+".join(kind for kind, _ in self._steps)
        return f"Pipeline({kinds})"
