"""Analytic OVER windows over event-time order.

Like MATCH_RECOGNIZE, OVER windows are defined over the *event-time
sequence* of each partition, so the operator buffers arrivals and
processes them only once the watermark proves their position in the
sequence is final.  Each stabilized row is emitted exactly once,
augmented with its running frame aggregates; the frame (the previous
``frame_rows`` rows, or the whole partition prefix) is maintained
incrementally with the same add/retract accumulators the grouped
aggregation uses.

State is the per-partition frame plus the not-yet-stable buffer — both
bounded by the frame size and the watermark lag respectively (the
B.2.3 point of tying OVER to watermarked attributes).
"""

from __future__ import annotations

import copy

from bisect import bisect_right, insort
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ...core.changelog import Change, ChangeKind
from ...core.errors import ExecutionError
from ...core.schema import Schema
from ...core.times import Timestamp
from ...plan.logical import AggCall
from .base import Operator

__all__ = ["OverOperator"]


@dataclass
class _PartitionState:
    #: (event_ts, seq, row) not yet stabilized by the watermark
    pending: list[tuple[Timestamp, int, tuple]] = field(default_factory=list)
    #: the current frame rows, oldest first
    frame: deque = field(default_factory=deque)
    accumulators: list[Any] = field(default_factory=list)


class OverOperator(Operator):
    """Watermark-sequenced running aggregates per partition."""

    def __init__(
        self,
        schema: Schema,
        partition_indices: Sequence[int],
        order_index: int,
        calls: Sequence[AggCall],
        frame_rows: Optional[int],
    ):
        super().__init__(schema, arity=1)
        self._partition = tuple(partition_indices)
        self._order = order_index
        self._calls = tuple(calls)
        self._frame_rows = frame_rows
        self._states: dict[tuple, _PartitionState] = {}
        self._seq = 0

    def _new_state(self) -> _PartitionState:
        state = _PartitionState()
        state.accumulators = [call.function.create() for call in self._calls]
        return state

    # -- data path ---------------------------------------------------------------

    def on_change(self, port: int, change: Change) -> list[Change]:
        values = change.values
        ts = values[self._order]
        if ts is None:
            raise ExecutionError("NULL ordering timestamp in OVER input")
        key = tuple(values[i] for i in self._partition)
        if change.is_retract:
            # An upstream aggregate may revise rows that have not been
            # sequenced yet; once a row is past the watermark and
            # emitted, it is final and cannot be taken back.
            state = self._states.get(key)
            if state is not None:
                for i, (_, _, pending_values) in enumerate(state.pending):
                    if pending_values == values:
                        del state.pending[i]
                        return []
            raise ExecutionError(
                "OVER input must be append-only once rows are past the "
                "watermark"
            )
        if ts <= self.input_watermark:
            self.late_dropped += 1
            return []
        state = self._states.get(key)
        if state is None:
            state = self._new_state()
            self._states[key] = state
        self._seq += 1
        insort(state.pending, (ts, self._seq, values))
        return []

    def _on_watermark_advanced(self, merged: Timestamp, ptime: Timestamp) -> list[Change]:
        out: list[Change] = []
        for key, state in self._states.items():
            cut = bisect_right(state.pending, (merged, float("inf"), ()))
            if not cut:
                continue
            stable = state.pending[:cut]
            del state.pending[:cut]
            for _, _, values in stable:
                self._push_row(state, values)
                results = tuple(
                    call.function.result(state.accumulators[i])
                    for i, call in enumerate(self._calls)
                )
                out.append(
                    Change(ChangeKind.INSERT, values + results, ptime)
                )
        return out

    def _push_row(self, state: _PartitionState, values: tuple) -> None:
        state.frame.append(values)
        for i, call in enumerate(self._calls):
            arg = values[call.arg_index] if call.arg_index is not None else None
            call.function.add(state.accumulators[i], arg)
        if (
            self._frame_rows is not None
            and len(state.frame) > self._frame_rows + 1
        ):
            evicted = state.frame.popleft()
            for i, call in enumerate(self._calls):
                arg = (
                    evicted[call.arg_index]
                    if call.arg_index is not None
                    else None
                )
                call.function.retract(state.accumulators[i], arg)

    # -- introspection ------------------------------------------------------------------

    def state_snapshot(self) -> dict:
        snapshot = super().state_snapshot()
        snapshot["states"] = copy.deepcopy(self._states)
        snapshot["seq"] = copy.deepcopy(self._seq)
        return snapshot

    def state_restore(self, snapshot: dict) -> None:
        super().state_restore(snapshot)
        self._states = copy.deepcopy(snapshot["states"])
        self._seq = copy.deepcopy(snapshot["seq"])

    def state_size(self) -> int:
        return sum(
            len(state.pending) + len(state.frame)
            for state in self._states.values()
        )

    def _extra_metrics(self) -> dict:
        return {
            "partitions": len(self._states),
            "pending_rows": sum(
                len(state.pending) for state in self._states.values()
            ),
        }

    def name(self) -> str:
        return f"Over({len(self._calls)} calls)"
