"""Semi and anti joins: ``expr [NOT] IN (SELECT col FROM ...)``.

A left row's membership in the output depends only on whether its probe
value currently has any matches in the subquery result — a match
*count*, maintained incrementally.  Left rows flip in and out of the
output as the right side changes; the emitted rows are the unmodified
left rows, so all downstream metadata (alignment, completion under a
bounded right side) survives.
"""

from __future__ import annotations

import copy

from collections import Counter
from typing import Any, Callable

from ...core.changelog import Change, ChangeKind
from ...core.errors import ExecutionError
from ...core.schema import Schema
from .base import Operator

__all__ = ["SemiJoinOperator"]


class SemiJoinOperator(Operator):
    """IN (semi) / NOT IN (anti) against a single-column subquery."""

    def __init__(
        self,
        schema: Schema,
        probe: Callable[[tuple], Any],
        negated: bool,
    ):
        super().__init__(schema, arity=2)
        self._probe = probe
        self._negated = negated
        # probe value -> Counter(left rows); None-valued probes are
        # stored but never emitted (IN is unknown for NULL)
        self._left: dict[Any, Counter] = {}
        # right value -> multiplicity
        self._right: Counter = Counter()

    def _passes(self, value: Any) -> bool:
        if value is None:
            return False  # NULL IN (...) / NULL NOT IN (...) is unknown
        present = self._right.get(value, 0) > 0
        return present != self._negated

    # -- data path ---------------------------------------------------------------

    def on_change(self, port: int, change: Change) -> list[Change]:
        if port == 0:
            return self._on_left(change)
        return self._on_right(change)

    def _on_left(self, change: Change) -> list[Change]:
        values = change.values
        probe = self._probe(values)
        bucket = self._left.setdefault(probe, Counter())
        if change.is_insert:
            bucket[values] += 1
        else:
            if bucket[values] <= 0:
                raise ExecutionError("semi-join retraction for unknown row")
            bucket[values] -= 1
            if bucket[values] == 0:
                del bucket[values]
                if not bucket:
                    del self._left[probe]
        if self._passes(probe):
            return [change]
        return []

    def _on_right(self, change: Change) -> list[Change]:
        (value,) = change.values
        if value is None:
            # NULL right values match nothing under the match-count
            # semantics (see SemiJoinNode's NULL note)
            return []
        previous = self._right[value]
        self._right[value] += change.delta
        if self._right[value] < 0:
            raise ExecutionError("semi-join right side retracted a missing row")
        if self._right[value] == 0:
            del self._right[value]
        became_present = previous == 0 and change.is_insert
        became_absent = previous == 1 and change.is_retract
        if not (became_present or became_absent):
            return []
        # 0 <-> >0 transition: flip the left rows probing this value
        bucket = self._left.get(value)
        if not bucket:
            return []
        appearing = became_present != self._negated
        kind = ChangeKind.INSERT if appearing else ChangeKind.RETRACT
        out: list[Change] = []
        for left_values, count in bucket.items():
            out.extend(
                Change(kind, left_values, change.ptime) for _ in range(count)
            )
        return out

    # -- introspection ------------------------------------------------------------------

    def state_snapshot(self) -> dict:
        snapshot = super().state_snapshot()
        snapshot["left"] = copy.deepcopy(self._left)
        snapshot["right"] = copy.deepcopy(self._right)
        return snapshot

    def state_restore(self, snapshot: dict) -> None:
        super().state_restore(snapshot)
        self._left = copy.deepcopy(snapshot["left"])
        self._right = copy.deepcopy(snapshot["right"])

    def state_size(self) -> int:
        return sum(
            sum(bucket.values()) for bucket in self._left.values()
        ) + sum(self._right.values())

    def _extra_metrics(self) -> dict:
        return {"right_values": len(self._right)}

    def name(self) -> str:
        return f"{'Anti' if self._negated else 'Semi'}Join"
