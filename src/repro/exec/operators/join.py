"""Incremental binary joins over changelogs.

The classic two-sided materialized join (Appendix B.2.3: "a join
operator fully materializes both input relations"): each side's live
rows are kept in keyed bags; a change on one side probes the other
side's bag and emits the delta of the join result.  Insert probes emit
inserts, retract probes emit retracts — the algebra of changelogs makes
the incremental maintenance uniform.

When the optimizer can prove the join condition bounds the two sides'
event times to within a window of each other (a *time-windowed join*,
e.g. NEXMark Q7's ``bidtime >= wend - 10min AND bidtime < wend``), it
supplies expiration metadata and the operator purges rows the watermark
has made unjoinable — the state-cleanup special case Section 5 calls
out.
"""

from __future__ import annotations

import copy

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from ...core.changelog import Change, ChangeKind
from ...core.schema import Schema
from ...core.times import Duration, Timestamp
from .base import Operator

__all__ = ["JoinOperator", "TimeBound"]


@dataclass(frozen=True)
class TimeBound:
    """State-expiry metadata for one join side.

    ``time_index`` is the event time column (side-local ordinal) and
    ``slack`` how long past the watermark the row may still join: the
    row expires when ``watermark >= row[time_index] + slack``.
    """

    time_index: int
    slack: Duration


class JoinOperator(Operator):
    """INNER/CROSS join with two-sided materialized state."""

    def __init__(
        self,
        schema: Schema,
        left_width: int,
        condition: Optional[Callable[[tuple], Any]],
        left_key: Optional[tuple[int, ...]] = None,
        right_key: Optional[tuple[int, ...]] = None,
        left_bound: Optional[TimeBound] = None,
        right_bound: Optional[TimeBound] = None,
    ):
        super().__init__(schema, arity=2)
        self._left_width = left_width
        self._condition = condition
        # Hash keys: equal-length index tuples into each side's rows.
        # Without equi-keys everything lands in one bucket.
        self._keys = (left_key or (), right_key or ())
        self._state: tuple[dict, dict] = ({}, {})
        self._bounds = (left_bound, right_bound)

    # -- data path ---------------------------------------------------------------

    def on_change(self, port: int, change: Change) -> list[Change]:
        values = change.values
        key = tuple(values[i] for i in self._keys[port])
        side = self._state[port]

        bucket: Counter = side.get(key)
        if change.is_insert:
            if bucket is None:
                bucket = Counter()
                side[key] = bucket
            bucket[values] += 1
        else:
            if bucket is None or bucket[values] <= 0:
                # The matching insert was expired by the watermark; the
                # retraction has nothing to undo.
                self.expired_rows += 1
                return []
            bucket[values] -= 1
            if bucket[values] == 0:
                del bucket[values]
                if not bucket:
                    del side[key]

        other = self._state[1 - port]
        matches = other.get(key)
        if not matches:
            return []

        out: list[Change] = []
        for other_values, count in matches.items():
            if port == 0:
                combined = values + other_values
            else:
                combined = other_values + values
            if self._condition is not None and self._condition(combined) is not True:
                continue
            out.extend(
                Change(change.kind, combined, change.ptime) for _ in range(count)
            )
        return out

    def on_batch(self, port: int, changes: Sequence[Change]) -> list[Change]:
        # The on_change transitions in a tight loop: both sides' state
        # dicts, the key indices, and the condition are bound once for
        # the whole batch instead of re-fetched per probe.
        key_indices = self._keys[port]
        side = self._state[port]
        other = self._state[1 - port]
        condition = self._condition
        left = port == 0
        out: list[Change] = []
        append = out.append
        extend = out.extend
        for change in changes:
            values = change.values
            key = tuple(values[i] for i in key_indices)
            bucket = side.get(key)
            if change.is_insert:
                if bucket is None:
                    bucket = Counter()
                    side[key] = bucket
                bucket[values] += 1
            else:
                if bucket is None or bucket[values] <= 0:
                    self.expired_rows += 1
                    continue
                bucket[values] -= 1
                if bucket[values] == 0:
                    del bucket[values]
                    if not bucket:
                        del side[key]
            matches = other.get(key)
            if not matches:
                continue
            kind, ptime = change.kind, change.ptime
            for other_values, count in matches.items():
                combined = (
                    values + other_values if left else other_values + values
                )
                if condition is not None and condition(combined) is not True:
                    continue
                if count == 1:
                    append(Change(kind, combined, ptime))
                else:
                    extend(Change(kind, combined, ptime) for _ in range(count))
        return out

    # -- watermark-driven state expiry -----------------------------------------------

    def _on_watermark_advanced(self, merged: Timestamp, ptime: Timestamp) -> list[Change]:
        for port in (0, 1):
            bound = self._bounds[port]
            if bound is None:
                continue
            side = self._state[port]
            empty_keys = []
            for key, bucket in side.items():
                doomed = [
                    values
                    for values in bucket
                    if values[bound.time_index] + bound.slack <= merged
                ]
                for values in doomed:
                    self.expired_rows += bucket.pop(values)
                if not bucket:
                    empty_keys.append(key)
            for key in empty_keys:
                del side[key]
        return []

    # -- introspection ---------------------------------------------------------------

    def state_snapshot(self) -> dict:
        snapshot = super().state_snapshot()
        snapshot["state"] = copy.deepcopy(self._state)
        return snapshot

    def state_restore(self, snapshot: dict) -> None:
        super().state_restore(snapshot)
        self._state = copy.deepcopy(snapshot["state"])

    def state_size(self) -> int:
        return sum(
            sum(bucket.values())
            for side in self._state
            for bucket in side.values()
        )

    def name(self) -> str:
        return f"Join(state={self.state_size()} rows)"
