"""Physical operator protocol.

Operators process *changelogs*: every data message is a
:class:`~repro.core.changelog.Change` (an insert or retract of one row
occurrence), mirroring how Flink's retraction streams drive its SQL
runtime (Appendix B.2.3).  Watermarks flow as separate control
messages.

The contract:

* ``on_open`` runs once before any input and may emit initial rows
  (e.g. the empty-input row of a global aggregate).
* ``on_change(port, change)`` consumes one change on an input port and
  returns the resulting output changes, in order.
* ``on_watermark(port, value, ptime)`` records an input watermark
  advance and returns ``(changes, output_watermark)`` — the changes the
  advance triggered plus the operator's new output watermark (``None``
  if unchanged).  Output watermarks must be monotonic; multi-input
  operators merge by minimum (the hold-back rule of Section 5).
* ``state_size()`` reports retained row count, powering the paper's
  "reasoning about the size of query state" lesson and the state
  benchmarks.

Observability is part of the contract, not an add-on: the executor
drives operators through the ``process_*`` wrappers defined here, which
count rows in/out around the ``on_*`` hooks, and every operator carries
the uniform ``late_dropped``/``expired_rows`` counters.  ``metrics()``
assembles the whole block, so downstream reporting iterates operators
instead of maintaining per-class ``isinstance`` allowlists (the pattern
that silently lost OVER and MATCH_RECOGNIZE late drops).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ...core.changelog import Change
from ...core.schema import Schema
from ...core.times import MIN_TIMESTAMP, Timestamp
from ...core.watermark import merge_watermarks
from ...obs.metrics import OperatorCounters, watermark_lag

__all__ = ["Operator"]


class Operator:
    """Base class for physical operators."""

    #: Operators that consume :class:`~repro.core.colbatch.ColumnarBatch`
    #: payloads directly set this True and implement :meth:`on_cols`.
    #: For everything else the executor converts the batch back to rows
    #: at the operator boundary.
    supports_columnar = False

    def __init__(self, schema: Schema, arity: int):
        self.schema = schema
        self.arity = arity
        self._input_wms: list[Timestamp] = [MIN_TIMESTAMP] * arity
        self._output_wm: Timestamp = MIN_TIMESTAMP
        self._timer_sink: Optional[Callable[[Timestamp, "Operator"], None]] = None
        self.counters = OperatorCounters(arity)
        #: rows rejected because the watermark already declared their
        #: position complete; every operator has the counter, whether or
        #: not it ever drops.
        self.late_dropped = 0
        #: state rows purged (or arrivals ignored) because the watermark
        #: proved them unreachable.
        self.expired_rows = 0

    # -- processing-time timers -----------------------------------------------

    def bind_timers(self, sink: Callable[[Timestamp, "Operator"], None]) -> None:
        """Connect this operator to the executor's timer service."""
        self._timer_sink = sink

    def register_timer(self, when: Timestamp) -> None:
        """Request an ``on_timer`` callback at processing time ``when``.

        Timers power operators whose output changes with the mere
        passage of processing time — the time-progressing expressions of
        Section 8 — rather than with new input.
        """
        if self._timer_sink is not None:
            self._timer_sink(when, self)

    def on_timer(self, when: Timestamp) -> list[Change]:
        """Handle a timer firing; returns emitted changes."""
        return []

    # -- data path ----------------------------------------------------------

    def on_open(self) -> list[Change]:
        """Emit any initial output (before the first input arrives)."""
        return []

    def on_change(self, port: int, change: Change) -> list[Change]:
        raise NotImplementedError

    def on_batch(self, port: int, changes: Sequence[Change]) -> list[Change]:
        """Consume a run of same-instant changes on one port.

        The default delegates to :meth:`on_change` per change and
        concatenates, so the batch output is *by construction* the
        ordered concatenation of the per-change outputs — the invariant
        the executor's byte-identical batching mode rests on.  Hot
        operators override this with a vectorized loop that must
        preserve exactly that concatenation.
        """
        on_change = self.on_change
        out: list[Change] = []
        for change in changes:
            out.extend(on_change(port, change))
        return out

    # -- counted entry points -------------------------------------------------
    #
    # The executor drives operators through these wrappers so the
    # metrics layer sees every row on every port of every operator —
    # counting lives in exactly one place and cannot drift per class.

    def process_open(self) -> list[Change]:
        out = self.on_open()
        self.counters.record_out(out)
        return out

    def process_change(self, port: int, change: Change) -> list[Change]:
        self.counters.record_in(port, change)
        out = self.on_change(port, change)
        self.counters.record_out(out)
        return out

    def process_batch(self, port: int, changes: Sequence[Change]) -> list[Change]:
        """Counted batch entry point; counters land exactly as if the
        batch had been delivered change by change."""
        if len(changes) == 1:
            return self.process_change(port, changes[0])
        self.counters.record_in_batch(port, changes)
        out = self.on_batch(port, changes)
        self.counters.record_out(out)
        return out

    def on_cols(self, port: int, batch):
        """Consume a columnar batch; only called when
        ``supports_columnar`` is True.  May return either a
        :class:`~repro.core.colbatch.ColumnarBatch` or a row list —
        the executor handles both payload encodings downstream."""
        raise NotImplementedError

    def process_cols(self, port: int, batch):
        """Counted columnar entry point; counters land exactly as if
        the batch had been delivered change by change."""
        counters = self.counters
        counters.record_in_cols(port, batch)
        out = self.on_cols(port, batch)
        if isinstance(out, list):
            counters.record_out(out)
        else:
            counters.record_out_cols(out)
        return out

    def process_watermark(
        self, port: int, value: Timestamp, ptime: Timestamp
    ) -> tuple[list[Change], Optional[Timestamp]]:
        changes, out_wm = self.on_watermark(port, value, ptime)
        self.counters.record_out(changes)
        if out_wm is not None:
            self.counters.record_wm_advance()
        return changes, out_wm

    def process_timer(self, when: Timestamp) -> list[Change]:
        out = self.on_timer(when)
        self.counters.record_out(out)
        return out

    # -- watermark path -------------------------------------------------------

    def on_watermark(
        self, port: int, value: Timestamp, ptime: Timestamp
    ) -> tuple[list[Change], Optional[Timestamp]]:
        """Record an input watermark; default merges inputs by minimum."""
        self._input_wms[port] = value
        merged = merge_watermarks(self._input_wms)
        changes = self._on_watermark_advanced(merged, ptime)
        if merged > self._output_wm:
            self._output_wm = merged
            return changes, merged
        return changes, None

    def _on_watermark_advanced(
        self, merged: Timestamp, ptime: Timestamp
    ) -> list[Change]:
        """Hook for watermark-triggered work (state GC, session closes)."""
        return []

    @property
    def input_watermark(self) -> Timestamp:
        """The merged watermark over all input ports."""
        return merge_watermarks(self._input_wms)

    @property
    def output_watermark(self) -> Timestamp:
        return self._output_wm

    # -- checkpointing ------------------------------------------------------------

    def state_snapshot(self) -> dict:
        """Picklable snapshot of this operator's state.

        The base snapshot covers the watermark bookkeeping; stateful
        subclasses extend it.  Together with the executor's own
        bookkeeping this gives consistent stop-and-resume, the
        checkpoint/recovery capability Appendix B.2.1 describes for
        Flink.
        """
        return {
            "input_wms": list(self._input_wms),
            "output_wm": self._output_wm,
            "counters": self.counters.snapshot(),
            "late_dropped": self.late_dropped,
            "expired_rows": self.expired_rows,
        }

    def state_restore(self, snapshot: dict) -> None:
        """Restore state captured by :meth:`state_snapshot`."""
        self._input_wms = list(snapshot["input_wms"])
        self._output_wm = snapshot["output_wm"]
        self.counters.restore(snapshot["counters"])
        self.late_dropped = snapshot["late_dropped"]
        self.expired_rows = snapshot["expired_rows"]

    # -- introspection ---------------------------------------------------------

    def state_size(self) -> int:
        """Number of row occurrences retained in operator state."""
        return 0

    def metrics(self) -> dict:
        """The operator's full metric block, uniformly shaped.

        Standard keys are identical for every operator; subclasses
        append class-specific gauges via :meth:`_extra_metrics`.
        """
        counters = self.counters
        block = {
            "operator": self.name(),
            "type": type(self).__name__,
            "rows_in": list(counters.rows_in),
            "retracts_in": list(counters.retracts_in),
            "rows_out": counters.rows_out,
            "retracts_out": counters.retracts_out,
            "late_dropped": self.late_dropped,
            "expired_rows": self.expired_rows,
            "state_rows": self.state_size(),
            "peak_state_rows": counters.peak_state_rows,
            "watermark_lag": watermark_lag(self.input_watermark, self._output_wm),
            "wm_advances": counters.wm_advances,
            "changes_coalesced": counters.changes_coalesced,
        }
        block.update(self._extra_metrics())
        return block

    def _extra_metrics(self) -> dict:
        """Class-specific gauges merged into :meth:`metrics`."""
        return {}

    def name(self) -> str:
        return type(self).__name__
