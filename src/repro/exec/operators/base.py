"""Physical operator protocol.

Operators process *changelogs*: every data message is a
:class:`~repro.core.changelog.Change` (an insert or retract of one row
occurrence), mirroring how Flink's retraction streams drive its SQL
runtime (Appendix B.2.3).  Watermarks flow as separate control
messages.

The contract:

* ``on_open`` runs once before any input and may emit initial rows
  (e.g. the empty-input row of a global aggregate).
* ``on_change(port, change)`` consumes one change on an input port and
  returns the resulting output changes, in order.
* ``on_watermark(port, value, ptime)`` records an input watermark
  advance and returns ``(changes, output_watermark)`` — the changes the
  advance triggered plus the operator's new output watermark (``None``
  if unchanged).  Output watermarks must be monotonic; multi-input
  operators merge by minimum (the hold-back rule of Section 5).
* ``state_size()`` reports retained row count, powering the paper's
  "reasoning about the size of query state" lesson and the state
  benchmarks.
"""

from __future__ import annotations

from typing import Callable, Optional

from ...core.changelog import Change
from ...core.schema import Schema
from ...core.times import MIN_TIMESTAMP, Timestamp
from ...core.watermark import merge_watermarks

__all__ = ["Operator"]


class Operator:
    """Base class for physical operators."""

    def __init__(self, schema: Schema, arity: int):
        self.schema = schema
        self.arity = arity
        self._input_wms: list[Timestamp] = [MIN_TIMESTAMP] * arity
        self._output_wm: Timestamp = MIN_TIMESTAMP
        self._timer_sink: Optional[Callable[[Timestamp, "Operator"], None]] = None

    # -- processing-time timers -----------------------------------------------

    def bind_timers(self, sink: Callable[[Timestamp, "Operator"], None]) -> None:
        """Connect this operator to the executor's timer service."""
        self._timer_sink = sink

    def register_timer(self, when: Timestamp) -> None:
        """Request an ``on_timer`` callback at processing time ``when``.

        Timers power operators whose output changes with the mere
        passage of processing time — the time-progressing expressions of
        Section 8 — rather than with new input.
        """
        if self._timer_sink is not None:
            self._timer_sink(when, self)

    def on_timer(self, when: Timestamp) -> list[Change]:
        """Handle a timer firing; returns emitted changes."""
        return []

    # -- data path ----------------------------------------------------------

    def on_open(self) -> list[Change]:
        """Emit any initial output (before the first input arrives)."""
        return []

    def on_change(self, port: int, change: Change) -> list[Change]:
        raise NotImplementedError

    # -- watermark path -------------------------------------------------------

    def on_watermark(
        self, port: int, value: Timestamp, ptime: Timestamp
    ) -> tuple[list[Change], Optional[Timestamp]]:
        """Record an input watermark; default merges inputs by minimum."""
        self._input_wms[port] = value
        merged = merge_watermarks(self._input_wms)
        changes = self._on_watermark_advanced(merged, ptime)
        if merged > self._output_wm:
            self._output_wm = merged
            return changes, merged
        return changes, None

    def _on_watermark_advanced(
        self, merged: Timestamp, ptime: Timestamp
    ) -> list[Change]:
        """Hook for watermark-triggered work (state GC, session closes)."""
        return []

    @property
    def input_watermark(self) -> Timestamp:
        """The merged watermark over all input ports."""
        return merge_watermarks(self._input_wms)

    @property
    def output_watermark(self) -> Timestamp:
        return self._output_wm

    # -- checkpointing ------------------------------------------------------------

    def state_snapshot(self) -> dict:
        """Picklable snapshot of this operator's state.

        The base snapshot covers the watermark bookkeeping; stateful
        subclasses extend it.  Together with the executor's own
        bookkeeping this gives consistent stop-and-resume, the
        checkpoint/recovery capability Appendix B.2.1 describes for
        Flink.
        """
        return {
            "input_wms": list(self._input_wms),
            "output_wm": self._output_wm,
        }

    def state_restore(self, snapshot: dict) -> None:
        """Restore state captured by :meth:`state_snapshot`."""
        self._input_wms = list(snapshot["input_wms"])
        self._output_wm = snapshot["output_wm"]

    # -- introspection ---------------------------------------------------------

    def state_size(self) -> int:
        """Number of row occurrences retained in operator state."""
        return 0

    def name(self) -> str:
        return type(self).__name__
