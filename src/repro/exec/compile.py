"""Translate a logical plan into a physical operator tree."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import PlanError
from ..plan import rex
from ..plan.match import MatchRecognizeNode
from ..plan.pipeline import PipelineNode
from ..plan.logical import (
    AggregateNode,
    FilterNode,
    TemporalFilterNode,
    TemporalJoinNode,
    JoinKind,
    JoinNode,
    LogicalNode,
    OverNode,
    PartialAggregateNode,
    ProjectNode,
    ScanNode,
    SemiJoinNode,
    SetOpNode,
    SortNode,
    UnionNode,
    ValuesNode,
    WindowKind,
    WindowNode,
)
from .operators.aggregate import AggregateOperator, PartialAggregateOperator
from .operators.base import Operator
from .operators.join import JoinOperator, TimeBound
from .operators.outer_join import OuterJoinOperator
from .operators.semi_join import SemiJoinOperator
from .operators.session import SessionOperator
from .operators.setop import SetOpOperator
from .operators.stateless import (
    FilterOperator,
    ProjectOperator,
    ScanOperator,
    SortOperator,
    UnionOperator,
)
from .operators.match import MatchRecognizeOperator
from .operators.over import OverOperator
from .operators.pipeline import PipelineOperator
from .operators.temporal import TemporalFilterOperator
from .operators.temporal_join import TemporalJoinOperator
from .operators.window import HopOperator, TumbleOperator

__all__ = ["CompiledPlan", "build_operator", "compile_plan"]


@dataclass
class CompiledPlan:
    """The physical tree plus the wiring the executor needs."""

    root: Operator
    #: every operator, children before parents (post-order)
    operators: list[Operator]
    #: leaf scans in plan (left-to-right) order, with their source names
    leaves: list[ScanOperator]
    #: id(op) -> (parent op, input port)
    parents: dict[int, tuple[Operator, int]] = field(default_factory=dict)
    #: inline rows for ValuesNode leaves, keyed by operator identity
    values_rows: dict[int, tuple] = field(default_factory=dict)
    #: (logical node, operator) pairs in post-order — the correlation
    #: the DAG executor's subplan grafting is built on
    node_ops: list[tuple[LogicalNode, Operator]] = field(default_factory=list)


def compile_plan(root: LogicalNode, allowed_lateness: int = 0) -> CompiledPlan:
    """Compile the logical tree rooted at ``root``.

    ``allowed_lateness`` extends every watermark-driven decision (late
    dropping, state retention, join-state expiry) by the given slack —
    the configurable lateness Extension 2 alludes to.
    """
    compiled = CompiledPlan(root=None, operators=[], leaves=[])  # type: ignore[arg-type]
    compiled.root = _compile(root, compiled, allowed_lateness)
    return compiled


def _compile(node: LogicalNode, out: CompiledPlan, lateness: int) -> Operator:
    children = [_compile(child, out, lateness) for child in node.inputs]
    op = build_operator(node, children, lateness)
    for port, child in enumerate(children):
        out.parents[id(child)] = (op, port)
    out.operators.append(op)
    out.node_ops.append((node, op))
    if isinstance(op, ScanOperator):
        out.leaves.append(op)
    if isinstance(node, ValuesNode):
        out.values_rows[id(op)] = node.rows
    return op


def build_operator(
    node: LogicalNode, children: list[Operator], lateness: int
) -> Operator:
    """Build the physical operator for one logical node (children given)."""
    if isinstance(node, ScanNode):
        return ScanOperator(node.schema, node.name)
    if isinstance(node, ValuesNode):
        # Values relations are fed by the executor like a tiny bounded
        # source; the scan operator is just the entry point.
        return ScanOperator(node.schema, f"$values{id(node)}")
    if isinstance(node, FilterNode):
        (child,) = children
        return FilterOperator(node.schema, rex.compile_rex(node.condition))
    if isinstance(node, PipelineNode):
        # Fused Filter/Project chain (columnar mode); the operator runs
        # the whole chain in one generated loop.
        return PipelineOperator(
            node.schema, len(node.input.schema), node.steps
        )
    if isinstance(node, TemporalFilterNode):
        return TemporalFilterOperator(node.schema, node.bounds)
    if isinstance(node, ProjectNode):
        return ProjectOperator(node.schema, [rex.compile_rex(e) for e in node.exprs])
    if isinstance(node, WindowNode):
        if node.kind is WindowKind.TUMBLE:
            return TumbleOperator(node.schema, node.timecol, node.size, node.offset)
        if node.kind is WindowKind.HOP:
            assert node.slide is not None
            return HopOperator(
                node.schema, node.timecol, node.size, node.slide, node.offset
            )
        return SessionOperator(
            node.schema,
            node.timecol,
            node.size,
            node.key_indices,
            allowed_lateness=lateness,
        )
    if isinstance(node, PartialAggregateNode):
        # Checked before AggregateNode only by convention; the classes
        # are unrelated.  ``delta_mode`` is stamped on the node by the
        # sharded runtime (it tracks the flow's coalesce_updates flag).
        return PartialAggregateOperator(
            node.schema,
            node.group_indices,
            node.aggs,
            node.event_time_key_positions,
            node.input.bounded,
            allowed_lateness=lateness,
            delta_mode=getattr(node, "delta_mode", False),
        )
    if isinstance(node, AggregateNode):
        return AggregateOperator(
            node.schema,
            node.group_indices,
            node.aggs,
            node.event_time_key_positions,
            node.input.bounded,
            allowed_lateness=lateness,
        )
    if isinstance(node, OverNode):
        return OverOperator(
            node.schema,
            node.partition_indices,
            node.order_index,
            node.calls,
            node.frame_rows,
        )
    if isinstance(node, MatchRecognizeNode):
        return MatchRecognizeOperator(
            node.schema,
            node.partition_indices,
            node.order_index,
            node.measures,
            node.pattern,
            node.defines,
            node.after_match,
        )
    if isinstance(node, TemporalJoinNode):
        return TemporalJoinOperator(
            node.schema,
            node.left_time_index,
            node.right_time_index,
            node.left_keys,
            node.right_keys,
        )
    if isinstance(node, JoinNode):
        condition = (
            rex.compile_rex(node.condition) if node.condition is not None else None
        )
        if node.kind in (JoinKind.LEFT, JoinKind.FULL):
            return OuterJoinOperator(
                node.schema,
                left_width=len(node.left.schema),
                right_width=len(node.right.schema),
                condition=condition,
                left_key=node.hash_left or None,
                right_key=node.hash_right or None,
                outer=(True, node.kind is JoinKind.FULL),
            )
        if node.kind not in (JoinKind.INNER, JoinKind.CROSS):
            raise PlanError(f"{node.kind.value} JOIN execution is not supported yet")
        left_bound = (
            TimeBound(node.expire_left[0], node.expire_left[1] + lateness)
            if node.expire_left is not None
            else None
        )
        right_bound = (
            TimeBound(node.expire_right[0], node.expire_right[1] + lateness)
            if node.expire_right is not None
            else None
        )
        return JoinOperator(
            node.schema,
            left_width=len(node.left.schema),
            condition=condition,
            left_key=node.hash_left or None,
            right_key=node.hash_right or None,
            left_bound=left_bound,
            right_bound=right_bound,
        )
    if isinstance(node, SemiJoinNode):
        return SemiJoinOperator(
            node.schema,
            probe=rex.compile_rex(node.left_expr),
            negated=node.negated,
        )
    if isinstance(node, SetOpNode):
        return SetOpOperator(node.schema, node.op, node.all)
    if isinstance(node, UnionNode):
        return UnionOperator(node.schema, arity=len(node.inputs))
    if isinstance(node, SortNode):
        return SortOperator(node.schema)
    raise PlanError(f"cannot compile {type(node).__name__}")
