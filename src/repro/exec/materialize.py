"""Materialization control: rendering a result TVR per its EMIT clause.

This module implements Extensions 4-7 of the paper.  The dataflow
produces the result as a raw changelog plus a watermark track; the
functions here derive from it:

* :func:`stream_view` — the ``EMIT STREAM`` rendering: a relation with
  the three metadata columns ``undo`` (retraction marker), ``ptime``
  (processing-time offset of the change) and ``ver`` (revision index
  within the row's event-time grouping), exactly as in Listing 9.
* :func:`table_view` — the point-in-time snapshot, optionally filtered
  to complete rows (``EMIT AFTER WATERMARK``, Listings 10-12) or
  coalesced per period (``EMIT AFTER DELAY``, Listing 14).

The three delay transforms compose with either rendering because each
produces just another changelog — a TVR in its own right, which is the
paper's central point.
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.changelog import Change, ChangeKind, diff_bags
from ..core.emit import EmitSpec
from ..core.errors import ExecutionError
from ..core.relation import Relation
from ..core.schema import Column, Schema, SqlType
from ..core.times import MAX_TIMESTAMP, MIN_TIMESTAMP, Duration, Timestamp
from ..core.watermark import WatermarkTrack
from .executor import RunResult

__all__ = [
    "StreamChange",
    "DeltaChange",
    "stream_schema",
    "stream_view",
    "delta_view",
    "table_view",
    "apply_emit_delays",
]


@dataclass(frozen=True)
class StreamChange:
    """One row of an ``EMIT STREAM`` result."""

    values: tuple
    undo: bool
    ptime: Timestamp
    ver: int

    def as_tuple(self) -> tuple:
        return self.values + ("undo" if self.undo else "", self.ptime, self.ver)


def stream_schema(schema: Schema) -> Schema:
    """The result schema extended with undo/ptime/ver metadata columns."""
    return schema.degraded().with_columns(
        [
            Column("undo", SqlType.STRING),
            Column("ptime", SqlType.TIMESTAMP),
            Column("ver", SqlType.INT),
        ]
    )


# ---------------------------------------------------------------------------
# delay transforms: changelog -> changelog
# ---------------------------------------------------------------------------


def _complete(
    values: tuple, completion: Optional[tuple[int, ...]], wm: Timestamp
) -> bool:
    """Whether a row is complete under watermark ``wm`` (Extension 5).

    With no completion columns, completeness requires a fully consumed
    input (the watermark at +inf) — e.g. a recorded table.
    """
    if completion is None:
        return wm >= MAX_TIMESTAMP
    return all(values[i] <= wm for i in completion)


def _after_watermark(
    changes: Sequence[Change],
    watermarks: WatermarkTrack,
    completion: Optional[tuple[int, ...]],
) -> list[Change]:
    """Suppress speculative rows; emit each row once its input completes.

    Rows that appear and are retracted again before their grouping is
    complete never surface; a surviving row is emitted at the
    processing time the watermark passed its completion timestamps
    (Listing 13's ``ptime`` semantics).
    """
    timeline = _merge_timeline(changes, watermarks)
    live: Counter = Counter()
    emitted: Counter = Counter()
    out: list[Change] = []
    wm = MIN_TIMESTAMP
    for ptime, kind, payload in timeline:
        if kind == "wm":
            wm = payload
            for values in list(live):
                pending = live[values] - emitted.get(values, 0)
                if pending > 0 and _complete(values, completion, wm):
                    out.extend(
                        Change(ChangeKind.INSERT, values, ptime)
                        for _ in range(pending)
                    )
                    emitted[values] += pending
            continue
        change: Change = payload
        values = change.values
        if change.is_insert:
            live[values] += 1
            if _complete(values, completion, wm):
                out.append(Change(ChangeKind.INSERT, values, ptime))
                emitted[values] += 1
        else:
            live[values] -= 1
            if live[values] == 0:
                del live[values]
            if emitted.get(values, 0) > 0:
                out.append(Change(ChangeKind.RETRACT, values, ptime))
                emitted[values] -= 1
    return out


def _after_delay(
    changes: Sequence[Change],
    delay: Duration,
    emit_keys: tuple[int, ...],
    until: Timestamp,
    watermarks: Optional[WatermarkTrack] = None,
    completion: Optional[tuple[int, ...]] = None,
) -> list[Change]:
    """Coalesce updates per aggregate with period ``delay`` (Extension 6).

    A change to an aggregate arms a timer ``delay`` later (if none is
    pending); when the timer fires, the difference between the
    aggregate's last materialized rows and its current rows is emitted.
    When ``watermarks``/``completion`` are supplied, completeness also
    triggers materialization — Extension 7's combined form, the
    early/on-time/late pattern.
    """
    key_of = lambda values: tuple(values[i] for i in emit_keys)  # noqa: E731
    current: dict[tuple, Counter] = {}
    materialized: dict[tuple, Counter] = {}
    timers: list[tuple[Timestamp, int, tuple]] = []  # (deadline, seq, key)
    pending: set[tuple] = set()
    finalized: set[tuple] = set()
    seq = 0
    out: list[Change] = []

    def fire(key: tuple, at: Timestamp) -> None:
        before = materialized.get(key, Counter())
        after = current.get(key, Counter())
        out.extend(diff_bags(before, after, at))
        materialized[key] = Counter(after)
        pending.discard(key)

    def fire_due(now: Timestamp, inclusive: bool) -> None:
        while timers and (
            timers[0][0] < now or (inclusive and timers[0][0] == now)
        ):
            deadline, _, key = heapq.heappop(timers)
            if key in pending:
                fire(key, deadline)

    timeline = _merge_timeline(changes, watermarks) if watermarks else [
        (c.ptime, "change", c) for c in changes
    ]
    # Process the timeline one instant at a time: a timer due at instant
    # p fires only after ALL of p's changes are applied (Listing 14: the
    # 8:18 bid is part of the 8:18 firing), while timers due earlier
    # fire at their own deadline first.
    i = 0
    while i < len(timeline):
        ptime = timeline[i][0]
        fire_due(ptime, inclusive=False)
        while i < len(timeline) and timeline[i][0] == ptime:
            _, kind, payload = timeline[i]
            i += 1
            if kind == "wm":
                # Extension 7: completeness materializes on time.
                wm = payload
                if completion is None:
                    continue
                for key, bag in list(current.items()):
                    if key in finalized or key not in pending:
                        continue
                    rows = list(bag)
                    if rows and all(
                        _complete(values, completion, wm) for values in rows
                    ):
                        fire(key, ptime)
                        finalized.add(key)
                continue
            change: Change = payload
            key = key_of(change.values)
            bag = current.setdefault(key, Counter())
            bag[change.values] += change.delta
            if bag[change.values] == 0:
                del bag[change.values]
            if key not in pending and bag != materialized.get(key, Counter()):
                pending.add(key)
                heapq.heappush(timers, (change.ptime + delay, seq, key))
                seq += 1
        fire_due(ptime, inclusive=True)
    # Drain remaining timers up to the horizon.
    fire_due(until, inclusive=True)
    return out


def _merge_timeline(
    changes: Sequence[Change], watermarks: Optional[WatermarkTrack]
) -> list[tuple[Timestamp, str, object]]:
    """Interleave changes and watermark steps in processing-time order.

    At equal instants, changes come first: a watermark observed at
    processing time *p* covers everything that arrived at *p*.
    """
    timeline: list[tuple[Timestamp, int, str, object]] = []
    for i, change in enumerate(changes):
        timeline.append((change.ptime, 0, "change", change))
    if watermarks is not None:
        for i, (ptime, value) in enumerate(watermarks.as_pairs()):
            timeline.append((ptime, 1, "wm", value))
    timeline.sort(key=lambda item: (item[0], item[1]))
    return [(pt, kind, payload) for pt, _, kind, payload in timeline]


def apply_emit_delays(
    result: RunResult,
    emit: EmitSpec,
    completion: Optional[tuple[int, ...]],
    emit_keys: tuple[int, ...],
    until: Timestamp,
) -> list[Change]:
    """The result changelog with the EMIT clause's delays applied.

    Both delay transforms are prefix-stable — an output entry stamped at
    processing time *p* depends only on input events at or before *p* —
    so querying "as of ``until``" is just the transformed changelog cut
    at ``until``.
    """
    if emit.delay is not None:
        transformed = _after_delay(
            result.changes,
            emit.delay,
            emit_keys,
            MAX_TIMESTAMP,
            watermarks=result.watermarks if emit.after_watermark else None,
            completion=completion if emit.after_watermark else None,
        )
    elif emit.after_watermark:
        transformed = _after_watermark(result.changes, result.watermarks, completion)
    else:
        transformed = list(result.changes)
    return [c for c in transformed if c.ptime <= until]


# ---------------------------------------------------------------------------
# renderings
# ---------------------------------------------------------------------------


def stream_view(
    result: RunResult,
    emit: EmitSpec,
    completion: Optional[tuple[int, ...]],
    emit_keys: tuple[int, ...],
    until: Timestamp = MAX_TIMESTAMP,
) -> list[StreamChange]:
    """Render the changelog with undo/ptime/ver metadata (Extension 4).

    ``ver`` is a revision counter per event-time grouping: every change
    (insert or retraction) to rows of the same group increments it,
    reproducing Listing 9's numbering.
    """
    changes = apply_emit_delays(result, emit, completion, emit_keys, until)
    versions: dict[tuple, int] = {}
    out: list[StreamChange] = []
    for change in changes:
        key = tuple(change.values[i] for i in emit_keys)
        ver = versions.get(key, 0)
        versions[key] = ver + 1
        out.append(
            StreamChange(
                values=change.values,
                undo=change.is_retract,
                ptime=change.ptime,
                ver=ver,
            )
        )
    return out


@dataclass(frozen=True)
class DeltaChange:
    """One row of a delta-encoded changelog (Section 6.5.1's
    "deltas rather than aggregates" option).

    ``key`` identifies the aggregate; ``deltas`` holds, per non-key
    column, the numeric difference against the key's previous version
    (the first version's delta is its full value).
    """

    key: tuple
    deltas: tuple
    ptime: Timestamp


def delta_view(
    result: RunResult,
    emit: EmitSpec,
    completion: Optional[tuple[int, ...]],
    emit_keys: tuple[int, ...],
    until: Timestamp = MAX_TIMESTAMP,
) -> list[DeltaChange]:
    """Render the changelog as per-aggregate numeric deltas.

    This is the encoding the paper sketches for invertible aggregates:
    instead of RETRACT(old)/INSERT(new) pairs, each update carries only
    the difference.  Requires every non-key output column to be numeric
    and each key to hold at most one live row (true for aggregate
    outputs keyed by their group).
    """
    if not emit_keys:
        raise ExecutionError(
            "delta rendering needs aggregate emit keys (a grouped query)"
        )
    value_indices = [
        i for i in range(len(result.schema)) if i not in set(emit_keys)
    ]
    for i in value_indices:
        if not result.schema.columns[i].type.is_numeric:
            raise ExecutionError(
                f"delta rendering requires numeric columns; "
                f"{result.schema.columns[i].name!r} is not"
            )
    changes = apply_emit_delays(result, emit, completion, emit_keys, until)
    current: dict[tuple, tuple] = {}
    # batch per (ptime, key): a retract+insert pair is one update
    out: list[DeltaChange] = []
    pending: dict[tuple, list[Change]] = {}

    def flush(ptime: Timestamp) -> None:
        for key, batch in pending.items():
            old = current.get(key)
            new = old
            for change in batch:
                if change.is_retract:
                    new = None
                else:
                    new = tuple(change.values[i] for i in value_indices)
            if new == old:
                continue
            if new is None:
                deltas = tuple(-(v or 0) for v in old)
                del current[key]
            elif old is None:
                deltas = new
                current[key] = new
            else:
                deltas = tuple(
                    (b or 0) - (a or 0) for a, b in zip(old, new)
                )
                current[key] = new
            out.append(DeltaChange(key, deltas, ptime))
        pending.clear()

    last_ptime: Optional[Timestamp] = None
    for change in changes:
        if last_ptime is not None and change.ptime != last_ptime:
            flush(last_ptime)
        last_ptime = change.ptime
        key = tuple(change.values[i] for i in emit_keys)
        pending.setdefault(key, []).append(change)
    if last_ptime is not None:
        flush(last_ptime)
    return out


def table_view(
    result: RunResult,
    emit: EmitSpec,
    completion: Optional[tuple[int, ...]],
    emit_keys: tuple[int, ...],
    at: Timestamp = MAX_TIMESTAMP,
    sort_keys: Sequence[tuple[int, bool]] = (),
    limit: Optional[int] = None,
) -> Relation:
    """Render the point-in-time snapshot at processing time ``at``."""
    changes = apply_emit_delays(result, emit, completion, emit_keys, at)
    bag: Counter = Counter()
    for change in changes:
        bag[change.values] += change.delta
        if bag[change.values] == 0:
            del bag[change.values]
    if any(count < 0 for count in bag.values()):
        raise ExecutionError("result changelog retracted a missing row")
    rows: list[tuple] = []
    for values, count in bag.items():
        rows.extend([values] * count)
    if sort_keys:
        for index, ascending in reversed(list(sort_keys)):
            rows.sort(
                key=lambda row: (row[index] is None, row[index]),
                reverse=not ascending,
            )
    if limit is not None:
        rows = rows[:limit]
    return Relation(result.schema, rows)
