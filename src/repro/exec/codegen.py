"""Expression codegen for fused pipelines (provisional API).

``repro.plan.rex.compile_rex`` interprets expressions as a tree of
nested Python closures: every row pays one function call per node plus
the intermediate allocations between fused operators.  This module
compiles a whole pipeline — an ordered list of filter/project steps —
into a single generated Python loop, ``compile()``d once per plan,
with constants (literals, regexes, function impls, fallback closures)
bound through default arguments so the generated code reads them as
locals.

Semantics are the house rule: the generated code must be
observation-equivalent to the closure interpreter — same values, same
NULL propagation, same short-circuit laziness (the right operand of a
comparison is *not* evaluated when the left is NULL; ``AND``/``OR``
keep their Kleene early-outs), and same errors raised at the same
step.  To guarantee that, the emitter generates statement sequences
with explicit ``if`` guards rather than composing expressions
algebraically; any node it cannot express (``CASE``, ``CAST``,
``CURRENT_TIME``, exotic calls) falls back to the closure interpreter
for that sub-expression only, spliced into the generated loop as an
opaque callable.

This module is **provisional**: the generated-source strategy and the
``ENABLED`` switch may change between releases.  Flip ``ENABLED`` to
``False`` to force the interpreted pipeline path (benchmarks use this
to isolate codegen's contribution).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, Tuple

from ..core.changelog import Change
from ..core.colbatch import ColumnarBatch
from ..core.errors import ExecutionError
from ..plan import rex as rexmod
from ..plan.rex import Rex, RexCall, RexInput, RexLiteral

__all__ = ["ENABLED", "compile_pipeline", "PipelineFns"]

# Module switch: when False, PipelineOperator uses the interpreted
# (closure-per-step) path.  Provisional; benchmarks flip it to sweep
# codegen on/off.
ENABLED = True

# Steps are ("filter", Rex) or ("project", tuple[Rex, ...]).
Step = Tuple[str, Any]
PipelineFns = Tuple[Callable, Optional[Callable]]


class _Unsupported(Exception):
    """Raised internally when a node is not expressible; the caller
    rolls back emitted lines and splices in a closure fallback."""


def _sql_div(a, b):
    """SQL division: truncate toward zero for int/int, else true div."""
    if b == 0:
        raise ExecutionError("division by zero")
    if isinstance(a, int) and isinstance(b, int):
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    return a / b


def _sql_mod(a, b):
    if b == 0:
        raise ExecutionError("division by zero")
    return a - b * int(a / b)


_CMP_OPS = {"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}
_ARITH_OPS = {"+": "+", "-": "-", "*": "*"}


class _Emitter:
    """Accumulates generated source lines and the constant environment
    bound into the generated function via default arguments."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.env: dict[str, Any] = {}
        self._n = 0

    def bind(self, value: Any, hint: str = "k") -> str:
        name = f"_{hint}{self._n}"
        self._n += 1
        self.env[name] = value
        return name

    def tmp(self) -> str:
        name = f"_t{self._n}"
        self._n += 1
        return name

    def line(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)


def _row_tuple_expr(row: Sequence[str]) -> str:
    """A tuple display rebuilding the current row for closure fallbacks."""
    if not row:
        return "()"
    if len(row) == 1:
        return f"({row[0]},)"
    return "(" + ", ".join(row) + ")"


def _atom(node: Rex, row: Sequence[str], em: _Emitter, indent: int) -> str:
    """Emit ``node`` and return a string that is safe to reference more
    than once (an identifier, literal, or indexed load).  Complex
    computations are hoisted into a temp at ``indent`` — callers must
    only ask for an atom at a point where the closure interpreter would
    also evaluate the operand unconditionally."""
    if isinstance(node, RexInput):
        return row[node.index]
    if isinstance(node, RexLiteral):
        # Always bound, never inlined: default-arg locals are as fast
        # as literals, repr(inf) is not valid source, and inlining
        # produces noisy `1 is None` guards.
        return em.bind(node.value, "lit")
    target = em.tmp()
    _compute(node, target, row, em, indent)
    return target


def _compute(
    node: Rex, target: str, row: Sequence[str], em: _Emitter, indent: int
) -> None:
    """Emit statements assigning the value of ``node`` to ``target``."""
    if isinstance(node, (RexInput, RexLiteral)):
        em.line(indent, f"{target} = {_atom(node, row, em, indent)}")
        return
    if not isinstance(node, RexCall):
        raise _Unsupported(type(node).__name__)
    op = node.op
    args = node.args

    if op == "AND" or op == "OR":
        a = _atom(args[0], row, em, indent)
        short, other = ("False", "True") if op == "AND" else ("True", "False")
        em.line(indent, f"if {a} is {short}:")
        em.line(indent + 1, f"{target} = {short}")
        em.line(indent, "else:")
        b = _atom(args[1], row, em, indent + 1)
        em.line(
            indent + 1,
            f"{target} = {short} if {b} is {short} else "
            f"(None if {a} is None or {b} is None else {other})",
        )
        return

    if op == "NOT":
        a = _atom(args[0], row, em, indent)
        em.line(indent, f"{target} = None if {a} is None else not {a}")
        return

    if op == "IS NULL":
        a = _atom(args[0], row, em, indent)
        em.line(indent, f"{target} = {a} is None")
        return

    if op == "IS NOT NULL":
        a = _atom(args[0], row, em, indent)
        em.line(indent, f"{target} = {a} is not None")
        return

    if op in _CMP_OPS or op in _ARITH_OPS or op in ("/", "%", "||"):
        # Left operand is evaluated unconditionally; the right only
        # when the left is non-NULL — mirror the closure's laziness
        # with an explicit guard.
        a = _atom(args[0], row, em, indent)
        em.line(indent, f"if {a} is None:")
        em.line(indent + 1, f"{target} = None")
        em.line(indent, "else:")
        b = _atom(args[1], row, em, indent + 1)
        if op in _CMP_OPS:
            combined = f"{a} {_CMP_OPS[op]} {b}"
        elif op in _ARITH_OPS:
            combined = f"{a} {_ARITH_OPS[op]} {b}"
        elif op == "/":
            combined = f"{em.bind(_sql_div, 'div')}({a}, {b})"
        elif op == "%":
            combined = f"{em.bind(_sql_mod, 'mod')}({a}, {b})"
        else:  # ||
            combined = f"str({a}) + str({b})"
        em.line(
            indent + 1,
            f"{target} = None if {b} is None else ({combined})",
        )
        return

    if op == "NEG":
        a = _atom(args[0], row, em, indent)
        em.line(indent, f"{target} = None if {a} is None else -{a}")
        return

    if op == "LIKE":
        if not isinstance(args[1], RexLiteral) or args[1].value is None:
            raise _Unsupported("dynamic LIKE")
        regex = em.bind(rexmod._like_to_regex(str(args[1].value)), "re")
        a = _atom(args[0], row, em, indent)
        em.line(
            indent,
            f"{target} = None if {a} is None else "
            f"bool({regex}.match(str({a})))",
        )
        return

    if op == "IN":
        # Only the all-literal membership list is compiled; anything
        # else falls back.  Kleene semantics: TRUE on a match, NULL if
        # no match but a NULL item exists, else FALSE.
        items = args[1:]
        if not all(isinstance(item, RexLiteral) for item in items):
            raise _Unsupported("non-literal IN list")
        values = [item.value for item in items]
        has_null = any(v is None for v in values)
        members = em.bind(set(v for v in values if v is not None), "inset")
        a = _atom(args[0], row, em, indent)
        miss = "None" if has_null else "False"
        em.line(
            indent,
            f"{target} = None if {a} is None else "
            f"(True if {a} in {members} else {miss})",
        )
        return

    fn = node.function
    if fn is not None:
        impl = em.bind(fn.impl, "fn")
        # The closure evaluates every argument eagerly before the
        # NULL check, so hoisting them is order-preserving.
        arg_atoms = [_atom(arg, row, em, indent) for arg in args]
        call = f"{impl}({', '.join(arg_atoms)})"
        if fn.null_propagating and arg_atoms:
            guard = " or ".join(f"{a} is None" for a in arg_atoms)
            em.line(indent, f"{target} = None if {guard} else {call}")
        else:
            em.line(indent, f"{target} = {call}")
        return

    raise _Unsupported(op)


def _emit_value(
    node: Rex, row: Sequence[str], em: _Emitter, indent: int
) -> str:
    """Emit ``node`` with closure fallback; returns a multi-ref-safe
    string for its value."""
    if isinstance(node, RexInput):
        return row[node.index]
    if isinstance(node, RexLiteral):
        return em.bind(node.value, "lit")
    target = em.tmp()
    mark = len(em.lines)
    try:
        _compute(node, target, row, em, indent)
    except _Unsupported:
        del em.lines[mark:]
        # compile_rex raises ExecutionError for CURRENT_TIME here —
        # at pipeline build time, exactly like the interpreted path.
        closure = em.bind(rexmod.compile_rex(node), "fb")
        em.line(indent, f"{target} = {closure}({_row_tuple_expr(row)})")
    return target


def _compile_source(em: _Emitter, name: str, param: str) -> Callable:
    params = [param] + [f"{k}={k}" for k in em.env]
    source = f"def {name}({', '.join(params)}):\n" + "\n".join(em.lines)
    namespace = dict(em.env)
    exec(compile(source, "<repro-codegen>", "exec"), namespace)
    fn = namespace[name]
    fn._codegen_source = source
    return fn


def _compile_rows(steps: Sequence[Step], in_width: int) -> Callable:
    """Generate ``run_rows(changes) -> list[Change]``."""
    em = _Emitter()
    make = em.bind(Change, "Change")
    em.line(1, "_out = []")
    em.line(1, "_append = _out.append")
    em.line(1, "for _c in _changes:")
    em.line(2, "_v = _c.values")
    row: list[str] = [f"_v[{i}]" for i in range(in_width)]
    projected = False
    for kind, payload in steps:
        if kind == "filter":
            cond = _emit_value(payload, row, em, 2)
            em.line(2, f"if {cond} is not True:")
            em.line(3, "continue")
        else:
            row = [_emit_value(expr, row, em, 2) for expr in payload]
            projected = True
    if projected:
        em.line(2, f"_append({make}(_c.kind, {_row_tuple_expr(row)}, _c.ptime))")
    else:
        # Pure filters keep the original Change objects, like
        # FilterOperator does.
        em.line(2, "_append(_c)")
    em.line(1, "return _out")
    return _compile_source(em, "_run_rows", "_changes")


def _compile_cols(steps: Sequence[Step], in_width: int) -> Callable:
    """Generate ``run_cols(batch) -> ColumnarBatch``.

    Output slots are tracked symbolically: a slot is either
    ``("col", i)`` — still column ``i`` of the input, untouched — or
    ``("var",)`` — a computed scalar.  Without filters, untouched
    output columns (and the kinds/ptimes vectors) are *shared* with the
    input batch and only computed columns pay a loop; with filters
    everything funnels through one generated loop that also rebuilds
    kinds/ptimes.
    """
    has_filter = any(kind == "filter" for kind, _ in steps)
    sym: list[tuple] = [("col", i) for i in range(in_width)]
    for kind, payload in steps:
        if kind == "project":
            sym = [
                sym[expr.index] if isinstance(expr, RexInput) else ("var", None)
                for expr in payload
            ]

    em = _Emitter()
    cb = em.bind(ColumnarBatch, "CB")
    em.line(1, "_cols = _batch.columns")
    em.line(1, "_kinds = _batch.kinds")
    em.line(1, "_ptimes = _batch.ptimes")

    if not has_filter and all(tag == "col" for tag, _ in sym):
        # Pure column shuffle: no loop at all.
        outs = ", ".join(f"_cols[{i}]" for _, i in sym)
        em.line(1, f"return {cb}(({outs}{',' if sym else ''}), _kinds, _ptimes)")
        return _compile_source(em, "_run_cols", "_batch")

    # Emit the per-row body against column loads, then decide which
    # input columns and output accumulators the prologue must set up.
    body = _Emitter()
    body._n = em._n  # keep generated names disjoint from em's binds
    row: list[str] = [f"_ic{i}[_x]" for i in range(in_width)]
    for kind, payload in steps:
        if kind == "filter":
            cond = _emit_value(payload, row, body, 2)
            body.line(2, f"if {cond} is not True:")
            body.line(3, "continue")
        else:
            row = [_emit_value(expr, row, body, 2) for expr in payload]
    width_out = len(row)

    if has_filter:
        for j in range(width_out):
            body.line(2, f"_a{j}({row[j]})")
        body.line(2, "_ak(_kinds[_x])")
        body.line(2, "_ap(_ptimes[_x])")
        out_slots = list(range(width_out))
        outs = ", ".join(f"_oc{j}" for j in range(width_out))
        tail = f"return {cb}(({outs}{',' if width_out else ''}), _ok, _op)"
    else:
        out_slots = [j for j, (tag, _) in enumerate(sym) if tag == "var"]
        for j in out_slots:
            body.line(2, f"_a{j}({row[j]})")
        parts = [
            f"_cols[{ref}]" if tag == "col" else f"_oc{j}"
            for j, (tag, ref) in enumerate(sym)
        ]
        tail = f"return {cb}(({', '.join(parts)}{',' if parts else ''}), _kinds, _ptimes)"

    for i in range(in_width):
        em.line(1, f"_ic{i} = _cols[{i}]")
    for j in out_slots:
        em.line(1, f"_oc{j} = []")
        em.line(1, f"_a{j} = _oc{j}.append")
    if has_filter:
        em.line(1, "_ok = []")
        em.line(1, "_ak = _ok.append")
        em.line(1, "_op = []")
        em.line(1, "_ap = _op.append")
    em.line(1, "for _x in range(len(_kinds)):")
    em.lines.extend(body.lines)
    em.env.update(body.env)
    em.line(1, tail)
    return _compile_source(em, "_run_cols", "_batch")


def compile_pipeline(steps: Sequence[Step], in_width: int) -> PipelineFns:
    """Compile a pipeline into ``(run_rows, run_cols)`` callables.

    Always succeeds: nodes the emitter cannot express are bound as
    closure fallbacks inside the generated loop.  Raises
    :class:`~repro.core.errors.ExecutionError` only where the
    interpreted path would too (e.g. ``CURRENT_TIME`` in a WHERE
    clause).
    """
    run_rows = _compile_rows(steps, in_width)
    run_cols = _compile_cols(steps, in_width)
    return run_rows, run_cols
