"""Incremental streaming executor: operators, dataflow, materializers."""

from .compile import CompiledPlan, compile_plan
from .executor import Dataflow, RunResult
from .state import OperatorState, StateReport, collect_state
from .materialize import (
    DeltaChange,
    StreamChange,
    apply_emit_delays,
    delta_view,
    stream_schema,
    stream_view,
    table_view,
)

__all__ = [
    "compile_plan",
    "CompiledPlan",
    "Dataflow",
    "RunResult",
    "OperatorState",
    "StateReport",
    "collect_state",
    "StreamChange",
    "DeltaChange",
    "delta_view",
    "stream_schema",
    "stream_view",
    "table_view",
    "apply_emit_delays",
]
