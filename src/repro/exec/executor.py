"""Push-based dataflow execution over time-varying relations.

:class:`Dataflow` compiles a :class:`~repro.plan.planner.QueryPlan`,
binds its scans to registered source TVRs, and replays the sources'
stream events in processing-time order through the operator graph.  The
result is each output's changelog plus its watermark track — i.e. the
output *as a time-varying relation*, from which the materializers in
:mod:`repro.exec.materialize` derive every table/stream rendering the
paper describes.

A dataflow starts as a tree (one output, one consumer per operator)
but is a DAG underneath: :meth:`Dataflow.attach_output` grafts a second
query's plan onto any resident subplan with a matching canonical
fingerprint (see :mod:`repro.plan.fingerprint`), multicasting the
shared operator's changelog to every consuming edge while each query
keeps its own downstream operators and its own output channel.
Operators are ref-counted per consuming output, so withdrawing one
sharing query (:meth:`remove_output`) never tears down state a
survivor still reads.

Determinism: events are processed in (ptime, source registration
order, arrival order) order, and a source consumed by several scans
(e.g. ``Bid`` appearing twice in NEXMark Q7) delivers to the scans in
plan (left-to-right) order; a *shared* operator delivers to its
consumer edges in attach order, which reproduces the same interleaving
per output.  This makes changelog outputs — including the intra-instant
ordering visible in Listing 9 — reproducible, and byte-identical with
sharing on or off.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence

from ..core.changelog import Change, compact_intra_instant
from ..core.colbatch import ColumnarBatch
from ..core.errors import ExecutionError
from ..core.relation import Relation
from ..core.schema import Schema
from ..core.times import MAX_TIMESTAMP, MIN_TIMESTAMP, Timestamp
from ..core.tvr import RowEvent, StreamEvent, TimeVaryingRelation, WatermarkEvent
from ..core.watermark import WatermarkTrack
from ..obs.lineage import LineageRecorder
from ..obs.metrics import MetricsRegistry, MetricsReport
from ..obs.telemetry import RunTelemetry
from ..obs.trace import TraceEvent
from ..plan.fingerprint import node_fingerprints, subtree_size
from ..plan.logical import LogicalNode, ValuesNode
from ..plan.pipeline import get_fused_root
from ..plan.planner import QueryPlan
from .compile import build_operator, compile_plan
from .operators.base import Operator
from .operators.stateless import ScanOperator

__all__ = ["Dataflow", "OutputChannel", "RunResult", "iter_event_runs",
           "merge_source_events"]


def merge_source_events(
    sources: dict[str, TimeVaryingRelation],
    until: Optional[Timestamp] = None,
) -> list[tuple[StreamEvent, str]]:
    """All source events merged in deterministic processing-time order.

    Events are ordered by (ptime, source registration order, arrival
    order) — the exact replay order the serial executor uses.  The
    sharded runtime routes the *same* sequence through its shards, which
    is what lets its merged output reproduce the serial changelog
    byte for byte.

    Each source's events are already ptime-ordered (the ``until``
    cutoff has always relied on that), so concatenating the per-source
    lists in registration order and stable-sorting by ptime alone
    yields exactly the (ptime, source order, arrival order) sequence: a
    stable sort keeps the concatenation order among equal ptimes.
    Timsort's galloping mode makes that sort nearly linear over k
    already-sorted runs, and it runs entirely in C — measurably faster
    here than a Python-level k-way heap merge.
    """
    merged: list[tuple[StreamEvent, str]] = []
    append = merged.append
    for name, tvr in sources.items():
        for event in tvr.events():
            if until is not None and event.ptime > until:
                break
            append((event, name))
    merged.sort(key=_event_ptime)
    return merged


def _event_ptime(pair: tuple[StreamEvent, str]) -> Timestamp:
    return pair[0].ptime


def iter_event_runs(
    events: list[tuple[StreamEvent, str]],
    batch_size: int,
    batchable_source: Callable[[str], bool],
) -> Iterator[tuple[int, int]]:
    """Yield ``(start, end)`` slices of a replay stream forming micro-batches.

    A run may only contain consecutive row events with the same ptime
    and the same source, capped at ``batch_size``, and only for sources
    ``batchable_source`` admits (those feeding exactly one scan leaf; a
    multi-scan source delivers each event to all its scans before the
    next event, so batching would reorder the interleaving).  Watermark
    events always break runs, so no operator ever sees its input
    watermark move inside a batch.  Shared by :meth:`Dataflow.run` and
    the shell's ``\\watch`` replay loop.
    """
    i, n = 0, len(events)
    while i < n:
        event, source = events[i]
        j = i + 1
        if isinstance(event, RowEvent) and batchable_source(source):
            ptime = event.ptime
            while (
                j < n
                and j - i < batch_size
                and events[j][1] == source
                and isinstance(events[j][0], RowEvent)
                and events[j][0].ptime == ptime
            ):
                j += 1
        yield i, j
        i = j


@dataclass
class RunResult:
    """The output TVR of a dataflow run, plus runtime statistics.

    ``late_dropped``/``expired_rows``/``peak_state_rows`` are the
    headline totals; ``metrics`` is the full per-operator
    :class:`~repro.obs.metrics.MetricsReport` behind them (rows in/out,
    retractions, state peaks, watermark lag — and, for sharded runs,
    per-shard breakdowns with routing skew).
    """

    schema: Schema
    changes: list[Change]
    watermarks: WatermarkTrack
    last_ptime: Timestamp
    late_dropped: int = 0
    expired_rows: int = 0
    peak_state_rows: int = 0
    metrics: Optional[MetricsReport] = None

    def snapshot(self, at: Timestamp = MAX_TIMESTAMP) -> Relation:
        """Table rendering of the result at processing time ``at``."""
        from ..core.changelog import Changelog

        log = Changelog()
        for change in self.changes:
            if change.ptime <= at:
                log.append(change)
            else:
                break
        return log.snapshot_at(self.schema, at)


class OutputChannel:
    """One query's view of a (possibly shared) dataflow.

    Holds everything that is *per consuming query* rather than per
    physical operator: the root changelog, the output watermark track,
    the latency telemetry, and the plan whose completion columns drive
    it.  The physical operators below ``root`` may be shared with other
    channels of the same :class:`Dataflow`.
    """

    __slots__ = (
        "output_id", "plan", "root", "root_name", "completion",
        "changes", "watermarks", "telemetry",
    )

    def __init__(self, output_id: str, plan: QueryPlan, root: Operator):
        self.output_id = output_id
        self.plan = plan
        self.root = root
        self.root_name = root.name()
        self.completion = plan.root.completion_indices
        self.changes: list[Change] = []
        self.watermarks = WatermarkTrack()
        self.telemetry = RunTelemetry()


class Dataflow:
    """A compiled, source-bound, runnable query (or DAG of queries)."""

    def __init__(
        self,
        plan: QueryPlan,
        sources: dict[str, TimeVaryingRelation],
        allowed_lateness: int = 0,
        batch_size: int = 1,
        coalesce_updates: bool = False,
        output_id: str = "main",
        columnar: str = "off",
    ):
        if batch_size < 1:
            raise ExecutionError("batch_size must be >= 1")
        if columnar not in ("auto", "on", "off"):
            raise ExecutionError("columnar must be 'auto', 'on', or 'off'")
        self.plan = plan
        #: maximum row events delivered per micro-batch; 1 = per-change.
        self.batch_size = batch_size
        #: whether intra-instant insert/retract churn is compacted.
        self.coalesce_updates = coalesce_updates
        #: columnar micro-batch mode: "auto" enables it with batching.
        self.columnar = columnar
        self._columnar_active = columnar == "on" or (
            columnar == "auto" and batch_size > 1
        )
        self._allowed_lateness = allowed_lateness
        self._sources: dict[str, TimeVaryingRelation] = {
            name.lower(): tvr for name, tvr in sources.items()
        }
        self._init_graph()
        root_node = self._exec_root(plan)
        compiled = compile_plan(root_node, allowed_lateness=allowed_lateness)
        self._operators = list(compiled.operators)
        for op in self._operators:
            entry = compiled.parents.get(id(op))
            if entry is not None:
                parent, port = entry
                self._consumers.setdefault(id(op), []).append((parent, port))
                self._producers.setdefault(id(parent), []).append((port, op))
            op.bind_timers(self._schedule_timer)
        self._values_rows = dict(compiled.values_rows)
        for leaf in compiled.leaves:
            self._register_leaf(leaf)
        fps = node_fingerprints(root_node)
        #: id(logical node) -> operator, for the plan this flow was
        #: compiled from — the correlation donor transplants rely on.
        self._plan_node_ops = {
            id(node): op for node, op in compiled.node_ops
        }
        for node, op in compiled.node_ops:
            self._op_fps[id(op)] = fps[id(node)]
            # First registration wins; a plan scanning one source twice
            # (NEXMark Q7) keeps both operators — sharing only dedups
            # across attach boundaries, never inside one plan.
            self._fp_index.setdefault(fps[id(node)], op)
        channel = OutputChannel(output_id, plan, compiled.root)
        self._outputs: dict[str, OutputChannel] = {output_id: channel}
        self._primary = output_id
        self._outputs_of = {id(compiled.root): [channel]}
        self._op_refs = {id(op): 1 for op in self._operators}
        self.metrics_registry = MetricsRegistry(self._operators)

    def _init_graph(self) -> None:
        """The per-instance graph/bookkeeping slots shared by both
        construction paths (:meth:`__init__` and :meth:`from_structure`)."""
        self._operators: list[Operator] = []
        #: id(op) -> [(consumer op, input port)], in attach order
        self._consumers: dict[int, list[tuple[Operator, int]]] = {}
        #: id(op) -> [(input port, producer op)]
        self._producers: dict[int, list[tuple[int, Operator]]] = {}
        #: id(op) -> number of output channels reading through it
        self._op_refs: dict[int, int] = {}
        #: id(op) -> canonical fingerprint of its logical subtree
        self._op_fps: dict[int, str] = {}
        #: fingerprint -> resident operator (first registered wins)
        self._fp_index: dict[str, Operator] = {}
        self._leaves: list[ScanOperator] = []
        self._leaves_by_source: dict[str, list[ScanOperator]] = {}
        self._values_rows: dict[int, tuple] = {}
        self._last_ptime: Timestamp = MIN_TIMESTAMP
        self._peak_state = 0
        self._opened = False
        #: optional trace hook: a callable receiving
        #: :class:`~repro.obs.trace.TraceEvent` on every primary-output
        #: change batch and watermark advance.
        self.trace: Optional[Callable[[TraceEvent], None]] = None
        #: optional lineage recorder (see :mod:`repro.obs.lineage`);
        #: install via :meth:`set_lineage`.  Tracing threads a *cause*
        #: token alongside batches and never touches the changes
        #: themselves, so the changelog is byte-identical either way.
        self.lineage: Optional[LineageRecorder] = None
        self._lineage_shard: Optional[int] = None
        self._lineage_register_outputs = True
        # processing-time timer service: (deadline, seq, operator)
        self._timers: list[tuple[Timestamp, int, Operator]] = []
        self._timer_seq = 0

    def _exec_root(self, plan: QueryPlan) -> LogicalNode:
        """The logical root this flow actually compiles for ``plan``.

        In columnar mode adjacent Filter/Project chains are fused into
        :class:`~repro.plan.pipeline.PipelineNode` steps first; the
        fused tree is memoized per plan object so every correlation
        keyed by node identity (donor transplants, checkpoint recipes,
        sharded shard-plan sharing) sees the same objects.
        """
        if self._columnar_active:
            return get_fused_root(plan)
        return plan.root

    def _register_leaf(self, leaf: ScanOperator) -> None:
        key = leaf.source_name.lower()
        self._leaves.append(leaf)
        self._leaves_by_source.setdefault(key, []).append(leaf)
        if not key.startswith("$values") and key not in self._sources:
            raise ExecutionError(f"no source registered for {leaf.source_name!r}")

    # -- public API -----------------------------------------------------------

    @property
    def operators(self) -> list[Operator]:
        return list(self._operators)

    @property
    def telemetry(self) -> RunTelemetry:
        """Latency telemetry sampled at the primary output's root."""
        return self._outputs[self._primary].telemetry

    def telemetry_of(self, output_id: str) -> RunTelemetry:
        """Latency telemetry sampled at one output channel's root."""
        return self._outputs[output_id].telemetry

    def set_lineage(
        self,
        recorder: Optional[LineageRecorder],
        shard: Optional[int] = None,
        register_outputs: bool = True,
    ) -> None:
        """Install (or remove) a lineage recorder on this flow.

        ``shard`` tags recorded operator nodes with a shard index; a
        shard flow of a :class:`~repro.runtime.sharded.ShardedDataflow`
        passes ``register_outputs=False`` because its local changelog
        positions differ from the merged ones — the parent assigns the
        merged positions via the recorder's shard notes.
        """
        self.lineage = recorder
        self._lineage_shard = shard
        self._lineage_register_outputs = register_outputs

    @property
    def output_size(self) -> int:
        """Primary-output changes produced so far (a resumable cursor)."""
        return len(self._outputs[self._primary].changes)

    def output_slice(self, start: int) -> list[Change]:
        """Primary-output changes produced since cursor position ``start``.

        Together with :attr:`output_size` this lets a driver attribute
        output changes to the input event that caused them — the hook
        the sharded runtime's deterministic merge stage is built on.
        """
        return self._outputs[self._primary].changes[start:]

    @property
    def root_watermark(self) -> Timestamp:
        """The current output watermark of the primary output's root."""
        return self._outputs[self._primary].watermarks.current

    def output_ids(self) -> list[str]:
        """The attached output channels, in attach order."""
        return list(self._outputs)

    def output_size_of(self, output_id: str) -> int:
        return len(self._outputs[output_id].changes)

    def output_slice_of(self, output_id: str, start: int = 0) -> list[Change]:
        return self._outputs[output_id].changes[start:]

    def root_watermark_of(self, output_id: str) -> Timestamp:
        return self._outputs[output_id].watermarks.current

    def total_state_rows(self) -> int:
        """Rows currently retained across all operator state."""
        return sum(op.state_size() for op in self._operators)

    def state_rows_of(self, output_id: str) -> int:
        """Rows retained by the operators ``output_id`` reads through.

        Shared operators count toward *every* consuming output — the
        conservative attribution tenant quotas want.
        """
        channel = self._outputs[output_id]
        return sum(op.state_size() for op in self._reachable_ops(channel.root))

    def rows_ingested(self) -> int:
        """Rows delivered to this dataflow's scan leaves so far.

        On a shard this is exactly the rows the hash router assigned to
        it — the per-shard skew signal the dashboard and the merged
        metrics report display.
        """
        return sum(sum(leaf.counters.rows_in) for leaf in self._leaves)

    def state_report(self):
        """Per-operator state breakdown (the Section 5 feedback lesson)."""
        from .state import collect_state

        return collect_state(self)

    # -- multi-query sharing ------------------------------------------------------

    def plan_overlap(self, plan: QueryPlan) -> int:
        """How many of ``plan``'s logical nodes resident subplans cover.

        The session's :class:`~repro.service.session.SharedPlanCache`
        uses this to pick the best host flow for a new standing query.
        """
        root_node = self._exec_root(plan)
        fps = node_fingerprints(root_node)
        covered = 0

        def walk(node: LogicalNode) -> None:
            nonlocal covered
            if fps[id(node)] in self._fp_index:
                covered += subtree_size(node)
                return
            for child in node.inputs:
                walk(child)

        walk(root_node)
        return covered

    def shared_by(self, op: Operator) -> int:
        """Output channels currently reading through ``op``."""
        return self._op_refs.get(id(op), 0)

    def shared_operator_count(self) -> int:
        """Resident operators read by two or more output channels."""
        return sum(
            1 for op in self._operators if self._op_refs.get(id(op), 0) >= 2
        )

    def attached_operator_count(self) -> int:
        """Total operators summed per output (the sharing-ratio numerator)."""
        return sum(
            len(self._reachable_ops(channel.root))
            for channel in self._outputs.values()
        )

    def resident_operator_count(self) -> int:
        """Physical operators resident (the sharing-ratio denominator)."""
        return len(self._operators)

    def sharing_map(self) -> dict[str, list[int]]:
        """Per output, the operator-list indices its plan resolves to.

        Post-order per output; the structural recipe a checkpoint
        manifest records and :meth:`from_structure` rebuilds from.
        """
        op_index = {id(op): i for i, op in enumerate(self._operators)}
        return {
            output_id: [op_index[id(op)] for op in self._channel_node_ops(ch)]
            for output_id, ch in self._outputs.items()
        }

    def attach_output(
        self,
        output_id: str,
        plan: QueryPlan,
        donor: Optional["Dataflow"] = None,
        allow_root_share: bool = True,
    ) -> OutputChannel:
        """Graft ``plan`` onto this dataflow as a new output channel.

        Every subtree of ``plan`` whose canonical fingerprint matches a
        resident operator reuses that operator; the remaining (private)
        suffix is built fresh — from ``donor`` when given, a throwaway
        dataflow compiled from the *same* ``plan`` object that has
        already replayed the sources' history.  Transplanting the
        donor's private operators (with their state, pending timers,
        and output history) is what lets a late-arriving query catch up
        to the host flow's position without replaying through shared
        state.  The donor's own copies of the shared prefix are simply
        discarded: by determinism their state equals the resident one.

        ``allow_root_share=False`` blocks sharing at the root node only
        (used when two plans agree structurally but differ in EMIT
        clause, so their changelogs coincide but their materialization
        does not).
        """
        if output_id in self._outputs:
            raise ExecutionError(f"output {output_id!r} is already attached")
        if donor is not None:
            if donor._opened and not self._opened:
                raise ExecutionError(
                    "cannot transplant from an opened donor into an "
                    "unopened dataflow"
                )
            if self._opened:
                donor._open()
        root_node = self._exec_root(plan)
        fps = node_fingerprints(root_node)
        # Matching consults a snapshot of the index: a plan must never
        # dedup against itself (see the Q7 note in __init__).
        index = dict(self._fp_index)
        new_ops: list[Operator] = []

        def build(node: LogicalNode) -> Operator:
            fp = fps[id(node)]
            resident = index.get(fp)
            if resident is not None and (
                allow_root_share or node is not root_node
            ):
                return resident
            children = [build(child) for child in node.inputs]
            if donor is not None:
                op = donor._plan_node_ops[id(node)]
            else:
                op = build_operator(node, children, self._allowed_lateness)
            for port, child in enumerate(children):
                self._consumers.setdefault(id(child), []).append((op, port))
                self._producers.setdefault(id(op), []).append((port, child))
            self._operators.append(op)
            self._op_fps[id(op)] = fp
            self._fp_index.setdefault(fp, op)
            if isinstance(op, ScanOperator):
                self._register_leaf(op)
            if isinstance(node, ValuesNode):
                self._values_rows[id(op)] = node.rows
            op.bind_timers(self._schedule_timer)
            new_ops.append(op)
            return op

        root_op = build(root_node)
        for op in self._reachable_ops(root_op):
            self._op_refs[id(op)] = self._op_refs.get(id(op), 0) + 1
        channel = OutputChannel(output_id, plan, root_op)
        self._outputs[output_id] = channel
        self._outputs_of.setdefault(id(root_op), []).append(channel)
        self.metrics_registry = MetricsRegistry(self._operators)
        if donor is not None:
            donor_primary = donor._outputs[donor._primary]
            channel.changes = list(donor_primary.changes)
            channel.watermarks = donor_primary.watermarks
            channel.telemetry = donor_primary.telemetry
            new_ids = {id(op) for op in new_ops}
            for when, _, op in sorted(
                donor._timers, key=lambda item: (item[0], item[1])
            ):
                if id(op) in new_ids:
                    self._schedule_timer(when, op)
            self._last_ptime = max(self._last_ptime, donor._last_ptime)
            self._peak_state = max(self._peak_state, donor._peak_state)
        return channel

    def remove_output(self, output_id: str) -> bool:
        """Detach an output channel, tearing down *only* unshared operators.

        Each operator the channel read through loses one reference;
        operators still referenced by a surviving output keep their
        state, timers, and position untouched (the ref-count invariant
        the withdrawal bugfix pins).
        """
        channel = self._outputs.pop(output_id, None)
        if channel is None:
            return False
        siblings = self._outputs_of.get(id(channel.root))
        if siblings is not None:
            siblings.remove(channel)
            if not siblings:
                del self._outputs_of[id(channel.root)]
        for op in self._reachable_ops(channel.root):
            self._op_refs[id(op)] -= 1
        dead = {
            id(op)
            for op in self._operators
            if self._op_refs.get(id(op), 0) <= 0
        }
        if dead:
            self._operators = [
                op for op in self._operators if id(op) not in dead
            ]
            self._leaves = [
                leaf for leaf in self._leaves if id(leaf) not in dead
            ]
            for key in list(self._leaves_by_source):
                kept = [
                    leaf
                    for leaf in self._leaves_by_source[key]
                    if id(leaf) not in dead
                ]
                if kept:
                    self._leaves_by_source[key] = kept
                else:
                    del self._leaves_by_source[key]
            for op_id in dead:
                self._op_refs.pop(op_id, None)
                self._op_fps.pop(op_id, None)
                self._producers.pop(op_id, None)
                self._consumers.pop(op_id, None)
                self._values_rows.pop(op_id, None)
            for op_id, edges in list(self._consumers.items()):
                self._consumers[op_id] = [
                    (consumer, port)
                    for consumer, port in edges
                    if id(consumer) not in dead
                ]
            self._fp_index = {}
            for op in self._operators:
                self._fp_index.setdefault(self._op_fps[id(op)], op)
            self._timers = [
                entry for entry in self._timers if id(entry[2]) not in dead
            ]
            heapq.heapify(self._timers)
            self.metrics_registry = MetricsRegistry(self._operators)
        return True

    @classmethod
    def from_structure(
        cls,
        plans: Sequence[tuple[str, QueryPlan]],
        structure: dict,
        sources: dict[str, TimeVaryingRelation],
        allowed_lateness: int = 0,
        batch_size: int = 1,
        coalesce_updates: bool = False,
        columnar: str = "off",
    ) -> "Dataflow":
        """Rebuild the exact physical sharing structure of a checkpoint.

        ``structure`` is a checkpoint payload (or the structural subset
        of one): ``op_types`` fixes the operator-list length and order,
        and each output's ``node_ops`` says which operator index every
        plan node resolved to when the checkpoint was cut.  Re-running
        fingerprint matching could legally produce a *different*
        physical sharing (withdrawals reorder the residency index), and
        then the checkpointed operator states would not line up; the
        recipe makes restore structure-exact.  Call :meth:`restore`
        with the full checkpoint afterwards to fill the states.
        """
        if batch_size < 1:
            raise ExecutionError("batch_size must be >= 1")
        if columnar not in ("auto", "on", "off"):
            raise ExecutionError("columnar must be 'auto', 'on', or 'off'")
        if [oid for oid, _ in plans] != list(structure["output_order"]):
            raise ExecutionError(
                "checkpoint outputs do not match the plans being restored"
            )
        self = object.__new__(cls)
        self.batch_size = batch_size
        self.coalesce_updates = coalesce_updates
        self.columnar = columnar
        self._columnar_active = columnar == "on" or (
            columnar == "auto" and batch_size > 1
        )
        self._allowed_lateness = allowed_lateness
        self._sources = {name.lower(): tvr for name, tvr in sources.items()}
        self._init_graph()
        slots: list[Optional[Operator]] = [None] * len(structure["op_types"])
        self._operators = slots  # filled in place below
        self._outputs = {}
        self._outputs_of = {}
        self._plan_node_ops = {}
        for output_id, plan in plans:
            node_ops = structure["outputs"][output_id]["node_ops"]
            root_node = self._exec_root(plan)
            fps = node_fingerprints(root_node)
            pos = 0

            def build(node: LogicalNode) -> Operator:
                nonlocal pos
                children = [build(child) for child in node.inputs]
                index = node_ops[pos]
                pos += 1
                op = slots[index]
                if op is None:
                    op = build_operator(
                        node, children, self._allowed_lateness
                    )
                    slots[index] = op
                    for port, child in enumerate(children):
                        self._consumers.setdefault(id(child), []).append(
                            (op, port)
                        )
                        self._producers.setdefault(id(op), []).append(
                            (port, child)
                        )
                    self._op_fps[id(op)] = fps[id(node)]
                    self._fp_index.setdefault(fps[id(node)], op)
                    if isinstance(op, ScanOperator):
                        self._register_leaf(op)
                    if isinstance(node, ValuesNode):
                        self._values_rows[id(op)] = node.rows
                    op.bind_timers(self._schedule_timer)
                return op

            root_op = build(root_node)
            channel = OutputChannel(output_id, plan, root_op)
            self._outputs[output_id] = channel
            self._outputs_of.setdefault(id(root_op), []).append(channel)
            for op in self._reachable_ops(root_op):
                self._op_refs[id(op)] = self._op_refs.get(id(op), 0) + 1
        if any(op is None for op in slots):
            raise ExecutionError(
                "checkpoint structure references operators no output builds"
            )
        self._primary, self.plan = plans[0][0], plans[0][1]
        self.metrics_registry = MetricsRegistry(self._operators)
        return self

    # -- checkpoint / recovery ---------------------------------------------------

    def checkpoint(self) -> bytes:
        """A consistent snapshot of the whole dataflow, as bytes.

        This is the capability Appendix B.2.1 describes for Flink:
        "Flink periodically writes a consistent checkpoint of the
        application state … For recovery, the application is restarted
        and all operators are initialized with the state of the last
        completed checkpoint."  Feed the remaining source events to the
        restored dataflow and the results are identical to an
        uninterrupted run (see ``tests/test_checkpoint.py``).

        Shared operator state is snapshotted once (the operator list
        holds each physical operator exactly once, however many outputs
        read it), and per-output ``node_ops`` recipes record the
        sharing structure for :meth:`from_structure`.

        Call between events (the incremental ``process`` API), not from
        inside a callback.
        """
        import pickle

        op_index = {id(op): i for i, op in enumerate(self._operators)}
        payload = {
            "op_states": [op.state_snapshot() for op in self._operators],
            "op_types": [type(op).__name__ for op in self._operators],
            "output_order": list(self._outputs),
            "outputs": {
                output_id: {
                    "changes": list(channel.changes),
                    "wm_pairs": channel.watermarks.as_pairs(),
                    "telemetry": channel.telemetry.snapshot(),
                    "node_ops": [
                        op_index[id(op)]
                        for op in self._channel_node_ops(channel)
                    ],
                }
                for output_id, channel in self._outputs.items()
            },
            "last_ptime": self._last_ptime,
            "peak_state": self._peak_state,
            "opened": self._opened,
            "timers": [
                (when, seq, op_index[id(op)])
                for when, seq, op in self._timers
            ],
            "timer_seq": self._timer_seq,
            # Shard flows don't own the recorder (the sharded parent
            # snapshots it once); only the owning flow persists it.
            "lineage": (
                self.lineage.snapshot()
                if self.lineage is not None and self._lineage_register_outputs
                else None
            ),
        }
        return pickle.dumps(payload)

    def restore(self, checkpoint: bytes) -> None:
        """Restore a checkpoint taken from a dataflow of the same structure."""
        import pickle

        payload = pickle.loads(checkpoint)
        operators = self._operators
        if "outputs" not in payload:
            self._restore_legacy(payload)
            return
        if payload["op_types"] != [type(op).__name__ for op in operators]:
            raise ExecutionError(
                "checkpoint does not match this dataflow's plan"
            )
        if set(payload["output_order"]) != set(self._outputs):
            raise ExecutionError(
                "checkpoint does not match this dataflow's outputs"
            )
        for op, snapshot in zip(operators, payload["op_states"]):
            op.state_restore(snapshot)
        for output_id, stored in payload["outputs"].items():
            channel = self._outputs[output_id]
            channel.changes = list(stored["changes"])
            channel.watermarks = WatermarkTrack()
            for ptime, value in stored["wm_pairs"]:
                channel.watermarks.advance(ptime, value)
            channel.telemetry = RunTelemetry()
            channel.telemetry.restore(stored["telemetry"])
        self._last_ptime = payload["last_ptime"]
        self._peak_state = payload["peak_state"]
        self._opened = payload["opened"]
        self._timers = [
            (when, seq, operators[i]) for when, seq, i in payload["timers"]
        ]
        heapq.heapify(self._timers)
        self._timer_seq = payload["timer_seq"]
        if payload.get("lineage") is not None:
            self.set_lineage(LineageRecorder.restore(payload["lineage"]))

    def _restore_legacy(self, payload: dict) -> None:
        """Restore the pre-DAG single-output checkpoint shape."""
        operators = self._operators
        if len(payload["op_states"]) != len(operators):
            raise ExecutionError(
                "checkpoint does not match this dataflow's plan"
            )
        for op, snapshot in zip(operators, payload["op_states"]):
            op.state_restore(snapshot)
        channel = self._outputs[self._primary]
        channel.changes = list(payload["root_changes"])
        channel.watermarks = WatermarkTrack()
        for ptime, value in payload["root_wm_pairs"]:
            channel.watermarks.advance(ptime, value)
        self._last_ptime = payload["last_ptime"]
        self._peak_state = payload["peak_state"]
        self._opened = payload["opened"]
        self._timers = [
            (when, seq, operators[i]) for when, seq, i in payload["timers"]
        ]
        heapq.heapify(self._timers)
        self._timer_seq = payload["timer_seq"]
        telemetry = payload.get("telemetry")
        if telemetry is not None:
            channel.telemetry = RunTelemetry()
            channel.telemetry.restore(telemetry)

    def run(self, until: Optional[Timestamp] = None) -> RunResult:
        """Replay all source events (up to ``until``) and collect the result.

        With ``batch_size > 1`` the replay stream is grouped into
        micro-batches — maximal runs of row events that share one
        processing-time instant and one (single-scan) source, capped at
        ``batch_size`` and broken at watermark events — and each batch
        is delivered through the operator tree in one pass.  The
        grouping rule makes the batched changelog byte-identical to the
        per-change one (see :meth:`process_batch`).

        After the last event, pending processing-time timers (e.g.
        tail-of-stream expirations) are drained so the returned
        changelog covers the relation's full known future evolution;
        the materializers then truncate to the instant being queried.
        """
        self._open()
        events = self._merged_events(until)
        if self.batch_size <= 1:
            for event, source in events:
                self.process(event, source)
        else:
            self._run_batched(events)
        self._fire_timers(until if until is not None else MAX_TIMESTAMP)
        return self.result()

    def _run_batched(self, events: list[tuple[StreamEvent, str]]) -> None:
        """The batching scheduler: deliver the replay stream in runs.

        Same grouping rule as :func:`iter_event_runs` (one ptime, one
        batchable source, capped at ``batch_size``, broken at watermark
        events), inlined with the per-source batchability memoized —
        the generator protocol and the repeated leaf lookups are
        measurable at batch-scheduling rates.
        """
        batchable: dict[str, bool] = {}
        zero_leaf: dict[str, bool] = {}
        batch_size = self.batch_size
        process = self.process
        process_batch = self.process_batch
        clock_only = self.lineage is None
        i, n = 0, len(events)
        while i < n:
            event, source = events[i]
            j = i + 1
            ok = batchable.get(source)
            if ok is None:
                ok = batchable[source] = self.batchable_source(source)
                zero_leaf[source] = not self._leaves_by_source.get(
                    source.lower()
                )
            run = None
            if ok and isinstance(event, RowEvent):
                ptime = event.ptime
                run = [event]
                run_append = run.append
                while j < n and len(run) < batch_size:
                    nxt, nxt_source = events[j]
                    if nxt.ptime != ptime:
                        break
                    if nxt_source == source:
                        if not isinstance(nxt, RowEvent):
                            break
                        run_append(nxt)
                        j += 1
                        continue
                    # An event of another source no scan consumes is a
                    # clock no-op at this very instant (nothing to
                    # deliver, no clock movement, no timer can be due
                    # mid-instant) — absorb it so one interleaved
                    # burst still forms one batch.  Only when no
                    # lineage recorder is claiming per-event ordinals.
                    okz = zero_leaf.get(nxt_source)
                    if okz is None:
                        batchable[nxt_source] = self.batchable_source(
                            nxt_source
                        )
                        okz = zero_leaf[nxt_source] = (
                            not self._leaves_by_source.get(nxt_source.lower())
                        )
                    if clock_only and okz:
                        j += 1
                        continue
                    break
            if run is None or len(run) == 1:
                # An event no scan consumes, with no timer due and no
                # lineage recorder claiming ordinals, only advances the
                # processing-time clock — the full delivery path would
                # do exactly that and nothing else.  (The replay stream
                # is ptime-sorted, so the ordering check can't fire.)
                timers = self._timers
                if (
                    clock_only
                    and zero_leaf[source]
                    and not (timers and timers[0][0] <= event.ptime)
                ):
                    if event.ptime > self._last_ptime:
                        self._last_ptime = event.ptime
                else:
                    process(event, source)
            else:
                process_batch(run, source)
            i = j

    def process(self, event: StreamEvent, source: str) -> None:
        """Feed one source event through the dataflow (incremental API)."""
        self._open()
        ptime = event.ptime
        if ptime < self._last_ptime:
            raise ExecutionError("events must be fed in processing-time order")
        timers = self._timers
        fired = bool(timers) and timers[0][0] <= ptime
        if fired:
            self._fire_timers(ptime)
        if ptime > self._last_ptime:
            self._last_ptime = ptime
        cause = self._lineage_cause(event, source)
        leaves = self._leaves_by_source.get(source.lower(), [])
        if isinstance(event, RowEvent):
            for leaf in leaves:
                self._push_changes(leaf, 0, [event.change], cause)
        else:
            for leaf in leaves:
                self._push_watermark(leaf, 0, event.value, ptime, cause)
        if not leaves and not fired:
            # Clock-only event: no operator ran, so no state size moved
            # and the observe_state sweep below would change nothing.
            return
        # One sweep both tracks the dataflow-wide peak and refreshes the
        # per-operator state peaks the metrics layer reports.
        state = self.metrics_registry.observe_state()
        if state > self._peak_state:
            self._peak_state = state

    def process_batch(self, events: Sequence[RowEvent], source: str) -> None:
        """Feed a run of same-instant row events through the dataflow at once.

        Because every operator's batch output is the ordered
        concatenation of its per-change outputs (the :meth:`on_batch`
        contract), delivering a run this way produces — by induction
        over the operator tree — exactly the root changes that feeding
        the events one at a time would have produced, in the same
        order.  Timers due at the batch's instant fire first, as they
        would have before the run's first event; none can fire *inside*
        the run, since operators only ever schedule deadlines strictly
        after the current instant.
        """
        if not events:
            return
        if len(events) == 1:
            self.process(events[0], source)
            return
        self._open()
        ptime = events[0].ptime
        if ptime < self._last_ptime:
            raise ExecutionError("events must be fed in processing-time order")
        for event in events:
            if not isinstance(event, RowEvent) or event.ptime != ptime:
                raise ExecutionError(
                    "a batch must hold row events of a single processing-time "
                    "instant"
                )
        timers = self._timers
        fired = bool(timers) and timers[0][0] <= ptime
        if fired:
            self._fire_timers(ptime)
        if ptime > self._last_ptime:
            self._last_ptime = ptime
        cause = self._lineage_batch_cause(events, source)
        leaves = self._leaves_by_source.get(source.lower(), [])
        if not leaves:
            if fired:
                state = self.metrics_registry.observe_state()
                if state > self._peak_state:
                    self._peak_state = state
            return
        changes = [event.change for event in events]
        if self._columnar_active:
            # One transposition up front; the batch retains ``changes``
            # so a row-only pipeline converts back for free.
            payload = ColumnarBatch.from_changes(
                changes, len(leaves[0].schema)
            )
            for leaf in leaves:
                self._push_changes(leaf, 0, payload, cause)
        else:
            for leaf in leaves:
                self._push_changes(leaf, 0, changes, cause)
        state = self.metrics_registry.observe_state()
        if state > self._peak_state:
            self._peak_state = state

    def batchable_source(self, source: str) -> bool:
        """Whether ``source`` events may be batched without reordering.

        True when the source feeds exactly one scan leaf with at most
        one consumer.  A source scanned several times (NEXMark Q7's
        ``Bid``) must deliver each event to every scan before the next
        event arrives; a *shared* scan with several consumer edges has
        the same per-event interleaving obligation.  A source no scan
        consumes at all is trivially batchable: its events only advance
        the processing-time clock (identically per run or per event,
        since a run holds a single instant).
        """
        leaves = self._leaves_by_source.get(source.lower(), ())
        if not leaves:
            return True
        if len(leaves) != 1:
            return False
        return len(self._consumers.get(id(leaves[0]), ())) <= 1

    def changes_coalesced(self) -> int:
        """Changes dropped by intra-instant compaction, over all operators."""
        return sum(op.counters.changes_coalesced for op in self._operators)

    def finish(self, until: Optional[Timestamp] = None) -> RunResult:
        """Drain pending processing-time timers and return the result.

        The incremental counterpart of the drain ``run()`` performs
        after its last event — use it when driving ``process`` by hand
        and the query has timer-driven operators (tail-of-stream
        views).
        """
        self._fire_timers(until if until is not None else MAX_TIMESTAMP)
        return self.result()

    def result(self) -> RunResult:
        """The result accumulated so far (primary output).

        The drop/expiry totals iterate *every* operator through the
        uniform counters on the base class — an operator that starts
        dropping late rows is accounted for by construction, with no
        per-class allowlist to forget (the old ``isinstance`` tuple
        silently lost OVER and MATCH_RECOGNIZE drops).
        """
        channel = self._outputs[self._primary]
        operators = self._reachable_ops(channel.root)
        return RunResult(
            schema=channel.plan.schema,
            changes=list(channel.changes),
            watermarks=channel.watermarks,
            last_ptime=self._last_ptime,
            late_dropped=sum(op.late_dropped for op in operators),
            expired_rows=sum(op.expired_rows for op in operators),
            peak_state_rows=self._peak_state,
            metrics=self.metrics_report(),
        )

    def metrics_report(self, output_id: Optional[str] = None) -> MetricsReport:
        """The per-operator metrics, shaped as an output's plan tree.

        Entries carry a ``depth`` for rendering, a ``leaf`` flag
        (no inputs wired — the scans rows are routed into), and a
        ``shared_by`` count (output channels reading the operator; the
        renderer annotates entries with ``[shared ×k]`` when k ≥ 2).
        """
        channel = self._outputs[output_id or self._primary]
        entries: list[dict] = []

        def visit(op: Operator, depth: int) -> None:
            producers = sorted(
                self._producers.get(id(op), []), key=lambda pc: pc[0]
            )
            entry = op.metrics()
            entry["depth"] = depth
            entry["leaf"] = not producers
            entry["shared_by"] = self._op_refs.get(id(op), 1)
            entries.append(entry)
            for _, child in producers:
                visit(child, depth + 1)

        visit(channel.root, 0)
        return MetricsReport(operators=entries, telemetry=channel.telemetry)

    # -- internals ---------------------------------------------------------------

    def _reachable_ops(self, root_op: Operator) -> list[Operator]:
        """Operators reachable from ``root_op`` along producer edges,
        children before parents, each exactly once."""
        seen: set[int] = set()
        order: list[Operator] = []

        def visit(op: Operator) -> None:
            if id(op) in seen:
                return
            seen.add(id(op))
            for _, child in self._producers.get(id(op), ()):
                visit(child)
            order.append(op)

        visit(root_op)
        return order

    def _channel_node_ops(self, channel: OutputChannel) -> list[Operator]:
        """The operator every plan node of ``channel`` resolves to, in
        plan post-order (descending *through* shared operators)."""
        ops: list[Operator] = []

        def walk(node: LogicalNode, op: Operator) -> None:
            producers = sorted(
                self._producers.get(id(op), ()), key=lambda pc: pc[0]
            )
            for child_node, (_, child_op) in zip(node.inputs, producers):
                walk(child_node, child_op)
            ops.append(op)

        walk(self._exec_root(channel.plan), channel.root)
        return ops

    def _open(self) -> None:
        if self._opened:
            return
        self._opened = True
        # Open every operator first (children before parents), then
        # propagate initial rows (e.g. the global aggregate's
        # empty-input row) so parents are open when they arrive.
        pending = [(op, op.process_open()) for op in self._operators]
        for op, initial in pending:
            if initial:
                self._emit_up(op, initial)
        # Inline VALUES relations are delivered as a bounded prelude.
        for leaf in self._leaves:
            rows = self._values_rows.get(id(leaf))
            if rows is None:
                continue
            from ..core.changelog import ChangeKind

            self._push_changes(
                leaf,
                0,
                [Change(ChangeKind.INSERT, row, MIN_TIMESTAMP) for row in rows],
            )
            self._push_watermark(leaf, 0, MAX_TIMESTAMP, MIN_TIMESTAMP)

    def _merged_events(
        self, until: Optional[Timestamp]
    ) -> list[tuple[StreamEvent, str]]:
        return merge_source_events(self._sources, until)

    def _lineage_cause(
        self, event: StreamEvent, source: str
    ) -> Optional[tuple[int, ...]]:
        """The cause token for one incoming event (``None`` = untraced).

        When a sharded parent already made the sampling decision for
        this event, its pending token is replayed verbatim; otherwise
        the recorder claims the next per-source ordinal and samples it.
        """
        recorder = self.lineage
        if recorder is None:
            return None
        if recorder.pending_active:
            return recorder.pending
        seq = recorder.offer(source)
        if seq is None:
            return None
        if isinstance(event, RowEvent):
            return recorder.trace_event(
                source,
                seq,
                kind="source",
                values=event.change.values,
                ptime=event.ptime,
            )
        return recorder.trace_event(
            source, seq, kind="watermark", values=event.value, ptime=event.ptime
        )

    def _lineage_batch_cause(
        self, events: Sequence[RowEvent], source: str
    ) -> Optional[tuple[int, ...]]:
        """The merged cause token for a micro-batch of row events.

        Each event claims its own ordinal (so sampling decisions agree
        with per-change execution); the batch's output is attributed to
        every sampled event it contains.
        """
        recorder = self.lineage
        if recorder is None:
            return None
        if recorder.pending_active:
            return recorder.pending
        ids: list[int] = []
        for event in events:
            seq = recorder.offer(source)
            if seq is None:
                continue
            ids.extend(
                recorder.trace_event(
                    source,
                    seq,
                    kind="source",
                    values=event.change.values,
                    ptime=event.ptime,
                )
            )
        return tuple(ids) if ids else None

    def _push_changes(
        self,
        op: Operator,
        port: int,
        changes: list[Change],
        cause: Optional[tuple[int, ...]] = None,
    ) -> None:
        """Deliver changes into ``op`` and propagate its output onward.

        ``changes`` is either a list of :class:`Change` or (columnar
        mode) a :class:`ColumnarBatch`.  A batch is handed to columnar
        operators as-is and converted to rows at the first operator
        that cannot consume it — after which it stays rows; the
        executor never re-columnarizes mid-flight.
        """
        if type(changes) is ColumnarBatch:
            if op.supports_columnar:
                produced = op.process_cols(port, changes)
            else:
                produced = op.process_batch(port, changes.to_changes())
        else:
            produced = op.process_batch(port, changes)
        if not produced:
            return
        if self.coalesce_updates and len(produced) > 1:
            if type(produced) is ColumnarBatch:
                produced = produced.to_changes()
            produced, dropped = compact_intra_instant(produced)
            if dropped:
                op.counters.record_coalesced(dropped)
                if not produced:
                    return
        if cause is not None and self.lineage is not None:
            cause = self.lineage.record_operator(
                cause,
                op.name(),
                shard=self._lineage_shard,
                shared_by=self._op_refs.get(id(op), 1),
                produced=len(produced),
            )
        self._emit_up(op, produced, cause)

    def _emit_up(
        self,
        op: Operator,
        changes: list[Change],
        cause: Optional[tuple[int, ...]] = None,
    ) -> None:
        """Fan an operator's output out: first to any output channels
        rooted at it, then to its consumer edges in attach order."""
        channels = self._outputs_of.get(id(op))
        if channels is not None:
            # Output channels store rows; ``to_changes`` is memoized,
            # so fan-out across channels converts at most once.
            rows = (
                changes.to_changes()
                if type(changes) is ColumnarBatch
                else changes
            )
            for channel in channels:
                self._collect_output(channel, rows, cause)
        for consumer, port in self._consumers.get(id(op), ()):
            self._push_changes(consumer, port, changes, cause)

    def _push_watermark(
        self,
        op: Operator,
        port: int,
        value: Timestamp,
        ptime: Timestamp,
        cause: Optional[tuple[int, ...]] = None,
    ) -> None:
        changes, out_wm = op.process_watermark(port, value, ptime)
        if changes:
            emit_cause = cause
            if emit_cause is not None and self.lineage is not None:
                emit_cause = self.lineage.record_operator(
                    emit_cause,
                    op.name(),
                    shard=self._lineage_shard,
                    shared_by=self._op_refs.get(id(op), 1),
                    produced=len(changes),
                )
            self._emit_up(op, changes, emit_cause)
        if out_wm is None:
            return
        channels = self._outputs_of.get(id(op))
        if channels is not None:
            for channel in channels:
                channel.watermarks.advance(ptime, out_wm)
                if self.trace is not None and channel.output_id == self._primary:
                    self.trace(
                        TraceEvent(
                            kind="watermark",
                            ptime=ptime,
                            value=out_wm,
                            operator=channel.root_name,
                        )
                    )
        for consumer, consumer_port in self._consumers.get(id(op), ()):
            self._push_watermark(consumer, consumer_port, out_wm, ptime, cause)

    def _collect_output(
        self,
        channel: OutputChannel,
        changes: list[Change],
        cause: Optional[tuple[int, ...]] = None,
    ) -> None:
        if cause is not None and self.lineage is not None:
            if self._lineage_register_outputs:
                start = len(channel.changes)
                self.lineage.record_output(
                    cause, channel.output_id, range(start, start + len(changes))
                )
            else:
                self.lineage.note_shard_output(
                    channel.output_id, cause, len(changes)
                )
        channel.changes.extend(changes)
        root_wm = channel.watermarks.current
        completion = channel.completion
        if len(changes) == 1:
            change = changes[0]
            completion_time: Optional[Timestamp] = None
            if completion is not None:
                # Completion columns hold event-time bounds, but outer
                # joins may emit NULLs there; a row with no bound yields
                # no emit-latency sample.
                bounds = [
                    change.values[i]
                    for i in completion
                    if isinstance(change.values[i], int)
                ]
                if bounds:
                    completion_time = max(bounds)
            channel.telemetry.record_emit(change.ptime, completion_time, root_wm)
        else:
            # Batched emission: same samples, bulk-recorded.  The root
            # watermark is constant across the run (batches never span
            # a watermark event), so one lookup covers every change.
            channel.telemetry.record_emit_run(changes, completion, root_wm)
        if self.trace is not None and channel.output_id == self._primary:
            self.trace(
                TraceEvent(
                    kind="batch",
                    ptime=changes[-1].ptime,
                    count=len(changes),
                    operator=channel.root_name,
                )
            )

    # -- timer service -------------------------------------------------------------

    def _schedule_timer(self, when: Timestamp, op: Operator) -> None:
        heapq.heappush(self._timers, (when, self._timer_seq, op))
        self._timer_seq += 1

    def _fire_timers(self, up_to: Timestamp) -> None:
        """Fire pending timers with deadline <= ``up_to``, in order.

        A timer due exactly at an event's instant fires *before* the
        event: a row whose visibility ends at t is no longer visible at
        t.
        """
        while self._timers and self._timers[0][0] <= up_to:
            when, _, op = heapq.heappop(self._timers)
            changes = op.process_timer(when)
            self._last_ptime = max(self._last_ptime, when)
            if changes:
                self._emit_up(op, changes)
