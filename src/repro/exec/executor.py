"""Push-based dataflow execution over time-varying relations.

:class:`Dataflow` compiles a :class:`~repro.plan.planner.QueryPlan`,
binds its scans to registered source TVRs, and replays the sources'
stream events in processing-time order through the operator tree.  The
result is the root's changelog plus its watermark track — i.e. the
output *as a time-varying relation*, from which the materializers in
:mod:`repro.exec.materialize` derive every table/stream rendering the
paper describes.

Determinism: events are processed in (ptime, source registration
order, arrival order) order, and a source consumed by several scans
(e.g. ``Bid`` appearing twice in NEXMark Q7) delivers to the scans in
plan (left-to-right) order.  This makes changelog outputs — including
the intra-instant ordering visible in Listing 9 — reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence

from ..core.changelog import Change, compact_intra_instant
from ..core.errors import ExecutionError
from ..core.relation import Relation
from ..core.schema import Schema
from ..core.times import MAX_TIMESTAMP, MIN_TIMESTAMP, Timestamp
from ..core.tvr import RowEvent, StreamEvent, TimeVaryingRelation, WatermarkEvent
from ..core.watermark import WatermarkTrack
from ..obs.metrics import MetricsRegistry, MetricsReport
from ..obs.telemetry import RunTelemetry
from ..obs.trace import TraceEvent
from ..plan.planner import QueryPlan
from .compile import CompiledPlan, compile_plan
from .operators.base import Operator
from .operators.stateless import ScanOperator

__all__ = ["Dataflow", "RunResult", "iter_event_runs", "merge_source_events"]


def merge_source_events(
    sources: dict[str, TimeVaryingRelation],
    until: Optional[Timestamp] = None,
) -> list[tuple[StreamEvent, str]]:
    """All source events merged in deterministic processing-time order.

    Events are ordered by (ptime, source registration order, arrival
    order) — the exact replay order the serial executor uses.  The
    sharded runtime routes the *same* sequence through its shards, which
    is what lets its merged output reproduce the serial changelog
    byte for byte.

    Each source's events are already ptime-ordered (the ``until``
    cutoff has always relied on that), so the merge is a k-way heap
    merge over the per-source streams — O(n log k) with no second
    materialize-and-sort pass over the combined sequence.
    """

    def tagged(
        source_idx: int, name: str, tvr: TimeVaryingRelation
    ) -> Iterator[tuple[Timestamp, int, int, StreamEvent, str]]:
        for event_idx, event in enumerate(tvr.events()):
            if until is not None and event.ptime > until:
                return
            yield (event.ptime, source_idx, event_idx, event, name)

    streams = [
        tagged(source_idx, name, tvr)
        for source_idx, (name, tvr) in enumerate(sources.items())
    ]
    # (ptime, source_idx, event_idx) is unique per item, so the merge
    # never falls through to comparing the event objects themselves.
    merged = heapq.merge(*streams, key=lambda item: (item[0], item[1], item[2]))
    return [(event, name) for _, _, _, event, name in merged]


def iter_event_runs(
    events: list[tuple[StreamEvent, str]],
    batch_size: int,
    batchable_source: Callable[[str], bool],
) -> Iterator[tuple[int, int]]:
    """Yield ``(start, end)`` slices of a replay stream forming micro-batches.

    A run may only contain consecutive row events with the same ptime
    and the same source, capped at ``batch_size``, and only for sources
    ``batchable_source`` admits (those feeding exactly one scan leaf; a
    multi-scan source delivers each event to all its scans before the
    next event, so batching would reorder the interleaving).  Watermark
    events always break runs, so no operator ever sees its input
    watermark move inside a batch.  Shared by :meth:`Dataflow.run` and
    the shell's ``\\watch`` replay loop.
    """
    i, n = 0, len(events)
    while i < n:
        event, source = events[i]
        j = i + 1
        if isinstance(event, RowEvent) and batchable_source(source):
            ptime = event.ptime
            while (
                j < n
                and j - i < batch_size
                and events[j][1] == source
                and isinstance(events[j][0], RowEvent)
                and events[j][0].ptime == ptime
            ):
                j += 1
        yield i, j
        i = j


@dataclass
class RunResult:
    """The output TVR of a dataflow run, plus runtime statistics.

    ``late_dropped``/``expired_rows``/``peak_state_rows`` are the
    headline totals; ``metrics`` is the full per-operator
    :class:`~repro.obs.metrics.MetricsReport` behind them (rows in/out,
    retractions, state peaks, watermark lag — and, for sharded runs,
    per-shard breakdowns with routing skew).
    """

    schema: Schema
    changes: list[Change]
    watermarks: WatermarkTrack
    last_ptime: Timestamp
    late_dropped: int = 0
    expired_rows: int = 0
    peak_state_rows: int = 0
    metrics: Optional[MetricsReport] = None

    def snapshot(self, at: Timestamp = MAX_TIMESTAMP) -> Relation:
        """Table rendering of the result at processing time ``at``."""
        from ..core.changelog import Changelog

        log = Changelog()
        for change in self.changes:
            if change.ptime <= at:
                log.append(change)
            else:
                break
        return log.snapshot_at(self.schema, at)


class Dataflow:
    """A compiled, source-bound, runnable query."""

    def __init__(
        self,
        plan: QueryPlan,
        sources: dict[str, TimeVaryingRelation],
        allowed_lateness: int = 0,
        batch_size: int = 1,
        coalesce_updates: bool = False,
    ):
        if batch_size < 1:
            raise ExecutionError("batch_size must be >= 1")
        self.plan = plan
        #: maximum row events delivered per micro-batch; 1 = per-change.
        self.batch_size = batch_size
        #: whether intra-instant insert/retract churn is compacted.
        self.coalesce_updates = coalesce_updates
        self._compiled: CompiledPlan = compile_plan(
            plan.root, allowed_lateness=allowed_lateness
        )
        self._sources: dict[str, TimeVaryingRelation] = {
            name.lower(): tvr for name, tvr in sources.items()
        }
        # scan leaves grouped by source, in plan order
        self._leaves_by_source: dict[str, list[ScanOperator]] = {}
        for leaf in self._compiled.leaves:
            key = leaf.source_name.lower()
            self._leaves_by_source.setdefault(key, []).append(leaf)
            if not key.startswith("$values") and key not in self._sources:
                raise ExecutionError(f"no source registered for {leaf.source_name!r}")
        self._root_changes: list[Change] = []
        self._root_wms = WatermarkTrack()
        self._last_ptime: Timestamp = MIN_TIMESTAMP
        self._peak_state = 0
        self._opened = False
        self.metrics_registry = MetricsRegistry(self._compiled.operators)
        #: optional trace hook: a callable receiving
        #: :class:`~repro.obs.trace.TraceEvent` on every root change
        #: batch and root watermark advance.
        self.trace: Optional[Callable[[TraceEvent], None]] = None
        #: latency telemetry sampled at the root: emit latency against
        #: the plan's completion columns, watermark lag at emission.
        self.telemetry = RunTelemetry()
        self._completion = plan.root.completion_indices
        self._root_name = self._compiled.root.name()
        # processing-time timer service: (deadline, seq, operator)
        self._timers: list[tuple[Timestamp, int, Operator]] = []
        self._timer_seq = 0
        for op in self._compiled.operators:
            op.bind_timers(self._schedule_timer)

    # -- public API -----------------------------------------------------------

    @property
    def operators(self) -> list[Operator]:
        return list(self._compiled.operators)

    @property
    def output_size(self) -> int:
        """Number of root changes produced so far (a resumable cursor)."""
        return len(self._root_changes)

    def output_slice(self, start: int) -> list[Change]:
        """Root changes produced since cursor position ``start``.

        Together with :attr:`output_size` this lets a driver attribute
        output changes to the input event that caused them — the hook
        the sharded runtime's deterministic merge stage is built on.
        """
        return self._root_changes[start:]

    @property
    def root_watermark(self) -> Timestamp:
        """The current output watermark of the root operator."""
        return self._root_wms.current

    def total_state_rows(self) -> int:
        """Rows currently retained across all operator state."""
        return sum(op.state_size() for op in self._compiled.operators)

    def rows_ingested(self) -> int:
        """Rows delivered to this dataflow's scan leaves so far.

        On a shard this is exactly the rows the hash router assigned to
        it — the per-shard skew signal the dashboard and the merged
        metrics report display.
        """
        return sum(
            sum(leaf.counters.rows_in) for leaf in self._compiled.leaves
        )

    def state_report(self):
        """Per-operator state breakdown (the Section 5 feedback lesson)."""
        from .state import collect_state

        return collect_state(self)

    # -- checkpoint / recovery ---------------------------------------------------

    def checkpoint(self) -> bytes:
        """A consistent snapshot of the whole dataflow, as bytes.

        This is the capability Appendix B.2.1 describes for Flink:
        "Flink periodically writes a consistent checkpoint of the
        application state … For recovery, the application is restarted
        and all operators are initialized with the state of the last
        completed checkpoint."  Feed the remaining source events to the
        restored dataflow and the results are identical to an
        uninterrupted run (see ``tests/test_checkpoint.py``).

        Call between events (the incremental ``process`` API), not from
        inside a callback.
        """
        import pickle

        op_index = {id(op): i for i, op in enumerate(self._compiled.operators)}
        payload = {
            "op_states": [
                op.state_snapshot() for op in self._compiled.operators
            ],
            "root_changes": list(self._root_changes),
            "root_wm_pairs": self._root_wms.as_pairs(),
            "last_ptime": self._last_ptime,
            "peak_state": self._peak_state,
            "opened": self._opened,
            "timers": [
                (when, seq, op_index[id(op)])
                for when, seq, op in self._timers
            ],
            "timer_seq": self._timer_seq,
            "telemetry": self.telemetry.snapshot(),
        }
        return pickle.dumps(payload)

    def restore(self, checkpoint: bytes) -> None:
        """Restore a checkpoint taken from a dataflow of the same plan."""
        import pickle

        payload = pickle.loads(checkpoint)
        operators = self._compiled.operators
        if len(payload["op_states"]) != len(operators):
            raise ExecutionError(
                "checkpoint does not match this dataflow's plan"
            )
        for op, snapshot in zip(operators, payload["op_states"]):
            op.state_restore(snapshot)
        self._root_changes = list(payload["root_changes"])
        self._root_wms = WatermarkTrack()
        for ptime, value in payload["root_wm_pairs"]:
            self._root_wms.advance(ptime, value)
        self._last_ptime = payload["last_ptime"]
        self._peak_state = payload["peak_state"]
        self._opened = payload["opened"]
        self._timers = [
            (when, seq, operators[i]) for when, seq, i in payload["timers"]
        ]
        heapq.heapify(self._timers)
        self._timer_seq = payload["timer_seq"]
        telemetry = payload.get("telemetry")
        if telemetry is not None:
            self.telemetry.restore(telemetry)

    def run(self, until: Optional[Timestamp] = None) -> RunResult:
        """Replay all source events (up to ``until``) and collect the result.

        With ``batch_size > 1`` the replay stream is grouped into
        micro-batches — maximal runs of row events that share one
        processing-time instant and one (single-scan) source, capped at
        ``batch_size`` and broken at watermark events — and each batch
        is delivered through the operator tree in one pass.  The
        grouping rule makes the batched changelog byte-identical to the
        per-change one (see :meth:`process_batch`).

        After the last event, pending processing-time timers (e.g.
        tail-of-stream expirations) are drained so the returned
        changelog covers the relation's full known future evolution;
        the materializers then truncate to the instant being queried.
        """
        self._open()
        events = self._merged_events(until)
        if self.batch_size <= 1:
            for event, source in events:
                self.process(event, source)
        else:
            self._run_batched(events)
        self._fire_timers(until if until is not None else MAX_TIMESTAMP)
        return self.result()

    def _run_batched(self, events: list[tuple[StreamEvent, str]]) -> None:
        """The batching scheduler: deliver the replay stream in runs."""
        for i, j in iter_event_runs(events, self.batch_size, self.batchable_source):
            if j == i + 1:
                self.process(*events[i])
            else:
                self.process_batch(
                    [pair[0] for pair in events[i:j]], events[i][1]
                )

    def process(self, event: StreamEvent, source: str) -> None:
        """Feed one source event through the dataflow (incremental API)."""
        self._open()
        if event.ptime < self._last_ptime:
            raise ExecutionError("events must be fed in processing-time order")
        self._fire_timers(event.ptime)
        self._last_ptime = max(self._last_ptime, event.ptime)
        leaves = self._leaves_by_source.get(source.lower(), [])
        if isinstance(event, RowEvent):
            for leaf in leaves:
                self._push_changes(leaf, 0, [event.change])
        else:
            for leaf in leaves:
                self._push_watermark(leaf, 0, event.value, event.ptime)
        # One sweep both tracks the dataflow-wide peak and refreshes the
        # per-operator state peaks the metrics layer reports.
        state = self.metrics_registry.observe_state()
        if state > self._peak_state:
            self._peak_state = state

    def process_batch(self, events: Sequence[RowEvent], source: str) -> None:
        """Feed a run of same-instant row events through the dataflow at once.

        Because every operator's batch output is the ordered
        concatenation of its per-change outputs (the :meth:`on_batch`
        contract), delivering a run this way produces — by induction
        over the operator tree — exactly the root changes that feeding
        the events one at a time would have produced, in the same
        order.  Timers due at the batch's instant fire first, as they
        would have before the run's first event; none can fire *inside*
        the run, since operators only ever schedule deadlines strictly
        after the current instant.
        """
        if not events:
            return
        if len(events) == 1:
            self.process(events[0], source)
            return
        self._open()
        ptime = events[0].ptime
        if ptime < self._last_ptime:
            raise ExecutionError("events must be fed in processing-time order")
        for event in events:
            if not isinstance(event, RowEvent) or event.ptime != ptime:
                raise ExecutionError(
                    "a batch must hold row events of a single processing-time "
                    "instant"
                )
        self._fire_timers(ptime)
        self._last_ptime = max(self._last_ptime, ptime)
        changes = [event.change for event in events]
        for leaf in self._leaves_by_source.get(source.lower(), []):
            self._push_changes(leaf, 0, changes)
        state = self.metrics_registry.observe_state()
        if state > self._peak_state:
            self._peak_state = state

    def batchable_source(self, source: str) -> bool:
        """Whether ``source`` events may be batched without reordering.

        True when the source feeds exactly one scan leaf; a source
        scanned several times (NEXMark Q7's ``Bid``) must deliver each
        event to every scan before the next event arrives.
        """
        return len(self._leaves_by_source.get(source.lower(), ())) == 1

    def changes_coalesced(self) -> int:
        """Changes dropped by intra-instant compaction, over all operators."""
        return sum(
            op.counters.changes_coalesced for op in self._compiled.operators
        )

    def finish(self, until: Optional[Timestamp] = None) -> RunResult:
        """Drain pending processing-time timers and return the result.

        The incremental counterpart of the drain ``run()`` performs
        after its last event — use it when driving ``process`` by hand
        and the query has timer-driven operators (tail-of-stream
        views).
        """
        self._fire_timers(until if until is not None else MAX_TIMESTAMP)
        return self.result()

    def result(self) -> RunResult:
        """The result accumulated so far.

        The drop/expiry totals iterate *every* operator through the
        uniform counters on the base class — an operator that starts
        dropping late rows is accounted for by construction, with no
        per-class allowlist to forget (the old ``isinstance`` tuple
        silently lost OVER and MATCH_RECOGNIZE drops).
        """
        operators = self._compiled.operators
        return RunResult(
            schema=self.plan.schema,
            changes=list(self._root_changes),
            watermarks=self._root_wms,
            last_ptime=self._last_ptime,
            late_dropped=sum(op.late_dropped for op in operators),
            expired_rows=sum(op.expired_rows for op in operators),
            peak_state_rows=self._peak_state,
            metrics=self.metrics_report(),
        )

    def metrics_report(self) -> MetricsReport:
        """The per-operator metrics, shaped as the plan tree (pre-order).

        Entries carry a ``depth`` for rendering and a ``leaf`` flag
        (no inputs wired — the scans rows are routed into), which the
        sharded merge uses to measure rows routed per shard.
        """
        children: dict[int, list[tuple[int, Operator]]] = {}
        for op in self._compiled.operators:
            parent_entry = self._compiled.parents.get(id(op))
            if parent_entry is not None:
                parent, port = parent_entry
                children.setdefault(id(parent), []).append((port, op))
        entries: list[dict] = []

        def visit(op: Operator, depth: int) -> None:
            kids = sorted(children.get(id(op), []), key=lambda pc: pc[0])
            entry = op.metrics()
            entry["depth"] = depth
            entry["leaf"] = not kids
            entries.append(entry)
            for _, child in kids:
                visit(child, depth + 1)

        visit(self._compiled.root, 0)
        return MetricsReport(operators=entries, telemetry=self.telemetry)

    # -- internals ---------------------------------------------------------------

    def _open(self) -> None:
        if self._opened:
            return
        self._opened = True
        # Open every operator first (children before parents), then
        # propagate initial rows (e.g. the global aggregate's
        # empty-input row) so parents are open when they arrive.
        pending = [(op, op.process_open()) for op in self._compiled.operators]
        for op, initial in pending:
            if initial:
                self._emit_up(op, initial)
        # Inline VALUES relations are delivered as a bounded prelude.
        for leaf in self._compiled.leaves:
            rows = self._compiled.values_rows.get(id(leaf))
            if rows is None:
                continue
            from ..core.changelog import ChangeKind

            self._push_changes(
                leaf,
                0,
                [Change(ChangeKind.INSERT, row, MIN_TIMESTAMP) for row in rows],
            )
            self._push_watermark(leaf, 0, MAX_TIMESTAMP, MIN_TIMESTAMP)

    def _merged_events(
        self, until: Optional[Timestamp]
    ) -> list[tuple[StreamEvent, str]]:
        return merge_source_events(self._sources, until)

    def _push_changes(self, op: Operator, port: int, changes: list[Change]) -> None:
        """Deliver changes into ``op`` and propagate its output upward."""
        produced = op.process_batch(port, changes)
        if not produced:
            return
        if self.coalesce_updates and len(produced) > 1:
            produced, dropped = compact_intra_instant(produced)
            if dropped:
                op.counters.record_coalesced(dropped)
                if not produced:
                    return
        self._emit_up(op, produced)

    def _emit_up(self, op: Operator, changes: list[Change]) -> None:
        parent_entry = self._compiled.parents.get(id(op))
        if parent_entry is None:
            self._collect_root(changes)
            return
        parent, port = parent_entry
        self._push_changes(parent, port, changes)

    def _push_watermark(
        self, op: Operator, port: int, value: Timestamp, ptime: Timestamp
    ) -> None:
        changes, out_wm = op.process_watermark(port, value, ptime)
        if changes:
            self._emit_up(op, changes)
        if out_wm is None:
            return
        parent_entry = self._compiled.parents.get(id(op))
        if parent_entry is None:
            self._root_wms.advance(ptime, out_wm)
            if self.trace is not None:
                self.trace(
                    TraceEvent(
                        kind="watermark",
                        ptime=ptime,
                        value=out_wm,
                        operator=self._root_name,
                    )
                )
            return
        parent, parent_port = parent_entry
        self._push_watermark(parent, parent_port, out_wm, ptime)

    def _collect_root(self, changes: list[Change]) -> None:
        self._root_changes.extend(changes)
        root_wm = self._root_wms.current
        completion = self._completion
        if len(changes) == 1:
            change = changes[0]
            completion_time: Optional[Timestamp] = None
            if completion is not None:
                # Completion columns hold event-time bounds, but outer
                # joins may emit NULLs there; a row with no bound yields
                # no emit-latency sample.
                bounds = [
                    change.values[i]
                    for i in completion
                    if isinstance(change.values[i], int)
                ]
                if bounds:
                    completion_time = max(bounds)
            self.telemetry.record_emit(change.ptime, completion_time, root_wm)
        else:
            # Batched emission: same samples, bulk-recorded.  The root
            # watermark is constant across the run (batches never span
            # a watermark event), so one lookup covers every change.
            self.telemetry.record_emit_run(changes, completion, root_wm)
        if self.trace is not None:
            self.trace(
                TraceEvent(
                    kind="batch",
                    ptime=changes[-1].ptime,
                    count=len(changes),
                    operator=self._root_name,
                )
            )

    # -- timer service -------------------------------------------------------------

    def _schedule_timer(self, when: Timestamp, op: Operator) -> None:
        heapq.heappush(self._timers, (when, self._timer_seq, op))
        self._timer_seq += 1

    def _fire_timers(self, up_to: Timestamp) -> None:
        """Fire pending timers with deadline <= ``up_to``, in order.

        A timer due exactly at an event's instant fires *before* the
        event: a row whose visibility ends at t is no longer visible at
        t.
        """
        while self._timers and self._timers[0][0] <= up_to:
            when, _, op = heapq.heappop(self._timers)
            changes = op.process_timer(when)
            self._last_ptime = max(self._last_ptime, when)
            if changes:
                self._emit_up(op, changes)
