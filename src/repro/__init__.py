"""repro: a reproduction of "One SQL to Rule Them All" (SIGMOD 2019).

A streaming SQL engine over time-varying relations with event-time
semantics (watermarks, windowing TVFs) and materialization control
(EMIT STREAM / AFTER WATERMARK / AFTER DELAY), plus the CQL baseline
and the NEXMark workload the paper builds its examples on.

Quickstart::

    from repro import StreamEngine, TimeVaryingRelation, Schema
    from repro import timestamp_col, int_col, string_col, t, minutes

    bid = TimeVaryingRelation(Schema([
        timestamp_col("bidtime", event_time=True),
        int_col("price"),
        string_col("item"),
    ]))
    bid.advance_watermark(t("8:07"), t("8:05"))
    bid.insert(t("8:08"), (t("8:07"), 2, "A"))

    engine = StreamEngine()
    engine.register_stream("Bid", bid)
    print(engine.query("SELECT * FROM Bid").table().to_table())
"""

from .core import (
    MAX_TIMESTAMP,
    MIN_TIMESTAMP,
    BoundedOutOfOrderness,
    Change,
    ChangeKind,
    Changelog,
    Column,
    Duration,
    EmitSpec,
    ExecutionError,
    LexError,
    ParseError,
    PlanError,
    PunctuatedWatermarks,
    Relation,
    ReproError,
    Row,
    RowEvent,
    Schema,
    SchemaError,
    SqlError,
    SqlType,
    StreamEvent,
    Timestamp,
    TimeVaryingRelation,
    ValidationError,
    WatermarkError,
    WatermarkEvent,
    WatermarkTrack,
    bool_col,
    days,
    float_col,
    fmt_duration,
    fmt_time,
    hours,
    ins,
    int_col,
    millis,
    minutes,
    rm,
    seconds,
    string_col,
    t,
    timestamp_col,
    wm,
)
from .config import ExecutionConfig
from .engine import PreparedQuery, StreamEngine
from .exec import DeltaChange, StateReport, StreamChange
from .explain import EXPLAIN_MODES, parse_explain, render_explain
from .io import format_script, parse_script
from .obs import (
    Histogram,
    MetricsReport,
    RecoveryStats,
    RunTelemetry,
    TraceCollector,
    TraceEvent,
)
from .obs.export import JsonLinesExporter, PrometheusExporter, make_exporter
from .plan.physical import (
    MIN_COMBINE_FANIN,
    PhysicalDecision,
    TwoPhaseSplit,
    plan_physical,
    split_eligibility,
)
from .runtime.faults import FaultPlan, FaultSpec
from .runtime.supervisor import RetryPolicy

__version__ = "1.2.0"

__all__ = [
    "StreamEngine",
    "PreparedQuery",
    "ExecutionConfig",
    "RetryPolicy",
    "FaultPlan",
    "FaultSpec",
    "RecoveryStats",
    "StreamChange",
    "DeltaChange",
    "StateReport",
    "MetricsReport",
    "Histogram",
    "RunTelemetry",
    "TraceEvent",
    "TraceCollector",
    "JsonLinesExporter",
    "PrometheusExporter",
    "make_exporter",
    "parse_script",
    "format_script",
    # explain API (stable)
    "EXPLAIN_MODES",
    "parse_explain",
    "render_explain",
    # physical aggregation planning (provisional)
    "MIN_COMBINE_FANIN",
    "PhysicalDecision",
    "TwoPhaseSplit",
    "plan_physical",
    "split_eligibility",
    # re-exported core API
    "Timestamp",
    "Duration",
    "MIN_TIMESTAMP",
    "MAX_TIMESTAMP",
    "millis",
    "seconds",
    "minutes",
    "hours",
    "days",
    "t",
    "fmt_time",
    "fmt_duration",
    "SqlType",
    "Column",
    "Schema",
    "int_col",
    "float_col",
    "string_col",
    "bool_col",
    "timestamp_col",
    "Row",
    "Relation",
    "ChangeKind",
    "Change",
    "Changelog",
    "TimeVaryingRelation",
    "StreamEvent",
    "RowEvent",
    "WatermarkEvent",
    "ins",
    "rm",
    "wm",
    "WatermarkTrack",
    "BoundedOutOfOrderness",
    "PunctuatedWatermarks",
    "EmitSpec",
    "ReproError",
    "SqlError",
    "LexError",
    "ParseError",
    "ValidationError",
    "PlanError",
    "ExecutionError",
    "SchemaError",
    "WatermarkError",
]
