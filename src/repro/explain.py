"""One EXPLAIN API over every introspection surface.

Every way of asking "what will (did) this query do" — the engine's
``explain()``, a prepared query's ``explain()``, the shell's
``\\explain`` and ``EXPLAIN ...`` statements — renders through
:func:`render_explain`, parameterized by one ``mode``:

* ``logical`` — the optimized logical plan, plus the runtime note
  (sharded-by or the serial fallback reason) when parallelism is
  configured.
* ``physical`` — ``logical`` plus the physical aggregation shape: the
  combine-stage tree and the per-shard partial tree for a two-phase
  plan, or the single-phase reason.
* ``costs`` — ``physical`` plus the cost-model inputs: the configured
  knob, the observed fan-in from counter feedback, the combine
  threshold, and the resulting decision.
* ``analyze`` — ``logical`` plus per-operator runtime counters from an
  actual execution (the old ``explain_analyze``).

SQL spellings map onto the same modes: ``EXPLAIN q`` is ``logical``,
``EXPLAIN (PHYSICAL) q`` / ``EXPLAIN (COSTS) q`` select a mode, and
``EXPLAIN ANALYZE q`` is ``analyze`` (:func:`parse_explain`).
"""

from __future__ import annotations

import re
from typing import Optional

from .core.errors import ValidationError
from .plan.physical import MIN_COMBINE_FANIN, split_eligibility
from .plan.pipeline import PipelineNode, get_fused_root

__all__ = ["EXPLAIN_MODES", "parse_explain", "render_explain"]

EXPLAIN_MODES = ("logical", "physical", "costs", "analyze")

_EXPLAIN_RE = re.compile(
    r"^explain(\s+analyze)?(?:\s*\(\s*([a-z]+)\s*\))?\s+(.+)$",
    re.IGNORECASE | re.DOTALL,
)


def parse_explain(sql: str) -> Optional[tuple[str, str]]:
    """Split an ``EXPLAIN`` statement into ``(mode, inner sql)``.

    Returns ``None`` when ``sql`` is not an EXPLAIN statement at all;
    raises :class:`ValidationError` for an unknown mode or the
    contradictory ``EXPLAIN ANALYZE (mode)`` spelling.
    """
    match = _EXPLAIN_RE.match(sql.strip())
    if match is None:
        return None
    analyze, mode, inner = match.groups()
    if mode is not None:
        mode = mode.lower()
        if mode not in EXPLAIN_MODES:
            raise ValidationError(
                f"unknown EXPLAIN mode {mode!r}; expected one of "
                f"{', '.join(EXPLAIN_MODES)}"
            )
        if analyze and mode != "analyze":
            raise ValidationError(
                "EXPLAIN ANALYZE takes no mode parenthetical; use "
                f"EXPLAIN ({mode.upper()}) instead"
            )
        return mode, inner
    return ("analyze" if analyze else "logical"), inner


def render_explain(query, mode: str = "logical", verbose: bool = False) -> str:
    """Render one explain ``mode`` for a prepared query.

    ``query`` is a :class:`~repro.engine.PreparedQuery`; ``analyze``
    executes it over the registered sources, the other modes only plan.
    """
    if mode not in EXPLAIN_MODES:
        raise ValidationError(
            f"unknown explain mode {mode!r}; expected one of "
            f"{', '.join(EXPLAIN_MODES)}"
        )
    text = _logical(query, verbose)
    if mode == "analyze":
        result = query.run()
        if result.metrics is not None:
            text = f"{text}\n{result.metrics.render()}"
        return text
    if mode in ("physical", "costs"):
        text = f"{text}\n{_physical_section(query, verbose)}"
        text = f"{text}\n{_columnar_section(query)}"
    if mode == "costs":
        text = f"{text}\n{_costs_section(query)}"
    return text


def _logical(query, verbose: bool) -> str:
    """The optimized plan plus the runtime note (the historical text)."""
    text = query.plan.explain(verbose=verbose)
    effective = query._effective()
    if effective.parallelism > 1:
        decision = query.partition_decision()
        if decision.partitionable:
            note = (
                f"Runtime: sharded({effective.parallelism}) by "
                f"{decision.spec.description} [{effective.backend}]"
            )
        else:
            note = f"Runtime: serial — {decision.reason}"
        text = f"{text.rstrip()}\n{note}"
    return text.rstrip()


def _physical_section(query, verbose: bool) -> str:
    physical = query.physical_decision()
    if not physical.use_two_phase:
        return f"Physical: single-phase — {physical.reason}"
    split, _ = split_eligibility(query.plan)
    assert split is not None  # use_two_phase implies eligibility
    effective = query._effective()
    payload = "delta" if effective.coalesce_updates else "replay"
    lines = [
        f"Physical: two-phase aggregation ({payload} payloads) — "
        f"{physical.reason}",
        "  merge stage:",
    ]
    depth = 2
    for node in split.finish:
        lines.append("  " * depth + node._describe())
        depth += 1
    lines.append("  " * depth + "Combine" + split.aggregate._describe())
    lines.append(f"  each of {effective.parallelism} shards:")
    lines.append(split.shard_plan.root.explain(2, verbose).rstrip("\n"))
    return "\n".join(lines)


def _columnar_section(query) -> str:
    """The columnar execution shape: the fused tree, annotated.

    ``[columnar]`` marks operators that consume column batches;
    ``[fused: ...]`` marks Filter/Project chains collapsed into one
    generated pipeline loop.  Rendered only from the plan — the same
    fusion the executor applies (:func:`get_fused_root`), so the tree
    shown is the tree that runs.
    """
    effective = query._effective()
    active = effective.columnar == "on" or (
        effective.columnar == "auto" and effective.batch_size > 1
    )
    if not active:
        return (
            f"Columnar: off — row-at-a-time batches "
            f"(columnar={effective.columnar}, "
            f"batch_size={effective.batch_size})"
        )
    from .exec.compile import compile_plan

    root = get_fused_root(query.plan)
    compiled = compile_plan(
        root, allowed_lateness=effective.allowed_lateness
    )
    ops = {id(node): op for node, op in compiled.node_ops}
    lines = [
        f"Columnar: on (columnar={effective.columnar}, "
        f"batch_size={effective.batch_size})"
    ]

    def walk(node, depth: int) -> None:
        tags = ""
        if ops[id(node)].supports_columnar:
            tags += " [columnar]"
        if isinstance(node, PipelineNode):
            tags += f" [fused: {node.step_kinds()}]"
        lines.append("  " * depth + node._describe() + tags)
        for child in node.inputs:
            walk(child, depth + 1)

    walk(root, 1)
    return "\n".join(lines)


def _costs_section(query) -> str:
    effective = query._effective()
    physical = query.physical_decision()
    lines = [
        f"Costs: two_phase={effective.two_phase}, "
        f"parallelism={effective.parallelism}"
    ]
    if physical.fan_in is not None:
        lines.append(
            f"  observed fan-in: {physical.fan_in:.2f} rows/group "
            f"(combine threshold {MIN_COMBINE_FANIN:g})"
        )
    else:
        lines.append(
            f"  observed fan-in: no counter feedback yet "
            f"(combine threshold {MIN_COMBINE_FANIN:g}; run the query "
            "once to inform auto mode)"
        )
    lines.append(f"  decision: {physical.mode} — {physical.reason}")
    return "\n".join(lines)
