"""A parser and evaluator for the CQL dialect of Listing 1.

The paper presents NEXMark Query 7 in CQL before giving its own
formulation::

    SELECT
      Rstream(B.price, B.itemid)
    FROM
      Bid [RANGE 10 MINUTE SLIDE 10 MINUTE] B
    WHERE
      B.price =
      (SELECT MAX(B1.price) FROM Bid
       [RANGE 10 MINUTE SLIDE 10 MINUTE] B1);

This module executes that text directly on the CQL baseline.  The
supported subset covers CQL's three operator classes:

* **stream-to-relation**: ``[RANGE d [SLIDE s]]``, ``[ROWS n]``,
  ``[NOW]``, ``[RANGE UNBOUNDED]`` window specifications;
* **relation-to-relation**: projection, selection (including scalar
  subqueries, evaluated at the same logical tick — CQL's lock-step
  time), aggregation (MAX/MIN/SUM/AVG/COUNT over the windowed
  relation);
* **relation-to-stream**: ``Rstream`` / ``Istream`` / ``Dstream``
  wrapped around the select list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Union

from ..core.errors import ParseError, ValidationError
from ..core.relation import Relation
from ..core.schema import Column, Schema, SqlType
from ..core.times import (
    MILLIS_PER_DAY,
    MILLIS_PER_HOUR,
    MILLIS_PER_MINUTE,
    MILLIS_PER_SECOND,
)
from ..sql.lexer import Token, TokenType, tokenize
from .stream import CqlStream
from .windows import (
    RelationSequence,
    now_window,
    range_window,
    rows_window,
    unbounded_window,
)
from .streamops import dstream, istream, rstream

__all__ = ["parse_cql", "CqlQuery"]

_UNITS = {
    "MILLISECOND": 1,
    "SECOND": MILLIS_PER_SECOND,
    "MINUTE": MILLIS_PER_MINUTE,
    "HOUR": MILLIS_PER_HOUR,
    "DAY": MILLIS_PER_DAY,
}
_AGGREGATES = {"MAX", "MIN", "SUM", "AVG", "COUNT"}


@dataclass(frozen=True)
class _Window:
    kind: str  # "range" | "rows" | "now" | "unbounded"
    range_: Optional[int] = None
    slide: Optional[int] = None
    rows: Optional[int] = None


@dataclass(frozen=True)
class _StreamRef:
    name: str
    window: _Window
    alias: Optional[str]


# Expressions are interpreted; an expression node is a closure over a
# per-tick evaluation context.
@dataclass
class _Context:
    schema: Schema
    aliases: dict[str, Schema]  # alias -> schema (for qualified refs)
    offsets: dict[str, int]
    relation_at: Callable[[int], Relation]  # for scalar subqueries
    tick: int
    row: tuple


class CqlQuery:
    """A parsed CQL statement, evaluable against named CqlStreams."""

    def __init__(
        self,
        stream_op: Optional[str],
        select: Sequence[tuple["_Expr", Optional[str]]],
        from_refs: Sequence[_StreamRef],
        where: Optional["_Expr"],
    ):
        self.stream_op = stream_op
        self.select = list(select)
        self.from_refs = list(from_refs)
        self.where = where

    def evaluate(
        self, streams: dict[str, CqlStream]
    ) -> Union[CqlStream, RelationSequence]:
        """Run the query; Rstream/Istream/Dstream give a CqlStream."""
        sequence = _evaluate_select(self, streams)
        if self.stream_op == "RSTREAM":
            return rstream(sequence)
        if self.stream_op == "ISTREAM":
            return istream(sequence)
        if self.stream_op == "DSTREAM":
            return dstream(sequence)
        return sequence


# ---------------------------------------------------------------------------
# expression AST (tiny, interpretable)
# ---------------------------------------------------------------------------


class _Expr:
    def evaluate(self, ctx: _Context) -> Any:
        raise NotImplementedError

    #: column name this expression would get in an output schema
    def output_name(self, i: int) -> str:
        return f"col{i}"

    @property
    def is_aggregate(self) -> bool:
        return False


@dataclass
class _Literal(_Expr):
    value: Any

    def evaluate(self, ctx: _Context) -> Any:
        return self.value


@dataclass
class _ColumnRef(_Expr):
    parts: tuple[str, ...]

    def resolve(self, ctx: _Context) -> int:
        if len(self.parts) == 2:
            alias, column = self.parts
            schema = ctx.aliases.get(alias.lower())
            if schema is None:
                raise ValidationError(f"unknown CQL alias {alias!r}")
            return ctx.offsets[alias.lower()] + schema.index_of(column)
        return ctx.schema.index_of(self.parts[0])

    def evaluate(self, ctx: _Context) -> Any:
        return ctx.row[self.resolve(ctx)]

    def output_name(self, i: int) -> str:
        return self.parts[-1]


@dataclass
class _Binary(_Expr):
    op: str
    left: _Expr
    right: _Expr

    def evaluate(self, ctx: _Context) -> Any:
        a = self.left.evaluate(ctx)
        b = self.right.evaluate(ctx)
        if a is None or b is None:
            return None
        return {
            "=": lambda: a == b,
            "<>": lambda: a != b,
            "<": lambda: a < b,
            "<=": lambda: a <= b,
            ">": lambda: a > b,
            ">=": lambda: a >= b,
            "+": lambda: a + b,
            "-": lambda: a - b,
            "*": lambda: a * b,
            "/": lambda: a / b,
            "AND": lambda: a and b,
            "OR": lambda: a or b,
        }[self.op]()

    @property
    def is_aggregate(self) -> bool:
        return self.left.is_aggregate or self.right.is_aggregate


@dataclass
class _Aggregate(_Expr):
    fn: str
    arg: Optional[_ColumnRef]  # None for COUNT(*)

    def evaluate(self, ctx: _Context) -> Any:
        relation = ctx.relation_at(ctx.tick)
        if self.arg is None:
            return len(relation)
        index = self.arg.resolve(ctx)
        values = [r[index] for r in relation.tuples if r[index] is not None]
        if self.fn == "COUNT":
            return len(values)
        if not values:
            return None
        if self.fn == "MAX":
            return max(values)
        if self.fn == "MIN":
            return min(values)
        if self.fn == "SUM":
            return sum(values)
        return sum(values) / len(values)  # AVG

    def output_name(self, i: int) -> str:
        return self.fn.lower()

    @property
    def is_aggregate(self) -> bool:
        return True


@dataclass
class _Subquery(_Expr):
    query: CqlQuery
    #: bound lazily at evaluation: tick -> scalar
    _streams: Optional[dict] = None

    def evaluate(self, ctx: _Context) -> Any:
        sequence = _evaluate_select(self.query, self._streams or {})
        relation = sequence.at(ctx.tick)
        rows = relation.tuples
        if not rows:
            return None
        if len(rows) > 1 or len(rows[0]) != 1:
            raise ValidationError("CQL scalar subquery returned more than one value")
        return rows[0][0]


# ---------------------------------------------------------------------------
# evaluation
# ---------------------------------------------------------------------------


def _window_sequence(stream: CqlStream, window: _Window) -> RelationSequence:
    if window.kind == "range":
        return range_window(stream, window.range_, window.slide)
    if window.kind == "rows":
        slide = window.slide or MILLIS_PER_MINUTE
        return rows_window(stream, window.rows, slide)
    if window.kind == "now":
        return now_window(stream, window.slide or MILLIS_PER_MINUTE)
    return unbounded_window(stream, window.slide or MILLIS_PER_MINUTE)


def _evaluate_select(
    query: CqlQuery, streams: dict[str, CqlStream]
) -> RelationSequence:
    sequences: list[tuple[_StreamRef, RelationSequence]] = []
    for ref in query.from_refs:
        stream = streams.get(ref.name.lower())
        if stream is None:
            raise ValidationError(f"unknown CQL stream {ref.name!r}")
        sequences.append((ref, _window_sequence(stream, ref.window)))

    # lock-step time: all windowed inputs share their ticks
    base_ref, base_seq = sequences[0]
    ticks = base_seq.ticks
    for _, other in sequences[1:]:
        if other.ticks != ticks:
            raise ValidationError(
                "CQL relation sequences must share ticks (same SLIDE)"
            )

    aliases: dict[str, Schema] = {}
    offsets: dict[str, int] = {}
    offset = 0
    for ref, seq in sequences:
        key = (ref.alias or ref.name).lower()
        aliases[key] = seq.schema
        offsets[key] = offset
        offset += len(seq.schema)
    combined_schema = sequences[0][1].schema
    for _, seq in sequences[1:]:
        combined_schema = combined_schema.concat(seq.schema)

    # bind subqueries to the same stream catalog
    for expr, _ in query.select:
        _bind_subqueries(expr, streams)
    if query.where is not None:
        _bind_subqueries(query.where, streams)

    def _no_aggregates_in_where(tick: int) -> Relation:
        raise ValidationError("aggregates are not allowed in CQL WHERE")

    def relation_at(tick: int) -> Relation:
        relation = sequences[0][1].at(tick)
        for _, seq in sequences[1:]:
            other = seq.at(tick)
            rows = [a + b for a in relation.tuples for b in other.tuples]
            relation = Relation(combined_schema, rows)
        if query.where is not None:
            kept = []
            for row in relation.tuples:
                ctx = _Context(
                    combined_schema,
                    aliases,
                    offsets,
                    _no_aggregates_in_where,
                    tick,
                    row,
                )
                if query.where.evaluate(ctx) is True:
                    kept.append(row)
            relation = Relation(combined_schema, kept)
        return relation

    aggregated = any(expr.is_aggregate for expr, _ in query.select)
    out_cols = []
    for i, (expr, alias) in enumerate(query.select):
        out_cols.append(Column(alias or expr.output_name(i), SqlType.FLOAT))
    # make output column names unique
    seen: set[str] = set()
    unique_cols = []
    for col in out_cols:
        name = col.name
        n = 0
        while name.lower() in seen:
            name = f"{col.name}{n}"
            n += 1
        seen.add(name.lower())
        unique_cols.append(Column(name, col.type))
    out_schema = Schema(unique_cols)

    def project_at(tick: int) -> Relation:
        relation = relation_at(tick)
        if aggregated:
            ctx = _Context(
                combined_schema, aliases, offsets, relation_at, tick, ()
            )
            row = tuple(expr.evaluate(ctx) for expr, _ in query.select)
            return Relation(out_schema, [row])
        rows = []
        for row in relation.tuples:
            ctx = _Context(
                combined_schema, aliases, offsets, relation_at, tick, row
            )
            rows.append(tuple(expr.evaluate(ctx) for expr, _ in query.select))
        return Relation(out_schema, rows)

    return RelationSequence(out_schema, ticks, project_at)


def _bind_subqueries(expr: _Expr, streams: dict[str, CqlStream]) -> None:
    if isinstance(expr, _Subquery):
        expr._streams = streams
        for child, _ in expr.query.select:
            _bind_subqueries(child, streams)
        if expr.query.where is not None:
            _bind_subqueries(expr.query.where, streams)
    elif isinstance(expr, _Binary):
        _bind_subqueries(expr.left, streams)
        _bind_subqueries(expr.right, streams)


# ---------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------


def parse_cql(text: str) -> CqlQuery:
    """Parse one CQL statement (Listing 1 dialect)."""
    return _CqlParser(text).parse()


class _CqlParser:
    def __init__(self, text: str):
        self._text = text
        self._tokens = tokenize(text)
        self._i = 0

    @property
    def _cur(self) -> Token:
        return self._tokens[self._i]

    def _advance(self) -> Token:
        token = self._cur
        if token.type is not TokenType.EOF:
            self._i += 1
        return token

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self._text, self._cur.pos)

    def _at_word(self, *words: str) -> bool:
        return (
            self._cur.type in (TokenType.IDENT, TokenType.KEYWORD)
            and self._cur.upper in words
        )

    def _accept_word(self, *words: str) -> bool:
        if self._at_word(*words):
            self._advance()
            return True
        return False

    def _expect_word(self, word: str) -> None:
        if not self._accept_word(word):
            raise self._error(f"expected {word}, found {self._cur}")

    def _at_op(self, *ops: str) -> bool:
        return self._cur.type is TokenType.OP and self._cur.value in ops

    def _accept_op(self, *ops: str) -> bool:
        if self._at_op(*ops):
            self._advance()
            return True
        return False

    def _expect_op(self, op: str) -> None:
        if not self._accept_op(op):
            raise self._error(f"expected {op!r}, found {self._cur}")

    # -- grammar -----------------------------------------------------------

    def parse(self) -> CqlQuery:
        query = self._select()
        self._accept_op(";")
        if self._cur.type is not TokenType.EOF:
            raise self._error("unexpected trailing input")
        return query

    def _select(self) -> CqlQuery:
        self._expect_word("SELECT")
        stream_op: Optional[str] = None
        select: list[tuple[_Expr, Optional[str]]] = []
        if self._at_word("RSTREAM", "ISTREAM", "DSTREAM"):
            stream_op = self._advance().upper
            self._expect_op("(")
            select.append(self._select_item())
            while self._accept_op(","):
                select.append(self._select_item())
            self._expect_op(")")
        else:
            select.append(self._select_item())
            while self._accept_op(","):
                select.append(self._select_item())

        self._expect_word("FROM")
        from_refs = [self._stream_ref()]
        while self._accept_op(","):
            from_refs.append(self._stream_ref())

        where = None
        if self._accept_word("WHERE"):
            where = self._expr()
        return CqlQuery(stream_op, select, from_refs, where)

    def _select_item(self) -> tuple[_Expr, Optional[str]]:
        expr = self._expr()
        alias = None
        if self._accept_word("AS"):
            alias = self._advance().value
        elif self._cur.type is TokenType.IDENT:
            alias = self._advance().value
        return expr, alias

    def _stream_ref(self) -> _StreamRef:
        if self._cur.type not in (TokenType.IDENT, TokenType.KEYWORD):
            raise self._error("expected stream name")
        name = self._advance().value
        window = self._window_spec()
        alias = None
        if self._cur.type is TokenType.IDENT and not self._at_word("WHERE"):
            alias = self._advance().value
        return _StreamRef(name, window, alias)

    def _window_spec(self) -> _Window:
        if not self._accept_op("["):
            # CQL defaults an unwindowed stream to [RANGE UNBOUNDED]
            return _Window("unbounded")
        if self._accept_word("NOW"):
            self._expect_op("]")
            return _Window("now")
        if self._accept_word("ROWS"):
            count = int(self._advance().value)
            self._expect_op("]")
            return _Window("rows", rows=count)
        self._expect_word("RANGE")
        if self._accept_word("UNBOUNDED"):
            self._expect_op("]")
            return _Window("unbounded")
        range_ = self._duration()
        slide = None
        if self._accept_word("SLIDE"):
            slide = self._duration()
        self._expect_op("]")
        return _Window("range", range_=range_, slide=slide)

    def _duration(self) -> int:
        token = self._advance()
        if token.type is not TokenType.NUMBER:
            raise self._error("expected a number in window specification")
        amount = float(token.value)
        unit_token = self._advance()
        unit = unit_token.upper.rstrip("S")
        if unit not in _UNITS:
            raise self._error(f"unknown time unit {unit_token.value!r}")
        return int(amount * _UNITS[unit])

    # -- expressions ---------------------------------------------------------

    def _expr(self) -> _Expr:
        return self._or()

    def _or(self) -> _Expr:
        left = self._and()
        while self._accept_word("OR"):
            left = _Binary("OR", left, self._and())
        return left

    def _and(self) -> _Expr:
        left = self._comparison()
        while self._accept_word("AND"):
            left = _Binary("AND", left, self._comparison())
        return left

    def _comparison(self) -> _Expr:
        left = self._additive()
        if self._cur.type is TokenType.OP and self._cur.value in (
            "=", "<>", "!=", "<", "<=", ">", ">=",
        ):
            op = self._advance().value
            op = "<>" if op == "!=" else op
            return _Binary(op, left, self._additive())
        return left

    def _additive(self) -> _Expr:
        left = self._multiplicative()
        while self._at_op("+", "-"):
            op = self._advance().value
            left = _Binary(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> _Expr:
        left = self._primary()
        while self._at_op("*", "/"):
            op = self._advance().value
            left = _Binary(op, left, self._primary())
        return left

    def _primary(self) -> _Expr:
        token = self._cur
        if token.type is TokenType.NUMBER:
            self._advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return _Literal(value)
        if token.type is TokenType.STRING:
            self._advance()
            return _Literal(token.value)
        if self._accept_op("("):
            if self._at_word("SELECT"):
                inner = self._select()
                self._expect_op(")")
                return _Subquery(inner)
            expr = self._expr()
            self._expect_op(")")
            return expr
        if token.type in (TokenType.IDENT, TokenType.KEYWORD):
            word = self._advance()
            if word.upper in _AGGREGATES and self._at_op("("):
                self._advance()
                if self._accept_op("*"):
                    self._expect_op(")")
                    return _Aggregate("COUNT", None)
                arg = self._primary()
                if not isinstance(arg, _ColumnRef):
                    raise self._error(
                        f"{word.value} expects a column reference"
                    )
                self._expect_op(")")
                return _Aggregate(word.upper, arg)
            parts = [word.value]
            while self._accept_op("."):
                parts.append(self._advance().value)
            return _ColumnRef(tuple(parts))
        raise self._error(f"unexpected {token} in CQL expression")
