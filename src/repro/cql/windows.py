"""CQL stream-to-relation operators (window specifications).

CQL converts a stream into a *relation sequence* — an instantaneous
relation per logical tick — via a window specification attached to the
stream reference: ``Bid [RANGE 10 MINUTE SLIDE 10 MINUTE]``.  The
relation sequence is CQL's time-varying relation, evaluated at discrete
ticks of the logical clock.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..core.errors import ValidationError
from ..core.relation import Relation
from ..core.schema import Schema
from ..core.times import Duration, Timestamp, align_to_window
from .stream import CqlStream

__all__ = [
    "RelationSequence",
    "range_window",
    "rows_window",
    "now_window",
    "unbounded_window",
]


class RelationSequence:
    """CQL's time-varying relation: one instantaneous relation per tick."""

    def __init__(
        self,
        schema: Schema,
        ticks: Sequence[Timestamp],
        relation_at: Callable[[Timestamp], Relation],
    ):
        self.schema = schema
        self.ticks = list(ticks)
        self._relation_at = relation_at

    def at(self, tick: Timestamp) -> Relation:
        """The instantaneous relation at logical time ``tick``."""
        return self._relation_at(tick)

    def map(
        self,
        op: Callable[[Relation], Relation],
        schema: Optional[Schema] = None,
    ) -> "RelationSequence":
        """Apply a relation-to-relation operator pointwise in time."""
        out_schema = schema if schema is not None else self.schema
        return RelationSequence(
            out_schema, self.ticks, lambda tick: op(self.at(tick))
        )

    def combine(
        self,
        other: "RelationSequence",
        op: Callable[[Relation, Relation], Relation],
        schema: Schema,
    ) -> "RelationSequence":
        """Combine two relation sequences pointwise (e.g. a join).

        Time moves in lock step for the whole query — the CQL property
        Section 4 of the paper calls out — so both sequences must share
        their ticks.
        """
        if self.ticks != other.ticks:
            raise ValidationError("combined CQL relation sequences must share ticks")
        return RelationSequence(
            schema, self.ticks, lambda tick: op(self.at(tick), other.at(tick))
        )


def _slide_ticks(
    stream: CqlStream, slide: Duration
) -> list[Timestamp]:
    """Logical clock ticks at every ``slide`` boundary covering the data."""
    if not stream.elements:
        return []
    lo, hi = stream.span()
    first = align_to_window(lo, slide) + slide
    ticks = []
    tick = first
    while tick <= align_to_window(hi, slide) + slide:
        ticks.append(tick)
        tick += slide
    return ticks


def range_window(
    stream: CqlStream, range_: Duration, slide: Optional[Duration] = None
) -> RelationSequence:
    """``S [RANGE r SLIDE s]``: rows with timestamp in ``(tick-r, tick]``.

    With ``slide == range`` this is CQL's tumbling window; the paper's
    Listing 1 uses ``RANGE 10 MINUTE SLIDE 10 MINUTE``.  We follow the
    half-open convention ``[tick - r, tick)`` so a ten-minute tumble
    covers exactly the same rows as the proposal's Tumble TVF, making
    the two formulations directly comparable.
    """
    if range_ <= 0:
        raise ValidationError("RANGE must be positive")
    slide = slide if slide is not None else range_
    ticks = _slide_ticks(stream, slide)

    def relation_at(tick: Timestamp) -> Relation:
        rows = [
            values
            for ts, values in stream.rows_until(tick)
            if tick - range_ <= ts < tick
        ]
        return Relation(stream.schema, rows)

    return RelationSequence(stream.schema, ticks, relation_at)


def rows_window(stream: CqlStream, n: int, slide: Duration) -> RelationSequence:
    """``S [ROWS n]``: the most recent ``n`` rows as of each tick."""
    if n <= 0:
        raise ValidationError("ROWS must be positive")
    ticks = _slide_ticks(stream, slide)

    def relation_at(tick: Timestamp) -> Relation:
        rows = [values for _, values in stream.rows_until(tick)][-n:]
        return Relation(stream.schema, rows)

    return RelationSequence(stream.schema, ticks, relation_at)


def now_window(stream: CqlStream, slide: Duration) -> RelationSequence:
    """``S [NOW]``: only the rows timestamped exactly at the tick."""
    ticks = _slide_ticks(stream, slide)

    def relation_at(tick: Timestamp) -> Relation:
        rows = [values for ts, values in stream.rows_until(tick) if ts == tick]
        return Relation(stream.schema, rows)

    return RelationSequence(stream.schema, ticks, relation_at)


def unbounded_window(stream: CqlStream, slide: Duration) -> RelationSequence:
    """``S [RANGE UNBOUNDED]``: every row seen so far."""
    ticks = _slide_ticks(stream, slide)

    def relation_at(tick: Timestamp) -> Relation:
        return Relation(stream.schema, [v for _, v in stream.rows_until(tick)])

    return RelationSequence(stream.schema, ticks, relation_at)
