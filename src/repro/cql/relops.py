"""CQL relation-to-relation operators.

These are ordinary relational operators applied to instantaneous
relations; CQL reuses SQL semantics for this class of operators, and so
do we — small composable functions over :class:`Relation`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from ..core.relation import Relation
from ..core.schema import Column, Schema

__all__ = ["select", "project", "cross_join", "theta_join", "aggregate", "scalar"]


def select(rel: Relation, predicate: Callable[[tuple], bool]) -> Relation:
    """σ: keep rows satisfying the predicate."""
    return Relation(rel.schema, [r for r in rel.tuples if predicate(r)])


def project(
    rel: Relation,
    schema: Schema,
    fn: Callable[[tuple], tuple],
) -> Relation:
    """π: map each row through ``fn`` into ``schema``."""
    return Relation(schema, [fn(r) for r in rel.tuples])


def cross_join(left: Relation, right: Relation) -> Relation:
    """×: every pair of rows, concatenated."""
    schema = left.schema.concat(right.schema)
    rows = [l + r for l in left.tuples for r in right.tuples]
    return Relation(schema, rows)


def theta_join(
    left: Relation,
    right: Relation,
    predicate: Callable[[tuple], bool],
) -> Relation:
    """⋈θ: cross join filtered by a predicate over the combined row."""
    schema = left.schema.concat(right.schema)
    rows = [
        l + r for l in left.tuples for r in right.tuples if predicate(l + r)
    ]
    return Relation(schema, rows)


def aggregate(
    rel: Relation,
    group_indices: Sequence[int],
    agg_fns: Sequence[tuple[str, Callable[[list], Any]]],
) -> Relation:
    """γ: group by the given columns and apply list-level aggregates.

    ``agg_fns`` is a list of ``(output_name, fn)`` where ``fn`` maps the
    group's rows to a value (e.g. ``lambda rows: max(r[1] for r in rows)``).
    """
    groups: dict[tuple, list[tuple]] = {}
    for row in rel.tuples:
        key = tuple(row[i] for i in group_indices)
        groups.setdefault(key, []).append(row)
    cols = [rel.schema.columns[i].degraded() for i in group_indices]
    from ..core.schema import SqlType

    cols.extend(Column(name, SqlType.FLOAT) for name, _ in agg_fns)
    rows = [
        key + tuple(fn(members) for _, fn in agg_fns)
        for key, members in groups.items()
    ]
    return Relation(Schema(cols), rows)


def scalar(rel: Relation, fn: Callable[[list[tuple]], Any]) -> Optional[Any]:
    """Evaluate a scalar over the whole relation (e.g. MAX of a column).

    Returns ``None`` on an empty relation, like a SQL scalar subquery.
    """
    rows = rel.tuples
    if not rows:
        return None
    return fn(rows)
