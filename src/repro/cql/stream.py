"""CQL streams: timestamped tuples delivered in timestamp order.

In the STREAM system (Arasu, Babu & Widom), a stream is a bag of
``(tuple, timestamp)`` pairs and *time is metadata*: timestamps are not
ordinary columns, and the system buffers out-of-order arrivals
(via *heartbeats*) so the query processor always sees rows in
timestamp order.  Section 4 of the paper contrasts this with its own
explicit-timestamp proposal.

:meth:`CqlStream.from_tvr` performs exactly that heartbeat buffering
when replaying one of our TVRs into CQL: rows are released in event-
time order, up to the source's final watermark.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..core.errors import ValidationError
from ..core.schema import Schema
from ..core.times import Timestamp
from ..core.tvr import TimeVaryingRelation

__all__ = ["CqlStream"]


class CqlStream:
    """A CQL stream: schema plus timestamp-ordered elements.

    ``elements`` are ``(timestamp, values)`` pairs; the timestamp is
    metadata and is *not* part of ``values`` (CQL's implicit-time
    model).
    """

    def __init__(
        self,
        schema: Schema,
        elements: Iterable[tuple[Timestamp, tuple[Any, ...]]] = (),
    ):
        self.schema = schema
        self.elements: list[tuple[Timestamp, tuple[Any, ...]]] = sorted(
            ((ts, tuple(values)) for ts, values in elements), key=lambda e: e[0]
        )

    @classmethod
    def from_tvr(
        cls,
        tvr: TimeVaryingRelation,
        timecol: str,
        keep_time_column: bool = False,
    ) -> "CqlStream":
        """Replay a TVR into CQL, buffering out-of-order rows.

        This models STREAM's heartbeat mechanism: an element becomes
        visible to the query processor only in timestamp order, and
        only once the source watermark (the heartbeat) has passed its
        timestamp.  Rows beyond the final watermark stay buffered
        forever — the latency/completeness trade-off Section 3.2 of the
        paper attributes to the in-order model.
        """
        time_index = tvr.schema.index_of(timecol)
        final_wm = tvr.watermarks.current
        elements = []
        for change in tvr.changelog:
            if not change.is_insert:
                raise ValidationError(
                    "CQL replay requires an append-only source stream"
                )
            ts = change.values[time_index]
            if ts > final_wm:
                continue  # never released by a heartbeat
            values = (
                change.values
                if keep_time_column
                else tuple(
                    v for i, v in enumerate(change.values) if i != time_index
                )
            )
            elements.append((ts, values))
        schema = (
            tvr.schema
            if keep_time_column
            else Schema(
                [c for i, c in enumerate(tvr.schema.columns) if i != time_index]
            ).degraded()
        )
        return cls(schema, elements)

    def rows_until(self, tick: Timestamp) -> list[tuple[Timestamp, tuple[Any, ...]]]:
        """Elements with timestamp <= ``tick`` (the heartbeat contract)."""
        return [(ts, values) for ts, values in self.elements if ts <= tick]

    def span(self) -> tuple[Timestamp, Timestamp]:
        """(min, max) element timestamps; raises on an empty stream."""
        if not self.elements:
            raise ValidationError("empty CQL stream has no span")
        return self.elements[0][0], self.elements[-1][0]

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self):
        return iter(self.elements)
