"""CQL relation-to-stream operators: Istream, Dstream, Rstream.

Quoting the paper's summary of CQL (Section 2.1.1):

1. ``Istream(R)`` contains all ``(r, T)`` where ``r ∈ R`` at ``T`` but
   not at ``T-1``;
2. ``Dstream(R)`` contains all ``(r, T)`` where ``r ∈ R`` at ``T-1``
   but not at ``T``;
3. ``Rstream(R)`` contains all ``(r, T)`` where ``r ∈ R`` at ``T``.

``T-1`` is the previous logical tick of the relation sequence.  Note
how Istream/Dstream together are precisely the changelog encoding of a
TVR — the duality the paper builds on.
"""

from __future__ import annotations

from collections import Counter

from .stream import CqlStream
from .windows import RelationSequence

__all__ = ["istream", "dstream", "rstream"]


def istream(seq: RelationSequence) -> CqlStream:
    """Rows that appeared at each tick."""
    out = []
    previous: Counter = Counter()
    for tick in seq.ticks:
        current = Counter(seq.at(tick).tuples)
        appeared = current - previous
        for values, count in appeared.items():
            out.extend([(tick, values)] * count)
        previous = current
    return CqlStream(seq.schema, out)


def dstream(seq: RelationSequence) -> CqlStream:
    """Rows that disappeared at each tick."""
    out = []
    previous: Counter = Counter()
    for tick in seq.ticks:
        current = Counter(seq.at(tick).tuples)
        disappeared = previous - current
        for values, count in disappeared.items():
            out.extend([(tick, values)] * count)
        previous = current
    return CqlStream(seq.schema, out)


def rstream(seq: RelationSequence) -> CqlStream:
    """Every row of the relation, re-emitted at every tick.

    This is the operator the NEXMark Query 7 reference formulation uses
    (Listing 1): with a tumbling window it emits each window's result
    exactly once, when the window closes.
    """
    out = []
    for tick in seq.ticks:
        for values in seq.at(tick).tuples:
            out.append((tick, values))
    return CqlStream(seq.schema, out)
