"""The CQL baseline: the STREAM-project model the paper compares against.

CQL (Arasu, Babu & Widom 2003-2006) separates streams from relations
and provides three operator classes — stream-to-relation (windows),
relation-to-relation (SQL), and relation-to-stream
(Istream/Dstream/Rstream) — with implicit, in-order time.  This package
implements that model faithfully so the paper's Listing 1 (NEXMark
Query 7 in CQL) can be executed and compared against the Listing 2
formulation running on the main engine.
"""

from .parser import CqlQuery, parse_cql
from .relops import aggregate, cross_join, project, scalar, select, theta_join
from .stream import CqlStream
from .streamops import dstream, istream, rstream
from .windows import (
    RelationSequence,
    now_window,
    range_window,
    rows_window,
    unbounded_window,
)

__all__ = [
    "parse_cql",
    "CqlQuery",
    "CqlStream",
    "RelationSequence",
    "range_window",
    "rows_window",
    "now_window",
    "unbounded_window",
    "istream",
    "dstream",
    "rstream",
    "select",
    "project",
    "cross_join",
    "theta_join",
    "aggregate",
    "scalar",
]
