"""Reading and writing TVRs in the paper's dataset notation.

Section 4 presents its example stream as a two-column script of
processing times and events::

    8:07  WM -> 8:05
    8:08  INSERT (8:07, $2, A)

This module parses and re-emits that notation (linearized, one event
per line), with an optional leading ``schema:`` declaration so a script
file is self-contained::

    schema: bidtime TIMESTAMP EVENT TIME, price INT, item STRING
    8:07  WM -> 8:05
    8:08  INSERT (8:07, $2, A)
    8:13  RETRACT (8:07, $2, A)

Values are parsed per the schema's column types; ``$`` prefixes on
numbers (the paper's price notation) are accepted and ignored.
"""

from __future__ import annotations

import re
from typing import Optional

from .core.errors import ReproError
from .core.schema import Column, Schema, SqlType
from .core.times import fmt_time, t
from .core.tvr import RowEvent, TimeVaryingRelation, WatermarkEvent

__all__ = ["parse_script", "format_script", "parse_schema_line"]

_TYPE_NAMES = {
    "INT": SqlType.INT,
    "INTEGER": SqlType.INT,
    "BIGINT": SqlType.INT,
    "FLOAT": SqlType.FLOAT,
    "DOUBLE": SqlType.FLOAT,
    "STRING": SqlType.STRING,
    "VARCHAR": SqlType.STRING,
    "BOOL": SqlType.BOOL,
    "BOOLEAN": SqlType.BOOL,
    "TIMESTAMP": SqlType.TIMESTAMP,
}

_WM_RE = re.compile(r"^(?P<ptime>\S+)\s+WM\s*->\s*(?P<value>\S+)$")
_ROW_RE = re.compile(
    r"^(?P<ptime>\S+)\s+(?P<kind>INSERT|RETRACT)\s*\((?P<values>.*)\)$"
)


class ScriptError(ReproError):
    """A dataset script could not be parsed."""


def parse_schema_line(line: str) -> Schema:
    """Parse ``schema: name TYPE [EVENT TIME], ...`` into a Schema."""
    body = line.split(":", 1)[1]
    columns = []
    for spec in body.split(","):
        words = spec.split()
        if len(words) < 2:
            raise ScriptError(f"bad column spec {spec.strip()!r}")
        name, type_name = words[0], words[1].upper()
        sql_type = _TYPE_NAMES.get(type_name)
        if sql_type is None:
            raise ScriptError(f"unknown type {words[1]!r} in schema line")
        event_time = [w.upper() for w in words[2:]] in (
            ["EVENT", "TIME"],
            ["*EVENT", "TIME*"],
        )
        if words[2:] and not event_time:
            raise ScriptError(f"unexpected tokens after type in {spec.strip()!r}")
        columns.append(Column(name, sql_type, event_time=event_time))
    return Schema(columns)


def _parse_value(text: str, sql_type: SqlType):
    text = text.strip()
    if text.upper() == "NULL":
        return None
    if text.startswith("$"):
        text = text[1:]
    if sql_type is SqlType.TIMESTAMP:
        return t(text)
    if sql_type is SqlType.INT:
        return int(text)
    if sql_type is SqlType.FLOAT:
        return float(text)
    if sql_type is SqlType.BOOL:
        return text.upper() in ("TRUE", "T", "1")
    # string: allow optional quotes
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return text[1:-1]
    return text


def _parse_time(text: str) -> int:
    try:
        return t(text)
    except ValueError:
        try:
            return int(text)
        except ValueError:
            raise ScriptError(f"cannot parse time {text!r}") from None


def parse_script(text: str, schema: Optional[Schema] = None) -> TimeVaryingRelation:
    """Parse a dataset script into a TVR.

    If ``schema`` is not given, the script must start with a
    ``schema:`` line.
    """
    tvr: Optional[TimeVaryingRelation] = None
    if schema is not None:
        tvr = TimeVaryingRelation(schema)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.lower().startswith("schema:"):
            if tvr is not None:
                raise ScriptError(f"line {lineno}: schema declared twice")
            schema = parse_schema_line(line)
            tvr = TimeVaryingRelation(schema)
            continue
        if tvr is None or schema is None:
            raise ScriptError(
                f"line {lineno}: no schema (pass one or add a 'schema:' line)"
            )
        wm_match = _WM_RE.match(line)
        if wm_match:
            tvr.advance_watermark(
                _parse_time(wm_match.group("ptime")),
                _parse_time(wm_match.group("value")),
            )
            continue
        row_match = _ROW_RE.match(line)
        if row_match:
            parts = [p for p in row_match.group("values").split(",")]
            if len(parts) != len(schema):
                raise ScriptError(
                    f"line {lineno}: expected {len(schema)} values, got "
                    f"{len(parts)}"
                )
            values = tuple(
                _parse_value(part, col.type)
                for part, col in zip(parts, schema.columns)
            )
            ptime = _parse_time(row_match.group("ptime"))
            if row_match.group("kind") == "INSERT":
                tvr.insert(ptime, values)
            else:
                tvr.retract(ptime, values)
            continue
        raise ScriptError(f"line {lineno}: cannot parse {line!r}")
    if tvr is None:
        raise ScriptError("empty script and no schema given")
    return tvr


def format_script(tvr: TimeVaryingRelation, include_schema: bool = True) -> str:
    """Render a TVR back into the script notation (round-trips)."""
    lines: list[str] = []
    if include_schema:
        cols = ", ".join(
            f"{c.name} {c.type}{' EVENT TIME' if c.event_time else ''}"
            for c in tvr.schema.columns
        )
        lines.append(f"schema: {cols}")
    for event in tvr.events():
        ptime = fmt_time(event.ptime)
        if isinstance(event, WatermarkEvent):
            lines.append(f"{ptime}  WM -> {fmt_time(event.value)}")
            continue
        assert isinstance(event, RowEvent)
        rendered = []
        for col, value in zip(tvr.schema.columns, event.change.values):
            if value is None:
                rendered.append("NULL")
            elif col.type is SqlType.TIMESTAMP:
                rendered.append(fmt_time(value))
            elif col.type is SqlType.STRING:
                rendered.append(f"'{value}'")
            else:
                rendered.append(str(value))
        kind = "INSERT" if event.is_insert else "RETRACT"
        lines.append(f"{ptime}  {kind} ({', '.join(rendered)})")
    return "\n".join(lines) + "\n"
