"""Reading and writing TVRs in the paper's dataset notation.

Section 4 presents its example stream as a two-column script of
processing times and events::

    8:07  WM -> 8:05
    8:08  INSERT (8:07, $2, A)

This module parses and re-emits that notation (linearized, one event
per line), with an optional leading ``schema:`` declaration so a script
file is self-contained::

    schema: bidtime TIMESTAMP EVENT TIME, price INT, item STRING
    8:07  WM -> 8:05
    8:08  INSERT (8:07, $2, A)
    8:13  RETRACT (8:07, $2, A)

Values are parsed per the schema's column types; ``$`` prefixes on
numbers (the paper's price notation) are accepted and ignored.

Live tailing (:class:`TailParser`) reads the same notation — plus a
JSONL encoding of it, one JSON object per line — *incrementally*: feed
it chunks as they are appended to a file or arrive on a socket and it
yields complete :class:`~repro.core.tvr.StreamEvent` items, buffering
any unterminated trailing line until its newline arrives instead of
failing on a mid-write record.
"""

from __future__ import annotations

import json
import re
from typing import Optional

from .core.errors import ReproError
from .core.schema import Column, Schema, SqlType
from .core.times import fmt_time, t
from .core.tvr import RowEvent, StreamEvent, TimeVaryingRelation, WatermarkEvent, ins, rm, wm

__all__ = [
    "parse_script",
    "format_script",
    "parse_schema_line",
    "TailParser",
    "parse_event_line",
    "format_jsonl",
]

_TYPE_NAMES = {
    "INT": SqlType.INT,
    "INTEGER": SqlType.INT,
    "BIGINT": SqlType.INT,
    "FLOAT": SqlType.FLOAT,
    "DOUBLE": SqlType.FLOAT,
    "STRING": SqlType.STRING,
    "VARCHAR": SqlType.STRING,
    "BOOL": SqlType.BOOL,
    "BOOLEAN": SqlType.BOOL,
    "TIMESTAMP": SqlType.TIMESTAMP,
}

_WM_RE = re.compile(r"^(?P<ptime>\S+)\s+WM\s*->\s*(?P<value>\S+)$")
_ROW_RE = re.compile(
    r"^(?P<ptime>\S+)\s+(?P<kind>INSERT|RETRACT)\s*\((?P<values>.*)\)$"
)


class ScriptError(ReproError):
    """A dataset script could not be parsed."""


def parse_schema_line(line: str) -> Schema:
    """Parse ``schema: name TYPE [EVENT TIME], ...`` into a Schema."""
    body = line.split(":", 1)[1]
    columns = []
    for spec in body.split(","):
        words = spec.split()
        if len(words) < 2:
            raise ScriptError(f"bad column spec {spec.strip()!r}")
        name, type_name = words[0], words[1].upper()
        sql_type = _TYPE_NAMES.get(type_name)
        if sql_type is None:
            raise ScriptError(f"unknown type {words[1]!r} in schema line")
        event_time = [w.upper() for w in words[2:]] in (
            ["EVENT", "TIME"],
            ["*EVENT", "TIME*"],
        )
        if words[2:] and not event_time:
            raise ScriptError(f"unexpected tokens after type in {spec.strip()!r}")
        columns.append(Column(name, sql_type, event_time=event_time))
    return Schema(columns)


def _parse_value(text: str, sql_type: SqlType):
    text = text.strip()
    if text.upper() == "NULL":
        return None
    if text.startswith("$"):
        text = text[1:]
    if sql_type is SqlType.TIMESTAMP:
        return t(text)
    if sql_type is SqlType.INT:
        return int(text)
    if sql_type is SqlType.FLOAT:
        return float(text)
    if sql_type is SqlType.BOOL:
        return text.upper() in ("TRUE", "T", "1")
    # string: allow optional quotes
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return text[1:-1]
    return text


def _parse_time(text: str) -> int:
    try:
        return t(text)
    except ValueError:
        try:
            return int(text)
        except ValueError:
            raise ScriptError(f"cannot parse time {text!r}") from None


def _parse_script_event(
    line: str, schema: Schema, where: str = ""
) -> StreamEvent:
    """One non-blank, non-schema script line as a stream event."""
    wm_match = _WM_RE.match(line)
    if wm_match:
        return wm(
            _parse_time(wm_match.group("ptime")),
            _parse_time(wm_match.group("value")),
        )
    row_match = _ROW_RE.match(line)
    if row_match:
        parts = [p for p in row_match.group("values").split(",")]
        if len(parts) != len(schema):
            raise ScriptError(
                f"{where}expected {len(schema)} values, got {len(parts)}"
            )
        values = tuple(
            _parse_value(part, col.type)
            for part, col in zip(parts, schema.columns)
        )
        ptime = _parse_time(row_match.group("ptime"))
        maker = ins if row_match.group("kind") == "INSERT" else rm
        return maker(ptime, values)
    raise ScriptError(f"{where}cannot parse {line!r}")


def parse_script(text: str, schema: Optional[Schema] = None) -> TimeVaryingRelation:
    """Parse a dataset script into a TVR.

    If ``schema`` is not given, the script must start with a
    ``schema:`` line.
    """
    tvr: Optional[TimeVaryingRelation] = None
    if schema is not None:
        tvr = TimeVaryingRelation(schema)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.lower().startswith("schema:"):
            if tvr is not None:
                raise ScriptError(f"line {lineno}: schema declared twice")
            schema = parse_schema_line(line)
            tvr = TimeVaryingRelation(schema)
            continue
        if tvr is None or schema is None:
            raise ScriptError(
                f"line {lineno}: no schema (pass one or add a 'schema:' line)"
            )
        tvr.apply(_parse_script_event(line, schema, where=f"line {lineno}: "))
    if tvr is None:
        raise ScriptError("empty script and no schema given")
    return tvr


def format_script(tvr: TimeVaryingRelation, include_schema: bool = True) -> str:
    """Render a TVR back into the script notation (round-trips)."""
    lines: list[str] = []
    if include_schema:
        cols = ", ".join(
            f"{c.name} {c.type}{' EVENT TIME' if c.event_time else ''}"
            for c in tvr.schema.columns
        )
        lines.append(f"schema: {cols}")
    for event in tvr.events():
        ptime = fmt_time(event.ptime)
        if isinstance(event, WatermarkEvent):
            lines.append(f"{ptime}  WM -> {fmt_time(event.value)}")
            continue
        assert isinstance(event, RowEvent)
        rendered = []
        for col, value in zip(tvr.schema.columns, event.change.values):
            if value is None:
                rendered.append("NULL")
            elif col.type is SqlType.TIMESTAMP:
                rendered.append(fmt_time(value))
            elif col.type is SqlType.STRING:
                rendered.append(f"'{value}'")
            else:
                rendered.append(str(value))
        kind = "INSERT" if event.is_insert else "RETRACT"
        lines.append(f"{ptime}  {kind} ({', '.join(rendered)})")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# JSONL encoding + incremental tailing
# ---------------------------------------------------------------------------

#: JSON value coercers per SQL type; timestamps accept "8:07" strings.
_JSON_COERCERS = {
    SqlType.TIMESTAMP: lambda v: t(v) if isinstance(v, str) else int(v),
    SqlType.INT: int,
    SqlType.FLOAT: float,
    SqlType.BOOL: bool,
    SqlType.STRING: str,
}


def _coerce_json_value(value, col: Column):
    if value is None:
        return None
    try:
        coerced = _JSON_COERCERS[col.type](value)
    except (TypeError, ValueError) as exc:
        raise ScriptError(
            f"column {col.name!r} expects {col.type}, got {value!r}"
        ) from exc
    if col.type in (SqlType.INT, SqlType.TIMESTAMP) and isinstance(value, float):
        raise ScriptError(f"column {col.name!r} expects {col.type}, got {value!r}")
    return coerced


def _parse_jsonl_event(payload: dict, schema: Schema, where: str = "") -> StreamEvent:
    """One decoded JSONL record as a stream event, schema-validated."""
    if "ptime" not in payload:
        raise ScriptError(f"{where}JSONL record has no 'ptime' field")
    ptime = _parse_time(str(payload["ptime"]))
    if "wm" in payload:
        return wm(ptime, _parse_time(str(payload["wm"])))
    kind = "insert" if "insert" in payload else "retract" if "retract" in payload else None
    if kind is None:
        raise ScriptError(
            f"{where}JSONL record needs an 'insert', 'retract', or 'wm' field"
        )
    values = payload[kind]
    if not isinstance(values, (list, tuple)):
        raise ScriptError(f"{where}{kind!r} must carry a list of values")
    if len(values) != len(schema):
        raise ScriptError(
            f"{where}expected {len(schema)} values, got {len(values)}"
        )
    row = tuple(
        _coerce_json_value(value, col)
        for value, col in zip(values, schema.columns)
    )
    return (ins if kind == "insert" else rm)(ptime, row)


def parse_event_line(
    line: str, schema: Optional[Schema], where: str = ""
) -> StreamEvent | Schema:
    """Parse one feed line — script or JSONL notation — into an event.

    A ``schema:`` line (or a ``{"schema": "..."}`` record) returns a
    :class:`~repro.core.schema.Schema` instead; any other line requires
    ``schema`` to be known already.
    """
    if line.startswith("{"):
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ScriptError(f"{where}malformed JSONL record: {exc}") from None
        if not isinstance(payload, dict):
            raise ScriptError(f"{where}JSONL record must be an object")
        if "schema" in payload:
            return parse_schema_line(f"schema: {payload['schema']}")
        if schema is None:
            raise ScriptError(f"{where}no schema declared before first event")
        return _parse_jsonl_event(payload, schema, where)
    if line.lower().startswith("schema:"):
        return parse_schema_line(line)
    if schema is None:
        raise ScriptError(f"{where}no schema declared before first event")
    return _parse_script_event(line, schema, where)


def format_jsonl(tvr: TimeVaryingRelation, include_schema: bool = True) -> str:
    """Render a TVR as the JSONL feed encoding (round-trips)."""
    lines: list[str] = []
    if include_schema:
        cols = ", ".join(
            f"{c.name} {c.type}{' EVENT TIME' if c.event_time else ''}"
            for c in tvr.schema.columns
        )
        lines.append(json.dumps({"schema": cols}))
    for event in tvr.events():
        if isinstance(event, WatermarkEvent):
            record = {"ptime": event.ptime, "wm": event.value}
        else:
            assert isinstance(event, RowEvent)
            kind = "insert" if event.is_insert else "retract"
            record = {"ptime": event.ptime, kind: list(event.change.values)}
        lines.append(json.dumps(record, separators=(",", ":")))
    return "\n".join(lines) + "\n"


class TailParser:
    """Incremental, mid-write-safe parser for live-tailed event feeds.

    Feed it text chunks exactly as they appear at the end of a growing
    file or arrive on a socket; :meth:`feed` returns the stream events
    completed by that chunk.  Only *newline-terminated* lines are
    parsed — a partially written final record stays buffered until its
    newline arrives, so tailing never fails on a record caught
    mid-write.  Call :meth:`close` at end-of-input to parse a final
    unterminated line.

    Both feed notations are accepted, decided per line: script lines
    (``8:08  INSERT (8:07, $2, A)``) and JSONL records
    (``{"ptime": 488000, "insert": [487000, 2, "A"]}``).  The schema
    comes from the constructor or from a leading ``schema:`` line /
    ``{"schema": "..."}`` record; every row is validated against it.
    """

    def __init__(self, schema: Optional[Schema] = None):
        self._schema = schema
        self._buffer = ""
        self._lineno = 0

    @property
    def schema(self) -> Optional[Schema]:
        """The feed's schema, once declared or provided."""
        return self._schema

    @property
    def pending(self) -> str:
        """The buffered partial line awaiting its newline (may be empty)."""
        return self._buffer

    def feed(self, chunk: str) -> list[StreamEvent]:
        """Consume a chunk; return the events its complete lines form."""
        self._buffer += chunk
        if "\n" not in self._buffer:
            return []
        complete, self._buffer = self._buffer.rsplit("\n", 1)
        events: list[StreamEvent] = []
        for raw in complete.split("\n"):
            self._lineno += 1
            event = self._parse_line(raw)
            if event is not None:
                events.append(event)
        return events

    def close(self) -> list[StreamEvent]:
        """Parse any buffered final line (end-of-input, no newline coming)."""
        if not self._buffer.strip():
            self._buffer = ""
            return []
        raw, self._buffer = self._buffer, ""
        self._lineno += 1
        event = self._parse_line(raw)
        return [event] if event is not None else []

    def _parse_line(self, raw: str) -> Optional[StreamEvent]:
        line = raw.strip()
        if not line or line.startswith("#"):
            return None
        parsed = parse_event_line(
            line, self._schema, where=f"line {self._lineno}: "
        )
        if isinstance(parsed, Schema):
            # A feed may restate the schema the consumer already knows
            # (every recorded file leads with one); only a *conflicting*
            # redeclaration is an error.
            if self._schema is not None and parsed != self._schema:
                raise ScriptError(
                    f"line {self._lineno}: schema redeclared with different "
                    f"columns"
                )
            self._schema = parsed
            return None
        return parsed
