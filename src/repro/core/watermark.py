"""Watermarks: processing-time → event-time completeness assertions.

Section 3.2.2 defines a watermark as a *monotonic function from
processing time to event time*: observing watermark value ``x`` at
processing time ``y`` asserts that every record arriving after ``y``
will carry an event timestamp strictly greater than ``x``.

:class:`WatermarkTrack` records that function for one relation as a step
function of (ptime, value) pairs.  Watermark *generators* produce the
assertions at a source: :class:`PunctuatedWatermarks` replays explicit
watermark events (the paper's example dataset style, ``WM -> 8:05``),
and :class:`BoundedOutOfOrderness` derives them heuristically from
observed event timestamps minus a fixed slack — the "configuration to
allow sufficient slack time" the paper mentions.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable

from .errors import WatermarkError
from .times import MAX_TIMESTAMP, MIN_TIMESTAMP, Duration, Timestamp

__all__ = [
    "WatermarkTrack",
    "BoundedOutOfOrderness",
    "PunctuatedWatermarks",
    "merge_watermarks",
]


class WatermarkTrack:
    """The watermark of one relation over processing time.

    A monotone step function: both the processing times and the
    watermark values are non-decreasing.  ``value_at(ptime)`` evaluates
    the function; ``advance`` appends a new assertion.
    """

    __slots__ = ("_ptimes", "_values")

    def __init__(self) -> None:
        self._ptimes: list[Timestamp] = []
        self._values: list[Timestamp] = []

    def advance(self, ptime: Timestamp, value: Timestamp) -> None:
        """Record that at ``ptime`` the watermark reached ``value``."""
        if self._ptimes:
            if ptime < self._ptimes[-1]:
                raise WatermarkError(
                    f"watermark observed out of processing-time order: "
                    f"{ptime} after {self._ptimes[-1]}"
                )
            if value < self._values[-1]:
                raise WatermarkError(
                    f"watermark regressed from {self._values[-1]} to {value}"
                )
            if value == self._values[-1]:
                return  # no new information
        self._ptimes.append(ptime)
        self._values.append(value)

    def value_at(self, ptime: Timestamp) -> Timestamp:
        """The watermark value in effect at ``ptime`` (inclusive)."""
        i = bisect_right(self._ptimes, ptime)
        if i == 0:
            return MIN_TIMESTAMP
        return self._values[i - 1]

    @property
    def current(self) -> Timestamp:
        """The most recently observed watermark value."""
        return self._values[-1] if self._values else MIN_TIMESTAMP

    def first_ptime_at_or_past(self, event_time: Timestamp) -> Timestamp | None:
        """Earliest processing time when the watermark reached ``event_time``.

        This is how ``EMIT AFTER WATERMARK`` stamps its output rows
        (Listing 13): the ``ptime`` of a finalized window is the instant
        the watermark passed the window end, not the arrival time of the
        winning record.  Returns ``None`` if the watermark never got
        there.
        """
        lo, hi = 0, len(self._values)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._values[mid] >= event_time:
                hi = mid
            else:
                lo = mid + 1
        if lo == len(self._values):
            return None
        return self._ptimes[lo]

    def as_pairs(self) -> list[tuple[Timestamp, Timestamp]]:
        """The (ptime, value) steps recorded so far."""
        return list(zip(self._ptimes, self._values))

    def __repr__(self) -> str:
        return f"WatermarkTrack({self.as_pairs()})"


class BoundedOutOfOrderness:
    """Heuristic watermark generator: max event time seen minus a slack.

    Asserts that records never arrive more than ``max_delay`` behind the
    furthest-ahead record observed so far.
    """

    def __init__(self, max_delay: Duration):
        if max_delay < 0:
            raise WatermarkError("max_delay must be non-negative")
        self._max_delay = max_delay
        self._max_seen: Timestamp = MIN_TIMESTAMP

    def observe(self, event_time: Timestamp) -> Timestamp:
        """Feed one event timestamp; returns the current watermark."""
        if event_time > self._max_seen:
            self._max_seen = event_time
        return self.current

    @property
    def current(self) -> Timestamp:
        if self._max_seen == MIN_TIMESTAMP:
            return MIN_TIMESTAMP
        return self._max_seen - self._max_delay


class PunctuatedWatermarks:
    """Watermark generator driven by explicit in-stream punctuations."""

    def __init__(self) -> None:
        self._current: Timestamp = MIN_TIMESTAMP

    def punctuate(self, value: Timestamp) -> Timestamp:
        """Record an explicit watermark punctuation."""
        if value < self._current:
            raise WatermarkError(
                f"punctuated watermark regressed from {self._current} to {value}"
            )
        self._current = value
        return self._current

    @property
    def current(self) -> Timestamp:
        return self._current


def merge_watermarks(values: Iterable[Timestamp]) -> Timestamp:
    """Combine the watermarks of multiple inputs.

    A multi-input operator (join, union) can only assert completeness up
    to the *least* complete input, so the merged watermark is the
    minimum — the "hold-back" behavior Section 5 describes for relations
    with more than one event time attribute.  An empty input set merges
    to ``MAX_TIMESTAMP`` (a nullary source is vacuously complete).
    """
    result = MAX_TIMESTAMP
    for value in values:
        if value < result:
            result = value
    return result
