"""Changelogs: the stream encoding of a time-varying relation.

Section 3.3.1 of the paper describes changelogs as the element-by-element
differences between successive versions of a relation — a sequence of
INSERT and RETRACT (DELETE) operations, each stamped with the processing
time at which it was applied.  A changelog and the sequence of snapshots
it produces are two encodings of the same time-varying relation; this
module provides both directions of that conversion plus the *upsert*
encoding used by Flink (Appendix B.2.3), which collapses a retraction
followed by an insertion with the same unique key into a single UPSERT
message.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from .errors import ExecutionError
from .relation import Relation
from .schema import Schema
from .times import MIN_TIMESTAMP, Timestamp

__all__ = [
    "ChangeKind",
    "Change",
    "Changelog",
    "UpsertKind",
    "Upsert",
    "compact_intra_instant",
    "diff_bags",
    "to_upserts",
    "upserts_to_changes",
]


class ChangeKind(enum.Enum):
    """Whether a change adds or removes one row occurrence."""

    INSERT = "+"
    RETRACT = "-"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, slots=True)
class Change:
    """One element of a changelog.

    ``ptime`` is the processing time at which the change became part of
    the relation.  ``values`` is the raw row tuple.
    """

    kind: ChangeKind
    values: tuple[Any, ...]
    ptime: Timestamp

    @property
    def is_insert(self) -> bool:
        return self.kind is ChangeKind.INSERT

    @property
    def is_retract(self) -> bool:
        return self.kind is ChangeKind.RETRACT

    @property
    def delta(self) -> int:
        """Multiplicity delta: +1 for insert, -1 for retract."""
        return 1 if self.kind is ChangeKind.INSERT else -1

    def inverted(self) -> "Change":
        """The change that undoes this one, at the same instant."""
        kind = ChangeKind.RETRACT if self.is_insert else ChangeKind.INSERT
        return Change(kind, self.values, self.ptime)

    def at(self, ptime: Timestamp) -> "Change":
        """This change re-stamped at a different processing time."""
        return Change(self.kind, self.values, ptime)

    def __str__(self) -> str:
        return f"{self.kind}{self.values}@{self.ptime}"


class Changelog:
    """An append-only, processing-time-ordered sequence of changes."""

    __slots__ = ("_changes", "_last_ptime")

    def __init__(self, changes: Iterable[Change] = ()):
        self._changes: list[Change] = []
        self._last_ptime: Timestamp = MIN_TIMESTAMP
        for change in changes:
            self.append(change)

    def append(self, change: Change) -> None:
        """Append a change; processing time must not go backwards."""
        if change.ptime < self._last_ptime:
            raise ExecutionError(
                f"changelog ptime went backwards: {change.ptime} after "
                f"{self._last_ptime}"
            )
        self._changes.append(change)
        self._last_ptime = change.ptime

    def extend(self, changes: Iterable[Change]) -> None:
        for change in changes:
            self.append(change)

    def __len__(self) -> int:
        return len(self._changes)

    def __iter__(self) -> Iterator[Change]:
        return iter(self._changes)

    def __getitem__(self, i: int) -> Change:
        return self._changes[i]

    @property
    def last_ptime(self) -> Timestamp:
        """Processing time of the most recent change."""
        return self._last_ptime

    def bag_at(self, ptime: Timestamp) -> Counter:
        """The relation contents as of ``ptime`` (inclusive), as a bag."""
        bag: Counter = Counter()
        for change in self._changes:
            if change.ptime > ptime:
                break
            bag[change.values] += change.delta
            if bag[change.values] == 0:
                del bag[change.values]
        if any(count < 0 for count in bag.values()):
            raise ExecutionError("changelog retracted a row that was never inserted")
        return bag

    def snapshot_at(self, schema: Schema, ptime: Timestamp) -> Relation:
        """Materialize the table view of this changelog at ``ptime``."""
        rows: list[tuple[Any, ...]] = []
        for values, count in self.bag_at(ptime).items():
            rows.extend([values] * count)
        return Relation(schema, rows)

    def changes_between(
        self, after: Timestamp, until: Timestamp
    ) -> list[Change]:
        """Changes with ``after < ptime <= until``, in order."""
        return [c for c in self._changes if after < c.ptime <= until]


def diff_bags(
    before: Counter, after: Counter, ptime: Timestamp
) -> list[Change]:
    """The minimal changelog fragment turning ``before`` into ``after``.

    Retractions are emitted before insertions so that a consumer
    applying the fragment never holds both the old and new version of an
    updated row at once.
    """
    changes: list[Change] = []
    for values in set(before) | set(after):
        delta = after.get(values, 0) - before.get(values, 0)
        if delta < 0:
            changes.extend(
                Change(ChangeKind.RETRACT, values, ptime) for _ in range(-delta)
            )
    for values in set(after):
        delta = after.get(values, 0) - before.get(values, 0)
        if delta > 0:
            changes.extend(
                Change(ChangeKind.INSERT, values, ptime) for _ in range(delta)
            )
    return changes


def compact_intra_instant(
    changes: Sequence[Change],
) -> tuple[list[Change], int]:
    """Drop insert/retract pairs that cancel within one instant.

    A changelog that inserts and retracts the same row at the same
    processing time describes a row the TVR never contained at any
    observable instant (Section 3.3.1: snapshots are taken *between*
    instants, not inside them), so both halves of such a pair can be
    dropped without changing any per-instant snapshot.  The cancellation
    is bracket-style — a change cancels against the *most recent*
    surviving opposite-kind change with the same ``(values, ptime)`` —
    so survivors keep their original order and every prefix of the
    compacted sequence applies the same net deltas as the corresponding
    uncompacted prefix restricted to survivors, which keeps downstream
    bag arithmetic non-negative.

    Returns ``(survivors, dropped)`` where ``dropped`` counts removed
    changes (always even).  Compaction changes the changelog row count,
    which is why it is opt-in (``coalesce_updates``) and verified by
    snapshot equivalence rather than changelog equality.
    """
    if len(changes) < 2:
        return list(changes), 0
    kept: list[Change | None] = list(changes)
    # Per (values, ptime): indices of surviving changes, all of one
    # kind — opposite kinds cannot coexist, they would have cancelled.
    stacks: dict[tuple, list[int]] = {}
    kinds: dict[tuple, ChangeKind] = {}
    dropped = 0
    for i, change in enumerate(changes):
        key = (change.values, change.ptime)
        stack = stacks.get(key)
        if not stack:
            stacks[key] = [i]
            kinds[key] = change.kind
        elif kinds[key] is change.kind:
            stack.append(i)
        else:
            kept[stack.pop()] = None
            kept[i] = None
            dropped += 2
    if not dropped:
        return list(changes), 0
    return [c for c in kept if c is not None], dropped


class UpsertKind(enum.Enum):
    """Message kinds of the upsert encoding."""

    UPSERT = "U"
    DELETE = "D"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Upsert:
    """One message of an upsert-encoded changelog.

    ``key`` is the unique-key tuple the encoding is defined over.  For
    UPSERT messages ``values`` is the full new row; for DELETE messages
    it is the last row that carried the key.
    """

    kind: UpsertKind
    key: tuple[Any, ...]
    values: tuple[Any, ...]
    ptime: Timestamp


def to_upserts(
    changes: Iterable[Change], key_indices: Sequence[int]
) -> list[Upsert]:
    """Re-encode a retraction changelog as an upsert stream.

    Requires that ``key_indices`` identify a unique key: at any instant
    at most one live row may carry a given key.  An UPDATE — encoded in
    the retraction stream as RETRACT(old) then INSERT(new) with the same
    key — becomes a single UPSERT(new), which is the space saving Flink's
    upsert streams exploit (Appendix B.2.3).
    """
    key_of = lambda values: tuple(values[i] for i in key_indices)  # noqa: E731
    out: list[Upsert] = []
    pending_retract: dict[tuple[Any, ...], Change] = {}

    def flush_pending() -> None:
        for key, change in pending_retract.items():
            out.append(Upsert(UpsertKind.DELETE, key, change.values, change.ptime))
        pending_retract.clear()

    last_ptime: Timestamp | None = None
    for change in changes:
        if last_ptime is not None and change.ptime != last_ptime:
            # Retractions can only fuse with an insert at the same instant.
            flush_pending()
        last_ptime = change.ptime
        key = key_of(change.values)
        if change.is_retract:
            if key in pending_retract:
                raise ExecutionError(
                    f"duplicate live rows for upsert key {key!r}"
                )
            pending_retract[key] = change
        else:
            pending_retract.pop(key, None)
            out.append(Upsert(UpsertKind.UPSERT, key, change.values, change.ptime))
    flush_pending()
    return out


def upserts_to_changes(
    upserts: Iterable[Upsert],
) -> list[Change]:
    """Decode an upsert stream back into a retraction changelog."""
    live: dict[tuple[Any, ...], tuple[Any, ...]] = {}
    out: list[Change] = []
    for msg in upserts:
        old = live.get(msg.key)
        if msg.kind is UpsertKind.DELETE:
            if old is None:
                raise ExecutionError(f"DELETE for unknown upsert key {msg.key!r}")
            out.append(Change(ChangeKind.RETRACT, old, msg.ptime))
            del live[msg.key]
        else:
            if old is not None:
                out.append(Change(ChangeKind.RETRACT, old, msg.ptime))
            out.append(Change(ChangeKind.INSERT, msg.values, msg.ptime))
            live[msg.key] = msg.values
    return out
