"""Core substrate: time, schemas, rows, relations, changelogs, TVRs.

Everything in this package is engine-independent: it models the paper's
foundational objects (Section 3) without reference to SQL or plans.
"""

from .changelog import (
    Change,
    ChangeKind,
    Changelog,
    Upsert,
    UpsertKind,
    diff_bags,
    to_upserts,
    upserts_to_changes,
)
from .emit import EmitSpec
from .errors import (
    ExecutionError,
    LexError,
    ParseError,
    PlanError,
    ReproError,
    SchemaError,
    SqlError,
    ValidationError,
    WatermarkError,
)
from .relation import Relation
from .row import Row
from .schema import (
    Column,
    Schema,
    SqlType,
    bool_col,
    float_col,
    int_col,
    string_col,
    timestamp_col,
)
from .times import (
    MAX_TIMESTAMP,
    MIN_TIMESTAMP,
    Duration,
    Timestamp,
    align_to_window,
    days,
    fmt_duration,
    fmt_time,
    hours,
    millis,
    minutes,
    seconds,
    t,
)
from .tvr import RowEvent, StreamEvent, TimeVaryingRelation, WatermarkEvent, ins, rm, wm
from .watermark import (
    BoundedOutOfOrderness,
    PunctuatedWatermarks,
    WatermarkTrack,
    merge_watermarks,
)

__all__ = [
    # times
    "Timestamp",
    "Duration",
    "MIN_TIMESTAMP",
    "MAX_TIMESTAMP",
    "millis",
    "seconds",
    "minutes",
    "hours",
    "days",
    "t",
    "fmt_time",
    "fmt_duration",
    "align_to_window",
    # schema / rows / relations
    "SqlType",
    "Column",
    "Schema",
    "int_col",
    "float_col",
    "string_col",
    "bool_col",
    "timestamp_col",
    "Row",
    "Relation",
    # changelog / duality
    "ChangeKind",
    "Change",
    "Changelog",
    "UpsertKind",
    "Upsert",
    "diff_bags",
    "to_upserts",
    "upserts_to_changes",
    # TVR
    "TimeVaryingRelation",
    "StreamEvent",
    "RowEvent",
    "WatermarkEvent",
    "ins",
    "rm",
    "wm",
    # watermarks
    "WatermarkTrack",
    "BoundedOutOfOrderness",
    "PunctuatedWatermarks",
    "merge_watermarks",
    # emit
    "EmitSpec",
    # errors
    "ReproError",
    "SqlError",
    "LexError",
    "ParseError",
    "ValidationError",
    "PlanError",
    "ExecutionError",
    "SchemaError",
    "WatermarkError",
]
