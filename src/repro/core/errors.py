"""Exception hierarchy for the engine.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
The SQL front end raises position-annotated subclasses that render a
caret diagnostic pointing into the query text.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SqlError",
    "LexError",
    "ParseError",
    "ValidationError",
    "PlanError",
    "ExecutionError",
    "SchemaError",
    "WatermarkError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A schema was malformed or used inconsistently."""


class WatermarkError(ReproError):
    """A watermark contract was violated (e.g. non-monotonic advance)."""


class SqlError(ReproError):
    """Base class for errors in SQL text, carrying a source position."""

    def __init__(self, message: str, sql: str | None = None, pos: int | None = None):
        super().__init__(message)
        self.message = message
        self.sql = sql
        self.pos = pos

    def __str__(self) -> str:
        if self.sql is None or self.pos is None:
            return self.message
        line_start = self.sql.rfind("\n", 0, self.pos) + 1
        line_end = self.sql.find("\n", self.pos)
        if line_end == -1:
            line_end = len(self.sql)
        line_no = self.sql.count("\n", 0, self.pos) + 1
        col = self.pos - line_start
        snippet = self.sql[line_start:line_end]
        caret = " " * col + "^"
        return f"{self.message} (line {line_no}, column {col + 1})\n{snippet}\n{caret}"


class LexError(SqlError):
    """The tokenizer hit a character sequence it cannot tokenize."""


class ParseError(SqlError):
    """The parser hit an unexpected token."""


class ValidationError(SqlError):
    """The query is syntactically valid but semantically wrong.

    Examples: unknown table or column, type mismatch, or a violation of
    the paper's event-time rules (e.g. grouping an unbounded stream
    without an event-time key, Extension 2).
    """


class PlanError(ReproError):
    """The planner could not translate a validated query."""


class ExecutionError(ReproError):
    """A runtime failure while executing a plan."""
