"""Row values.

Internally the engine moves data around as plain Python tuples — the
cheapest immutable, hashable container available.  :class:`Row` is the
public-facing view of one tuple bound to its schema: it supports lookup
by column name or index and renders itself readably.  Operators never
allocate :class:`Row` objects on the hot path; they are created lazily
when results are handed to the user.
"""

from __future__ import annotations

from typing import Any, Iterator

from .schema import Schema, SqlType
from .times import fmt_time

__all__ = ["Row"]


class Row:
    """An immutable row bound to a schema.

    Supports ``row["price"]``, ``row[3]``, ``row.price``, iteration,
    equality against other rows or raw tuples, and dict conversion.
    """

    __slots__ = ("_schema", "_values")

    def __init__(self, schema: Schema, values: tuple[Any, ...]):
        if len(values) != len(schema):
            raise ValueError(
                f"row has {len(values)} values but schema has {len(schema)} columns"
            )
        self._schema = schema
        self._values = values

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def values(self) -> tuple[Any, ...]:
        """The underlying value tuple."""
        return self._values

    def __getitem__(self, key: str | int) -> Any:
        if isinstance(key, int):
            return self._values[key]
        return self._values[self._schema.index_of(key)]

    def __getattr__(self, name: str) -> Any:
        # __getattr__ is only called when normal lookup fails, so the
        # _schema/_values slots never route through here.  Probe the
        # schema's interned index map directly instead of paying the
        # index_of call plus its error-wrapping per lookup.
        try:
            return self._values[self._schema._index[name.lower()]]
        except (KeyError, IndexError):
            raise AttributeError(name) from None

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self._values == other._values
        if isinstance(other, tuple):
            return self._values == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._values)

    def as_dict(self) -> dict[str, Any]:
        """Column name → value mapping for this row."""
        return dict(zip(self._schema.column_names(), self._values))

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{col.name}={format_value(v, col.type)}"
            for col, v in zip(self._schema.columns, self._values)
        )
        return f"Row({pairs})"


def format_value(value: Any, sql_type: SqlType) -> str:
    """Render one value the way the paper's listings print it."""
    if value is None:
        return "NULL"
    if sql_type is SqlType.TIMESTAMP:
        return fmt_time(value)
    if sql_type is SqlType.BOOL:
        return "TRUE" if value else "FALSE"
    return str(value)


__all__.append("format_value")
