"""Time-varying relations: the paper's single semantic object.

A :class:`TimeVaryingRelation` (TVR) is a relation whose contents evolve
over processing time, together with the watermark metadata that makes
event-time reasoning possible.  Both classic tables and streams are
TVRs; they differ only in how they are *rendered* (snapshot vs.
changelog), which is exactly the stream/table duality of Section 3.1.

A TVR is assembled from a processing-time-ordered sequence of
:class:`StreamEvent` items — row insertions, row retractions, and
watermark advances — mirroring the paper's example dataset notation::

    8:07  WM -> 8:05
    8:08  INSERT (8:07, $2, A)

which here reads::

    events = [wm(t("8:07"), t("8:05")), ins(t("8:08"), (t("8:07"), 2, "A"))]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from .changelog import Change, ChangeKind, Changelog
from .errors import ExecutionError
from .relation import Relation
from .schema import Schema
from .times import MAX_TIMESTAMP, MIN_TIMESTAMP, Timestamp
from .watermark import WatermarkTrack

__all__ = [
    "StreamEvent",
    "RowEvent",
    "WatermarkEvent",
    "ins",
    "rm",
    "wm",
    "TimeVaryingRelation",
]


@dataclass(frozen=True)
class RowEvent:
    """A row being inserted into or retracted from the relation."""

    ptime: Timestamp
    change: Change

    @property
    def is_insert(self) -> bool:
        return self.change.is_insert


@dataclass(frozen=True)
class WatermarkEvent:
    """The relation's watermark advancing to ``value`` at ``ptime``."""

    ptime: Timestamp
    value: Timestamp


StreamEvent = RowEvent | WatermarkEvent


def ins(ptime: Timestamp, values: Sequence[Any]) -> RowEvent:
    """An insertion of ``values`` at processing time ``ptime``."""
    return RowEvent(ptime, Change(ChangeKind.INSERT, tuple(values), ptime))


def rm(ptime: Timestamp, values: Sequence[Any]) -> RowEvent:
    """A retraction of ``values`` at processing time ``ptime``."""
    return RowEvent(ptime, Change(ChangeKind.RETRACT, tuple(values), ptime))


def wm(ptime: Timestamp, value: Timestamp) -> WatermarkEvent:
    """The watermark advancing to ``value`` at processing time ``ptime``."""
    return WatermarkEvent(ptime, value)


class TimeVaryingRelation:
    """A relation evolving over processing time, with watermark metadata.

    The full suite of relational operators applies to a TVR pointwise in
    time; this class only stores and renders the data — query evaluation
    lives in :mod:`repro.exec`.
    """

    def __init__(self, schema: Schema, events: Iterable[StreamEvent] = ()):
        self._schema = schema
        self._events: list[StreamEvent] = []
        self._changelog = Changelog()
        self._watermarks = WatermarkTrack()
        self._last_ptime: Timestamp = MIN_TIMESTAMP
        for event in events:
            self.apply(event)

    # -- construction --------------------------------------------------

    @classmethod
    def from_table(
        cls, schema: Schema, rows: Iterable[Sequence[Any]]
    ) -> "TimeVaryingRelation":
        """A bounded TVR: a classic table, complete from the start.

        All rows exist at the beginning of time and the watermark
        immediately jumps to ``MAX_TIMESTAMP``, asserting total
        completeness — this is how a recorded stream is replayed "as a
        table" to get the same query results (Section 4).
        """
        tvr = cls(schema)
        for row in rows:
            tvr.insert(MIN_TIMESTAMP, row)
        tvr.advance_watermark(MIN_TIMESTAMP, MAX_TIMESTAMP)
        return tvr

    # -- mutation ------------------------------------------------------

    def apply(self, event: StreamEvent) -> None:
        """Append one stream event; processing time must not regress."""
        if event.ptime < self._last_ptime:
            raise ExecutionError(
                f"stream event out of processing-time order: {event.ptime} "
                f"after {self._last_ptime}"
            )
        if isinstance(event, RowEvent):
            if len(event.change.values) != len(self._schema):
                raise ExecutionError(
                    f"row arity {len(event.change.values)} does not match "
                    f"schema arity {len(self._schema)}"
                )
            self._changelog.append(event.change)
        else:
            self._watermarks.advance(event.ptime, event.value)
        self._events.append(event)
        self._last_ptime = event.ptime

    def insert(self, ptime: Timestamp, values: Sequence[Any]) -> None:
        """Insert a row at processing time ``ptime``."""
        self.apply(ins(ptime, values))

    def retract(self, ptime: Timestamp, values: Sequence[Any]) -> None:
        """Retract a row occurrence at processing time ``ptime``."""
        self.apply(rm(ptime, values))

    def advance_watermark(self, ptime: Timestamp, value: Timestamp) -> None:
        """Advance this relation's watermark."""
        self.apply(wm(ptime, value))

    # -- accessors -----------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def changelog(self) -> Changelog:
        """The stream rendering: the changelog of this TVR."""
        return self._changelog

    @property
    def watermarks(self) -> WatermarkTrack:
        return self._watermarks

    @property
    def last_ptime(self) -> Timestamp:
        """The processing time of the most recent event."""
        return self._last_ptime

    @property
    def is_bounded(self) -> bool:
        """Whether the relation has asserted total completeness."""
        return self._watermarks.current >= MAX_TIMESTAMP

    def events(self) -> list[StreamEvent]:
        """All stream events in processing-time order."""
        return list(self._events)

    def snapshot(self, ptime: Timestamp = MAX_TIMESTAMP) -> Relation:
        """The table rendering: the relation's contents at ``ptime``."""
        return self._changelog.snapshot_at(self._schema, ptime)

    def watermark_at(self, ptime: Timestamp) -> Timestamp:
        """The watermark in effect at ``ptime``."""
        return self._watermarks.value_at(ptime)

    def contract_violations(self, time_column: str | None = None) -> list[str]:
        """Rows that violate the watermark contract (Section 3.2.2).

        A watermark asserts a lower bound on future rows' event
        timestamps; rows arriving strictly below the watermark in force
        are late.  Late rows are legal input (Extension 2 defines how
        they are dropped or, with allowed lateness, applied), but a
        *source* emitting them has a broken watermark generator — this
        diagnostic lists them.  ``time_column`` defaults to the
        schema's single event time column.

        The bound is treated as *inclusive* (a row exactly at the
        watermark is fine).  Section 3.2.2's prose says future
        timestamps are "greater than" the watermark, but the paper's
        own example violates that reading: row C (bidtime 8:05) arrives
        at 8:13 while the watermark stands at exactly 8:05, and every
        listing includes C in the results.
        """
        if time_column is None:
            event_cols = self._schema.event_time_columns
            if len(event_cols) != 1:
                raise ExecutionError(
                    "contract_violations needs an explicit time_column "
                    f"when the schema has {len(event_cols)} event time "
                    "columns"
                )
            time_column = event_cols[0].name
        index = self._schema.index_of(time_column)
        violations: list[str] = []
        watermark = MIN_TIMESTAMP
        for event in self._events:
            if isinstance(event, WatermarkEvent):
                watermark = event.value
                continue
            ts = event.change.values[index]
            if ts is not None and ts < watermark:
                violations.append(
                    f"row {event.change.values!r} at ptime {event.ptime} "
                    f"has {time_column}={ts} < watermark {watermark}"
                )
        return violations

    def __repr__(self) -> str:
        return (
            f"TimeVaryingRelation({len(self._events)} events, "
            f"schema={self._schema})"
        )
