"""Temporal primitives shared by the whole engine.

The paper ("One SQL to Rule Them All", SIGMOD 2019) works throughout in
wall-clock minutes (``8:07``-style times) and ``INTERVAL`` durations.
Internally the engine represents every instant — event time *and*
processing time — as an integer count of **milliseconds** since an
arbitrary epoch.  Integers keep arithmetic exact, hashable, and fast,
which matters because timestamps are compared on every row the engine
touches.

Two module-level sentinels bound the time domain:

* :data:`MIN_TIMESTAMP` — before every representable instant; the value
  of a watermark that has not advanced yet.
* :data:`MAX_TIMESTAMP` — after every representable instant; the value
  of a watermark for an input that is fully consumed (e.g. a bounded
  table), signalling global completeness.
"""

from __future__ import annotations

__all__ = [
    "Timestamp",
    "Duration",
    "MIN_TIMESTAMP",
    "MAX_TIMESTAMP",
    "MILLIS_PER_SECOND",
    "MILLIS_PER_MINUTE",
    "MILLIS_PER_HOUR",
    "MILLIS_PER_DAY",
    "millis",
    "seconds",
    "minutes",
    "hours",
    "days",
    "t",
    "fmt_time",
    "fmt_duration",
    "align_to_window",
]

# Timestamps and durations are plain ints (milliseconds).  The aliases
# exist so signatures document which of the two a parameter means.
Timestamp = int
Duration = int

MILLIS_PER_SECOND = 1_000
MILLIS_PER_MINUTE = 60 * MILLIS_PER_SECOND
MILLIS_PER_HOUR = 60 * MILLIS_PER_MINUTE
MILLIS_PER_DAY = 24 * MILLIS_PER_HOUR

#: A watermark that has made no completeness assertion yet.
MIN_TIMESTAMP: Timestamp = -(2**62)

#: A watermark asserting the input is entirely complete.
MAX_TIMESTAMP: Timestamp = 2**62


def millis(n: int) -> Duration:
    """Return a duration of ``n`` milliseconds."""
    return n


def seconds(n: float) -> Duration:
    """Return a duration of ``n`` seconds as milliseconds."""
    return int(n * MILLIS_PER_SECOND)


def minutes(n: float) -> Duration:
    """Return a duration of ``n`` minutes as milliseconds."""
    return int(n * MILLIS_PER_MINUTE)


def hours(n: float) -> Duration:
    """Return a duration of ``n`` hours as milliseconds."""
    return int(n * MILLIS_PER_HOUR)


def days(n: float) -> Duration:
    """Return a duration of ``n`` days as milliseconds."""
    return int(n * MILLIS_PER_DAY)


def t(clock: str) -> Timestamp:
    """Parse a paper-style wall-clock time into a timestamp.

    Accepts ``"H:MM"``, ``"H:MM:SS"``, and ``"H:MM:SS.mmm"``.  The
    result is the offset from midnight of an unspecified day, which is
    all the paper's examples need::

        >>> t("8:07")
        29220000
        >>> fmt_time(t("8:07"))
        '8:07'
    """
    parts = clock.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(f"cannot parse clock time {clock!r}")
    # str.isdigit rejects signs, whitespace, and underscores, so a
    # malformed string like "-1:30" fails here instead of silently
    # becoming a negative timestamp.
    if not parts[0].isdigit():
        raise ValueError(f"hour must be a non-negative integer in {clock!r}")
    if not parts[1].isdigit():
        raise ValueError(f"minute must be a non-negative integer in {clock!r}")
    hour = int(parts[0])
    minute = int(parts[1])
    if minute > 59:
        raise ValueError(f"minute out of range in {clock!r}")
    total = hour * MILLIS_PER_HOUR + minute * MILLIS_PER_MINUTE
    if len(parts) == 3:
        sec_part = parts[2]
        if "." in sec_part:
            sec_str, frac = sec_part.split(".", 1)
            if not frac.isdigit():
                raise ValueError(
                    f"fractional seconds must be digits in {clock!r}"
                )
            frac_ms = int(frac.ljust(3, "0")[:3])
        else:
            sec_str, frac_ms = sec_part, 0
        if not sec_str.isdigit():
            raise ValueError(
                f"second must be a non-negative integer in {clock!r}"
            )
        second = int(sec_str)
        if second > 59:
            raise ValueError(f"second out of range in {clock!r}")
        total += second * MILLIS_PER_SECOND + frac_ms
    return total


def fmt_time(ts: Timestamp) -> str:
    """Render a timestamp in the paper's ``H:MM`` style.

    Sub-minute precision is shown only when present, so the output of
    the motivating example matches the listings character for
    character.
    """
    if ts <= MIN_TIMESTAMP:
        return "-inf"
    if ts >= MAX_TIMESTAMP:
        return "+inf"
    if ts < 0:
        return f"-{fmt_time(-ts)}"
    hour, rem = divmod(ts, MILLIS_PER_HOUR)
    minute, rem = divmod(rem, MILLIS_PER_MINUTE)
    second, ms = divmod(rem, MILLIS_PER_SECOND)
    if ms:
        return f"{hour}:{minute:02d}:{second:02d}.{ms:03d}"
    if second:
        return f"{hour}:{minute:02d}:{second:02d}"
    return f"{hour}:{minute:02d}"


def fmt_duration(dur: Duration) -> str:
    """Render a duration compactly (e.g. ``10m``, ``1h30m``, ``250ms``)."""
    if dur < 0:
        return f"-{fmt_duration(-dur)}"
    parts = []
    for unit_ms, suffix in (
        (MILLIS_PER_DAY, "d"),
        (MILLIS_PER_HOUR, "h"),
        (MILLIS_PER_MINUTE, "m"),
        (MILLIS_PER_SECOND, "s"),
    ):
        count, dur = divmod(dur, unit_ms)
        if count:
            parts.append(f"{count}{suffix}")
    if dur or not parts:
        parts.append(f"{dur}ms")
    return "".join(parts)


def align_to_window(ts: Timestamp, size: Duration, offset: Duration = 0) -> Timestamp:
    """Return the start of the size-``size`` window containing ``ts``.

    Windows tile the event-time axis starting at ``offset`` from the
    epoch.  Used by the Tumble and Hop table-valued functions; floor
    division keeps the result correct for negative timestamps too.
    """
    if size <= 0:
        raise ValueError("window size must be positive")
    return ((ts - offset) // size) * size + offset
