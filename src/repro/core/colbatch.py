"""Columnar micro-batches: the vectorized payload between operators.

Inside one micro-batch the executor can move data column-wise instead
of as per-row :class:`~repro.core.changelog.Change` objects.  A
:class:`ColumnarBatch` holds one sequence per column plus parallel
``kinds``/``ptimes`` vectors (and an optional ``seqs`` vector carrying
merge sequence numbers, reserved for routing layers).  The payoff on
the hot path is twofold:

* kind-preserving operators (Tumble, pipelines without filters) can
  *share* untouched column sequences with their input instead of
  rebuilding one tuple per row, and
* generated expression loops (:mod:`repro.exec.codegen`) read scalars
  straight out of columns, so no intermediate ``Change`` or row tuple
  is ever allocated between fused operators.

Batches are immutable by convention: a batch may be fanned out to
several consumers (shared subplans multicast their output), so an
operator must never mutate the column sequences it receives — derived
batches reference or copy, never write.  Conversion back to rows
(:meth:`to_changes`) happens lazily at the first non-vectorized
boundary and is memoized, so an output channel and a row-at-a-time
consumer downstream of the same batch pay for the conversion once.

The row and columnar encodings are two spellings of the same changelog
slice; converting in either direction is byte-identity-preserving by
construction, which is what lets the executor mix vectorized and
row-at-a-time operators freely inside one plan.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .changelog import Change, ChangeKind
from .times import Timestamp

__all__ = ["ColumnarBatch"]

_RETRACT = ChangeKind.RETRACT


class ColumnarBatch:
    """A micro-batch of changes stored column-wise.

    ``columns`` is one sequence per output column (all the same
    length); ``kinds`` and ``ptimes`` are the parallel per-row change
    kind and processing-time vectors.  ``seqs`` optionally carries
    per-row merge sequence numbers for routing layers.
    """

    __slots__ = ("columns", "kinds", "ptimes", "seqs", "_rows", "_retracts")

    def __init__(
        self,
        columns: Sequence[Sequence],
        kinds: Sequence[ChangeKind],
        ptimes: Sequence[Timestamp],
        seqs: Optional[Sequence[int]] = None,
    ):
        self.columns = tuple(columns)
        self.kinds = kinds
        self.ptimes = ptimes
        self.seqs = seqs
        self._rows: Optional[list[Change]] = None
        self._retracts: Optional[int] = None

    # -- construction --------------------------------------------------

    @classmethod
    def from_changes(
        cls, changes: Sequence[Change], width: int
    ) -> "ColumnarBatch":
        """Transpose a run of row changes into columns.

        The original change list is retained as the memoized row view,
        so a batch that crosses back to the row encoding untouched
        hands out the very objects it was built from.
        """
        kinds = [c.kind for c in changes]
        ptimes = [c.ptime for c in changes]
        if changes:
            columns = list(zip(*(c.values for c in changes)))
        else:
            columns = [() for _ in range(width)]
        batch = cls(columns, kinds, ptimes)
        batch._rows = list(changes)
        return batch

    # -- row view ------------------------------------------------------

    def to_changes(self) -> list[Change]:
        """The row encoding of this batch (memoized)."""
        rows = self._rows
        if rows is None:
            make = Change
            rows = [
                make(kind, values, ptime)
                for kind, values, ptime in zip(
                    self.kinds, zip(*self.columns), self.ptimes
                )
            ]
            self._rows = rows
        return rows

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return len(self.kinds)

    @property
    def width(self) -> int:
        return len(self.columns)

    def retract_count(self) -> int:
        """Retractions in the batch (memoized; counters use this)."""
        count = self._retracts
        if count is None:
            count = 0
            for kind in self.kinds:
                if kind is _RETRACT:
                    count += 1
            self._retracts = count
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarBatch({len(self)} rows x {self.width} cols, "
            f"{self.retract_count()} retracts)"
        )
