"""Instantaneous relations.

A :class:`Relation` is a classic point-in-time relation — what CQL calls
an *instantaneous relation* and what you get by snapshotting a
time-varying relation at one processing-time instant.  It is a bag
(duplicates allowed), matching SQL semantics without ``DISTINCT``.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, Iterator, Sequence

from .row import Row, format_value
from .schema import Schema

__all__ = ["Relation"]


class Relation:
    """A bag of rows with a fixed schema at a single point in time."""

    __slots__ = ("_schema", "_rows")

    def __init__(self, schema: Schema, rows: Iterable[tuple[Any, ...]] = ()):
        self._schema = schema
        self._rows: list[tuple[Any, ...]] = [tuple(r) for r in rows]
        for r in self._rows:
            if len(r) != len(schema):
                raise ValueError(
                    f"row {r!r} has {len(r)} values; schema needs {len(schema)}"
                )

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def tuples(self) -> list[tuple[Any, ...]]:
        """The raw value tuples, in insertion order."""
        return list(self._rows)

    def rows(self) -> list[Row]:
        """The rows as schema-bound :class:`Row` objects."""
        return [Row(self._schema, r) for r in self._rows]

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows())

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __eq__(self, other: object) -> bool:
        """Bag equality: same rows with the same multiplicities.

        Row order is not part of relation identity (SQL relations are
        unordered unless an ``ORDER BY`` was applied).
        """
        if not isinstance(other, Relation):
            return NotImplemented
        return Counter(self._rows) == Counter(other._rows)

    def __hash__(self) -> int:  # pragma: no cover - relations are mutable bags
        raise TypeError("Relation is not hashable")

    def sorted(self, by: Sequence[str] | None = None) -> "Relation":
        """A copy with rows sorted by the given columns (or all columns)."""
        if by is None:
            key_fn = lambda row: row  # noqa: E731 - trivial sort key
        else:
            idxs = [self._schema.index_of(name) for name in by]
            key_fn = lambda row: tuple(row[i] for i in idxs)  # noqa: E731
        return Relation(self._schema, sorted(self._rows, key=key_fn))

    def to_table(self) -> str:
        """Render as an ASCII table in the style of the paper's listings."""
        names = self._schema.column_names()
        cells = [
            [format_value(v, col.type) for col, v in zip(self._schema.columns, row)]
            for row in self._rows
        ]
        widths = [
            max(len(name), *(len(r[i]) for r in cells)) if cells else len(name)
            for i, name in enumerate(names)
        ]
        def line(values: Sequence[str]) -> str:
            return "| " + " | ".join(v.ljust(w) for v, w in zip(values, widths)) + " |"

        sep = "-" * len(line(names))
        out = [line(names), sep]
        out.extend(line(r) for r in cells)
        return "\n".join(out)

    def __repr__(self) -> str:
        return f"Relation({len(self._rows)} rows, schema={self._schema})"
