"""EMIT clauses: the paper's materialization controls (Extensions 4-7).

An :class:`EmitSpec` captures the ``EMIT`` modifier of a top-level
query:

* ``EMIT STREAM`` — render the changelog of the result TVR instead of a
  snapshot (Extension 4).  The stream carries three extra metadata
  columns: ``undo``, ``ptime``, and ``ver``.
* ``EMIT AFTER WATERMARK`` — materialize a row only once its inputs are
  known complete (Extension 5).
* ``EMIT AFTER DELAY d`` — materialize at most once per period ``d``
  per aggregate (Extension 6).
* ``EMIT AFTER DELAY d AND AFTER WATERMARK`` — both: periodic partial
  results plus a final on-time result (Extension 7; the
  early/on-time/late pattern).
"""

from __future__ import annotations

from dataclasses import dataclass

from .times import Duration, fmt_duration

__all__ = ["EmitSpec"]


@dataclass(frozen=True)
class EmitSpec:
    """A parsed ``EMIT`` clause.

    ``stream`` selects changelog rendering; ``after_watermark`` delays
    materialization until completeness; ``delay`` (milliseconds, or
    ``None``) imposes periodic coalescing.
    """

    stream: bool = False
    after_watermark: bool = False
    delay: Duration | None = None

    #: The default: a table view with instantaneous materialization.
    @classmethod
    def default(cls) -> "EmitSpec":
        return cls()

    @property
    def is_default(self) -> bool:
        return not self.stream and not self.after_watermark and self.delay is None

    @property
    def has_materialization_delay(self) -> bool:
        return self.after_watermark or self.delay is not None

    def __str__(self) -> str:
        if self.is_default:
            return ""
        parts = ["EMIT"]
        if self.stream:
            parts.append("STREAM")
        clauses = []
        if self.delay is not None:
            clauses.append(f"AFTER DELAY {fmt_duration(self.delay)}")
        if self.after_watermark:
            clauses.append("AFTER WATERMARK")
        parts.append(" AND ".join(clauses))
        return " ".join(p for p in parts if p)
