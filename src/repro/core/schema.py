"""Schemas: typed, named columns with event-time metadata.

Extension 1 of the paper makes "event time column" a property stored
*alongside the schema*: a distinguished ``TIMESTAMP`` column whose
values are covered by a watermark.  :class:`Column` therefore carries an
``event_time`` flag, and operators in the planner decide whether the
flag survives each transformation (verbatim forwarding preserves it,
arbitrary expressions degrade it to a plain timestamp — the alignment
lesson of Section 5 / Appendix B.2.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence

from .errors import SchemaError

__all__ = ["SqlType", "Column", "Schema"]


class SqlType(enum.Enum):
    """The scalar types understood by the engine."""

    INT = "INT"
    FLOAT = "FLOAT"
    STRING = "VARCHAR"
    BOOL = "BOOLEAN"
    TIMESTAMP = "TIMESTAMP"
    INTERVAL = "INTERVAL"
    NULL = "NULL"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_numeric(self) -> bool:
        return self in (SqlType.INT, SqlType.FLOAT)

    @property
    def is_temporal(self) -> bool:
        return self in (SqlType.TIMESTAMP, SqlType.INTERVAL)

    def is_comparable_with(self, other: "SqlType") -> bool:
        """Whether ``<`` / ``=`` comparisons between the types are sensible."""
        if self is other:
            return True
        if SqlType.NULL in (self, other):
            return True
        if self.is_numeric and other.is_numeric:
            return True
        # Timestamps compare with intervals only through arithmetic, not
        # directly; a timestamp +/- interval yields a timestamp.
        return False


@dataclass(frozen=True)
class Column:
    """A named, typed column.

    ``event_time=True`` marks a watermarked event time column in the
    sense of the paper's Extension 1.  Only ``TIMESTAMP`` columns may
    carry the flag.
    """

    name: str
    type: SqlType
    event_time: bool = False

    def __post_init__(self) -> None:
        if self.event_time and self.type is not SqlType.TIMESTAMP:
            raise SchemaError(
                f"column {self.name!r}: only TIMESTAMP columns can be "
                f"event time columns, got {self.type}"
            )

    def degraded(self) -> "Column":
        """This column with event-time alignment dropped."""
        if not self.event_time:
            return self
        return replace(self, event_time=False)

    def renamed(self, name: str) -> "Column":
        return replace(self, name=name)

    def __str__(self) -> str:
        marker = " *EVENT TIME*" if self.event_time else ""
        return f"{self.name} {self.type}{marker}"


@dataclass(frozen=True)
class Schema:
    """An ordered collection of uniquely named columns."""

    columns: tuple[Column, ...]
    _index: dict[str, int] = field(init=False, repr=False, compare=False, hash=False)

    def __init__(self, columns: Iterable[Column]):
        cols = tuple(columns)
        index: dict[str, int] = {}
        for i, col in enumerate(cols):
            key = col.name.lower()
            if key in index:
                raise SchemaError(f"duplicate column name {col.name!r}")
            index[key] = i
        object.__setattr__(self, "columns", cols)
        object.__setattr__(self, "_index", index)

    # -- lookups -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._index

    def index_of(self, name: str) -> int:
        """Index of the column called ``name`` (case-insensitive)."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise SchemaError(
                f"no column {name!r}; schema has {self.column_names()}"
            ) from None

    def column(self, name: str) -> Column:
        return self.columns[self.index_of(name)]

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def event_time_columns(self) -> list[Column]:
        """The watermarked event time columns of this schema."""
        return [c for c in self.columns if c.event_time]

    # -- derivation ----------------------------------------------------

    def with_columns(self, extra: Sequence[Column]) -> "Schema":
        """A new schema with ``extra`` appended."""
        return Schema(self.columns + tuple(extra))

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a join output: this schema followed by ``other``.

        Name collisions are disambiguated with a numeric suffix, the way
        most engines label duplicate join columns.
        """
        taken = {c.name.lower() for c in self.columns}
        merged = list(self.columns)
        for col in other.columns:
            name = col.name
            n = 0
            while name.lower() in taken:
                name = f"{col.name}{n}"
                n += 1
            taken.add(name.lower())
            merged.append(col.renamed(name))
        return Schema(merged)

    def project(self, names: Sequence[str]) -> "Schema":
        """Schema restricted to ``names``, in the given order."""
        return Schema([self.column(n) for n in names])

    def renamed(self, names: Sequence[str]) -> "Schema":
        """This schema with columns renamed positionally."""
        if len(names) != len(self.columns):
            raise SchemaError(
                f"rename expects {len(self.columns)} names, got {len(names)}"
            )
        return Schema([c.renamed(n) for c, n in zip(self.columns, names)])

    def degraded(self) -> "Schema":
        """This schema with all event-time flags dropped."""
        return Schema([c.degraded() for c in self.columns])

    def __str__(self) -> str:
        return "(" + ", ".join(str(c) for c in self.columns) + ")"


def int_col(name: str) -> Column:
    """Shorthand for an ``INT`` column."""
    return Column(name, SqlType.INT)


def float_col(name: str) -> Column:
    """Shorthand for a ``FLOAT`` column."""
    return Column(name, SqlType.FLOAT)


def string_col(name: str) -> Column:
    """Shorthand for a ``VARCHAR`` column."""
    return Column(name, SqlType.STRING)


def bool_col(name: str) -> Column:
    """Shorthand for a ``BOOLEAN`` column."""
    return Column(name, SqlType.BOOL)


def timestamp_col(name: str, event_time: bool = False) -> Column:
    """Shorthand for a ``TIMESTAMP`` column, optionally watermarked."""
    return Column(name, SqlType.TIMESTAMP, event_time=event_time)


__all__ += ["int_col", "float_col", "string_col", "bool_col", "timestamp_col"]
