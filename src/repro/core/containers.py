"""Small ordered containers used by operator state.

:class:`SortedMultiset` backs the retractable ``MIN`` / ``MAX``
aggregates: when a row is retracted from a group, the aggregate must be
able to fall back to the next-best value, which requires keeping the
full ordered multiset of inputs rather than a single running extreme.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Any, Iterator

__all__ = ["SortedMultiset"]


class SortedMultiset:
    """A multiset with O(log n) search and O(n) insert/remove (memmove).

    Backed by a sorted list; for the group sizes streaming aggregates
    see in practice, the C-level ``list`` shifts beat fancier
    structures.
    """

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: list[Any] = []

    def add(self, value: Any) -> None:
        """Insert one occurrence of ``value``."""
        insort(self._items, value)

    def remove(self, value: Any) -> None:
        """Remove one occurrence of ``value``; KeyError if absent."""
        i = bisect_left(self._items, value)
        if i >= len(self._items) or self._items[i] != value:
            raise KeyError(value)
        del self._items[i]

    def discard(self, value: Any) -> bool:
        """Remove one occurrence if present; returns whether it was."""
        try:
            self.remove(value)
        except KeyError:
            return False
        return True

    def min(self) -> Any:
        """Smallest element; KeyError when empty."""
        if not self._items:
            raise KeyError("min of empty multiset")
        return self._items[0]

    def max(self) -> Any:
        """Largest element; KeyError when empty."""
        if not self._items:
            raise KeyError("max of empty multiset")
        return self._items[-1]

    def count(self, value: Any) -> int:
        """Occurrences of ``value``."""
        lo = bisect_left(self._items, value)
        n = 0
        while lo + n < len(self._items) and self._items[lo + n] == value:
            n += 1
        return n

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __contains__(self, value: Any) -> bool:
        i = bisect_left(self._items, value)
        return i < len(self._items) and self._items[i] == value

    def __repr__(self) -> str:
        return f"SortedMultiset({self._items!r})"
