"""Delta lineage: sampled, deterministic provenance tracing.

The paper's central claim is that a stream is a time-varying relation,
which means every emitted delta has a precise *relational* cause: the
set of source rows whose arrival (or the watermark that sealed them)
made the operator pipeline produce it.  After the DAG refactor a single
operator's output can feed many standing queries, so "which source rows
produced this delta, and through which shared operators?" is exactly
the question an operator of the service needs answered.

:class:`LineageRecorder` answers it without perturbing execution:

* **Deterministic sampling.**  An ingested event is traced iff
  ``crc32(source || seq) % sample_rate == 0`` — a pure function of the
  source name and the event's per-source arrival ordinal.  No wall
  clock, no RNG, so a serial run, a sharded run, and a re-run after
  checkpoint/restore all sample the *same* events and produce the same
  lineage graph.
* **Zero changelog impact.**  Tracing never touches
  :class:`~repro.core.changelog.Change` objects; the executor threads a
  *cause* token alongside batches, and with tracing off the token is
  ``None`` everywhere.  The byte-identity tests in
  ``tests/test_lineage.py`` pin this.
* **Bounded memory.**  At most ``max_traces`` sampled ingests are
  retained; older traces are evicted whole (every node they created)
  and counted in :attr:`LineageRecorder.dropped`.

The graph is append-only while an event is being pushed through a
flow: :meth:`begin_event` opens a trace (or returns ``None`` if the
event is unsampled), :meth:`record_operator` adds one node per
producing operator invocation, and :meth:`record_output` indexes the
changelog positions a traced batch landed at, keyed by
``(output_id, position)``.  Because subscription deltas are sequenced
by changelog position, ``explain(output_id, seq)`` resolves a
subscriber-visible delta directly to its trace, walking parent edges
back to the concrete source rows.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["LineageRecorder", "LineageNode", "sample_hash", "is_sampled"]


def sample_hash(source: str, seq: int) -> int:
    """The deterministic sampling hash for ingest ordinal ``seq`` of ``source``."""
    payload = source.encode("utf-8") + seq.to_bytes(8, "little", signed=False)
    return zlib.crc32(payload)


def is_sampled(source: str, seq: int, sample_rate: int) -> bool:
    """Whether event ``seq`` of ``source`` is traced at ``sample_rate``.

    ``sample_rate`` is "1 in N": 0 disables tracing, 1 traces
    everything, 64 traces roughly one event in 64 — always the *same*
    one in 64, because the decision is a pure function of its inputs.
    """
    if sample_rate <= 0:
        return False
    if sample_rate == 1:
        return True
    return sample_hash(source, seq) % sample_rate == 0


@dataclass
class LineageNode:
    """One vertex of the causal graph.

    ``kind`` is ``"source"`` (a traced ingest: ``source``/``seq`` name
    the event, ``values`` its row payload or watermark value),
    or ``"operator"`` (one producing operator invocation: ``operator``
    names it, ``shard`` locates it, ``shared_by`` counts the standing
    queries riding it, ``produced`` the changes it emitted).
    ``parents`` are the node ids of the causes it consumed.
    """

    node_id: int
    kind: str
    trace_id: int
    parents: tuple[int, ...] = ()
    source: str = ""
    seq: int = -1
    values: Any = None
    ptime: Any = None
    operator: str = ""
    shard: Optional[int] = None
    shared_by: int = 1
    produced: int = 0

    def snapshot(self) -> dict:
        return {
            "node_id": self.node_id,
            "kind": self.kind,
            "trace_id": self.trace_id,
            "parents": tuple(self.parents),
            "source": self.source,
            "seq": self.seq,
            "values": self.values,
            "ptime": self.ptime,
            "operator": self.operator,
            "shard": self.shard,
            "shared_by": self.shared_by,
            "produced": self.produced,
        }

    @classmethod
    def restore(cls, payload: dict) -> "LineageNode":
        return cls(**payload)


@dataclass
class _Trace:
    """Book-keeping for one sampled ingest: its nodes and output hits."""

    trace_id: int
    node_ids: list[int] = field(default_factory=list)
    output_keys: list[tuple[str, int]] = field(default_factory=list)


class LineageRecorder:
    """Sampled provenance recorder shared by one flow (or shard group).

    One recorder serves a whole :class:`~repro.runtime.sharded.
    ShardedDataflow` (the parent makes the sampling decision once and
    every shard flow records into the same graph), so lineage is
    identical whether a plan runs serially or sharded.
    """

    def __init__(self, sample_rate: int = 1, max_traces: int = 4096) -> None:
        if sample_rate < 0:
            raise ValueError("sample_rate must be >= 0 (0 disables tracing)")
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        self.sample_rate = sample_rate
        self.max_traces = max_traces
        self._next_node = 0
        self._next_trace = 0
        self._seqs: dict[str, int] = {}            # per-source ingest ordinals
        self._nodes: dict[int, LineageNode] = {}
        self._traces: "OrderedDict[int, _Trace]" = OrderedDict()
        self._outputs: dict[tuple[str, int], int] = {}  # (output_id, pos) -> node
        self.dropped = 0                            # traces evicted by the bound
        self.sampled = 0                            # traces opened
        self.events_seen = 0                        # ingests offered (sampled or not)
        # Per-source fast-path state for :meth:`offer`, keyed by the
        # spelling the caller used: [lowered, crc-prefix, next-sampled].
        self._offer_state: dict[str, list] = {}
        # The pending context: parent-driven sampling for sharded
        # flows.  Plain attributes — the executor reads them per event.
        self.pending: Optional[tuple[int, ...]] = None
        self.pending_active = False
        # Output positions noted by shard flows; the sharded parent maps
        # them to merged-changelog positions after routing each event.
        self._shard_notes: list[tuple[str, tuple[int, ...], int]] = []

    # -- sampling ------------------------------------------------------------

    def next_seq(self, source: str) -> int:
        """Claim the next ingest ordinal for ``source`` (case-normalized)."""
        source = source.lower()
        seq = self._seqs.get(source, 0)
        self._seqs[source] = seq + 1
        return seq

    def begin_event(
        self,
        source: str,
        *,
        kind: str = "source",
        values: Any = None,
        ptime: Any = None,
        seq: Optional[int] = None,
    ) -> Optional[tuple[int, ...]]:
        """Open a trace for one ingested event, if sampled.

        Returns the cause token (a tuple of source node ids) to thread
        through the flow, or ``None`` when the event is unsampled.  Pass
        ``seq`` explicitly to replay a decision already made (the
        sharded parent claims the ordinal, each shard replays it).

        Source names are case-normalized so the serial replay path
        (which lowercases registered sources) and the service ingest
        path sample identically.
        """
        source = source.lower()
        if seq is None:
            seq = self.next_seq(source)
        self.events_seen += 1
        if not is_sampled(source, seq, self.sample_rate):
            return None
        return self._open_source(source, seq, kind, values, ptime)

    def offer(self, source: str) -> Optional[int]:
        """Claim the next ordinal for ``source``; its seq if sampled.

        The executor's per-event fast path: one call decides sampling
        for the overwhelmingly common *untraced* case, without building
        the row kwargs :meth:`begin_event` wants.  When this returns a
        seq, follow up with :meth:`trace_event` to open the trace.
        Equivalent to ``begin_event(...) is not None`` bookkeeping-wise
        (the ordinal is consumed and ``events_seen`` counted either
        way), and the same deterministic decision: ``crc32`` of the
        ``(source, seq)`` payload.

        The hash never runs on the unsampled path: the *next* sampled
        ordinal is precomputed per source (it only depends on the
        source name and the rate), so skipping an event is a counter
        bump and one comparison.  The sampled path pays the scan to
        the following sampled ordinal — the same crc32-per-ordinal
        total, batched where it's cheap.
        """
        entry = self._offer_state.get(source)
        if entry is None:
            entry = self._make_offer_state(source)
        lowered = entry[0]
        seqs = self._seqs
        seq = seqs.get(lowered, 0)
        seqs[lowered] = seq + 1
        self.events_seen += 1
        nxt = entry[2]
        if nxt is None:
            return None                 # tracing disabled (rate 0)
        if seq > nxt:                   # stale: ordinals were claimed
            nxt = self._next_sampled(entry[1], seq)  # via begin_event
            entry[2] = nxt
        if seq != nxt:
            return None
        entry[2] = self._next_sampled(entry[1], seq + 1)
        return seq

    def _make_offer_state(self, source: str) -> list:
        lowered = source.lower()
        prefix = lowered.encode("utf-8")
        if self.sample_rate <= 0:
            nxt: Optional[int] = None
        else:
            nxt = self._next_sampled(prefix, self._seqs.get(lowered, 0))
        entry = [lowered, prefix, nxt]
        self._offer_state[source] = entry
        return entry

    def _next_sampled(self, prefix: bytes, start: int) -> int:
        """The first sampled ordinal ``>= start`` for this source."""
        rate = self.sample_rate
        if rate == 1:
            return start
        crc32 = zlib.crc32
        ahead = start
        while crc32(prefix + ahead.to_bytes(8, "little")) % rate:
            ahead += 1
        return ahead

    def trace_event(
        self,
        source: str,
        seq: int,
        *,
        kind: str = "source",
        values: Any = None,
        ptime: Any = None,
    ) -> tuple[int, ...]:
        """Open the trace for an event :meth:`offer` already sampled."""
        return self._open_source(source.lower(), seq, kind, values, ptime)

    def _open_source(
        self, source: str, seq: int, kind: str, values: Any, ptime: Any
    ) -> tuple[int, ...]:
        trace = self._open_trace()
        node = self._add_node(
            LineageNode(
                node_id=self._next_node,
                kind=kind,
                trace_id=trace.trace_id,
                source=source,
                seq=seq,
                values=values,
                ptime=ptime,
            ),
            trace,
        )
        return (node.node_id,)

    # -- pending context (sharded parent <-> shard flows) ----------------------

    def set_pending(self, cause: Optional[tuple[int, ...]]) -> None:
        """Pin the cause token shard flows should use for the next event.

        ``cause=None`` is meaningful (the parent decided the event is
        unsampled), so activation is tracked separately from the token.
        """
        self.pending = cause
        self.pending_active = True

    def clear_pending(self) -> None:
        self.pending = None
        self.pending_active = False

    def note_shard_output(
        self, output_id: str, cause: tuple[int, ...], count: int
    ) -> None:
        """A shard flow produced ``count`` traced changes on ``output_id``.

        Shard-local changelog positions differ from merged ones, so the
        shard only notes the production; the parent drains the notes and
        calls :meth:`record_output` with merged positions.
        """
        self._shard_notes.append((output_id, cause, count))

    def drain_shard_notes(self) -> list[tuple[str, tuple[int, ...], int]]:
        notes = self._shard_notes
        self._shard_notes = []
        return notes

    # -- recording -------------------------------------------------------------

    def record_operator(
        self,
        cause: tuple[int, ...],
        operator: str,
        *,
        shard: Optional[int] = None,
        shared_by: int = 1,
        produced: int = 0,
    ) -> tuple[int, ...]:
        """Add an operator invocation caused by ``cause``; returns its token."""
        trace = self._trace_of(cause)
        if trace is None:          # the whole trace was evicted mid-flight
            return cause
        node = self._add_node(
            LineageNode(
                node_id=self._next_node,
                kind="operator",
                trace_id=trace.trace_id,
                parents=tuple(cause),
                operator=operator,
                shard=shard,
                shared_by=shared_by,
                produced=produced,
            ),
            trace,
        )
        return (node.node_id,)

    def record_output(
        self, cause: tuple[int, ...], output_id: str, positions: range
    ) -> None:
        """Index changelog ``positions`` of ``output_id`` as caused by ``cause``."""
        trace = self._trace_of(cause)
        if trace is None:
            return
        node_id = cause[0]
        for pos in positions:
            self._outputs[(output_id, pos)] = node_id
            trace.output_keys.append((output_id, pos))

    # -- queries ---------------------------------------------------------------

    def explain(self, output_id: str, seq: int) -> Optional[dict]:
        """The provenance of changelog position ``seq`` of ``output_id``.

        Returns ``None`` when the position was never traced (unsampled
        event, tracing off, or the trace was evicted).  Otherwise a
        dict with the contributing ``sources`` (concrete rows) and the
        operator ``path`` from source to output, each step carrying its
        ``[shared ×k]`` attribution.
        """
        node_id = self._outputs.get((output_id, seq))
        if node_id is None or node_id not in self._nodes:
            return None
        sources: list[dict] = []
        path: list[dict] = []
        seen: set[int] = set()
        stack = [node_id]
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            node = self._nodes.get(nid)
            if node is None:
                continue
            if node.kind == "operator":
                path.append(
                    {
                        "operator": node.operator,
                        "shard": node.shard,
                        "shared_by": node.shared_by,
                        "produced": node.produced,
                    }
                )
            else:
                sources.append(
                    {
                        "kind": node.kind,
                        "source": node.source,
                        "seq": node.seq,
                        "values": node.values,
                        "ptime": node.ptime,
                    }
                )
            stack.extend(node.parents)
        # Leaf-to-root order reads naturally: reverse the DFS discovery.
        path.reverse()
        sources.sort(key=lambda s: (s["source"], s["seq"]))
        return {
            "output_id": output_id,
            "seq": seq,
            "trace_id": self._nodes[node_id].trace_id,
            "sources": sources,
            "path": path,
        }

    def traced_positions(self, output_id: str) -> list[int]:
        """Changelog positions of ``output_id`` with retained lineage."""
        return sorted(pos for (oid, pos) in self._outputs if oid == output_id)

    def summary(self) -> dict:
        return {
            "sample_rate": self.sample_rate,
            "events_seen": self.events_seen,
            "sampled": self.sampled,
            "retained": len(self._traces),
            "dropped": self.dropped,
            "nodes": len(self._nodes),
            "indexed_outputs": len(self._outputs),
        }

    # -- checkpoint/restore ------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "sample_rate": self.sample_rate,
            "max_traces": self.max_traces,
            "next_node": self._next_node,
            "next_trace": self._next_trace,
            "seqs": dict(self._seqs),
            "nodes": [n.snapshot() for n in self._nodes.values()],
            "traces": [
                {
                    "trace_id": t.trace_id,
                    "node_ids": list(t.node_ids),
                    "output_keys": list(t.output_keys),
                }
                for t in self._traces.values()
            ],
            "outputs": list(self._outputs.items()),
            "dropped": self.dropped,
            "sampled": self.sampled,
            "events_seen": self.events_seen,
        }

    @classmethod
    def restore(cls, payload: dict) -> "LineageRecorder":
        rec = cls(payload["sample_rate"], payload["max_traces"])
        rec._next_node = payload["next_node"]
        rec._next_trace = payload["next_trace"]
        rec._seqs = dict(payload["seqs"])
        rec._nodes = {
            n["node_id"]: LineageNode.restore(dict(n)) for n in payload["nodes"]
        }
        for t in payload["traces"]:
            rec._traces[t["trace_id"]] = _Trace(
                trace_id=t["trace_id"],
                node_ids=list(t["node_ids"]),
                output_keys=[tuple(k) for k in t["output_keys"]],
            )
        rec._outputs = {tuple(k): v for k, v in payload["outputs"]}
        rec.dropped = payload["dropped"]
        rec.sampled = payload["sampled"]
        rec.events_seen = payload["events_seen"]
        return rec

    # -- internals -----------------------------------------------------------

    def _open_trace(self) -> _Trace:
        trace = _Trace(trace_id=self._next_trace)
        self._next_trace += 1
        self.sampled += 1
        self._traces[trace.trace_id] = trace
        while len(self._traces) > self.max_traces:
            _, evicted = self._traces.popitem(last=False)
            for nid in evicted.node_ids:
                self._nodes.pop(nid, None)
            for key in evicted.output_keys:
                self._outputs.pop(key, None)
            self.dropped += 1
        return trace

    def _add_node(self, node: LineageNode, trace: _Trace) -> LineageNode:
        self._next_node += 1
        self._nodes[node.node_id] = node
        trace.node_ids.append(node.node_id)
        return node

    def _trace_of(self, cause: tuple[int, ...]) -> Optional[_Trace]:
        if not cause:
            return None
        node = self._nodes.get(cause[0])
        if node is None:
            return None
        return self._traces.get(node.trace_id)
