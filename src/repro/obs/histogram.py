"""Fixed-bucket log-scale histograms for latency telemetry.

The materialization extensions (EMIT AFTER WATERMARK / AFTER DELAY,
Sections 4-6) trade latency for completeness; quantifying that trade
needs latency *distributions*, not averages.  :class:`Histogram` is the
engine's one distribution type: millisecond values land in power-of-two
buckets, so the bucket layout is a constant of the library and any two
histograms — one per shard, one per run, one per process — merge by
elementwise addition.  That merge is associative and commutative
(pinned by a Hypothesis property in ``tests/test_telemetry.py``),
which is what makes the sharded runtime's per-shard observations sum
into exactly the serial run's distribution.

The same layout maps 1:1 onto Prometheus histogram exposition
(cumulative ``le`` buckets, ``_sum``, ``_count``); see
:mod:`repro.obs.export`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

__all__ = ["Histogram", "BUCKET_BOUNDS"]

# Upper bounds of the value buckets, in milliseconds: 1ms, 2ms, 4ms, ...
# 2**40 ms (~35 years).  Values above the last bound land in a final
# overflow bucket (Prometheus "+Inf").  Fixed at import time so every
# histogram anywhere in a run — or across runs — shares the layout.
BUCKET_BOUNDS: tuple[int, ...] = tuple(2**i for i in range(41))


class Histogram:
    """A mergeable log2-bucket histogram of non-negative millisecond values.

    Tracks exact ``count``/``sum``/``min``/``max`` alongside the bucket
    counts; percentiles are estimated from the buckets (upper-bound
    rule, clamped to the observed extremes), so a reported p99 is never
    below the true p99 by more than one bucket width.
    """

    __slots__ = ("buckets", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self.buckets = [0] * (len(BUCKET_BOUNDS) + 1)
        self.count = 0
        self.sum = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def observe(self, value: int) -> None:
        """Record one value; negatives clamp to zero (an early emit has
        no latency, it is ahead of its deadline)."""
        if value < 0:
            value = 0
        self.buckets[_bucket_index(value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def observe_many(self, values: Iterable[int]) -> None:
        """Record many values at once; identical to observing each in
        turn, with the attribute traffic hoisted out of the loop."""
        buckets = self.buckets
        top = len(buckets) - 1
        total = 0
        seen = 0
        lo, hi = self.min, self.max
        for value in values:
            if value < 0:
                value = 0
            buckets[0 if value <= 1 else min((value - 1).bit_length(), top)] += 1
            total += value
            seen += 1
            if lo is None or value < lo:
                lo = value
            if hi is None or value > hi:
                hi = value
        if not seen:
            return
        self.count += seen
        self.sum += total
        self.min, self.max = lo, hi

    def observe_run(self, value: int, times: int) -> None:
        """Record one value ``times`` times; identical to ``times``
        calls to :meth:`observe`.  The executor uses this for runs of
        root changes emitted at one instant, where every sample in the
        run is the same number."""
        if times <= 0:
            return
        if value < 0:
            value = 0
        self.buckets[_bucket_index(value)] += times
        self.count += times
        self.sum += value * times
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram (in place); returns self."""
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        return self

    @classmethod
    def merged(cls, histograms: Iterable["Histogram"]) -> "Histogram":
        out = cls()
        for histogram in histograms:
            out.merge(histogram)
        return out

    def percentile(self, q: float) -> Optional[int]:
        """The value at quantile ``q`` (0 < q <= 1), bucket-resolved.

        Returns the upper bound of the bucket holding the q-th sample,
        clamped to the exact observed min/max so single-bucket
        histograms report exact values.
        """
        if self.count == 0:
            return None
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        rank = max(1, int(q * self.count + 0.999999))
        seen = 0
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= rank:
                bound = (
                    BUCKET_BOUNDS[i] if i < len(BUCKET_BOUNDS) else self.max
                )
                assert self.min is not None and self.max is not None
                return max(self.min, min(self.max, bound))
        return self.max  # pragma: no cover — seen always reaches count

    @property
    def mean(self) -> Optional[float]:
        return (self.sum / self.count) if self.count else None

    def summary(self) -> dict:
        """count/sum/min/max plus the headline percentiles, JSON-ready."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    # -- checkpointing ---------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    def restore(self, snapshot: dict) -> None:
        buckets = snapshot["buckets"]
        if len(buckets) != len(self.buckets):
            raise ValueError(
                f"histogram snapshot has {len(buckets)} buckets, "
                f"this layout has {len(self.buckets)}"
            )
        self.buckets = list(buckets)
        self.count = snapshot["count"]
        self.sum = snapshot["sum"]
        self.min = snapshot["min"]
        self.max = snapshot["max"]

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "Histogram":
        out = cls()
        out.restore(snapshot)
        return out

    # -- exposition -------------------------------------------------------------

    def cumulative_buckets(self) -> list[tuple[str, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, ending "+Inf"."""
        out: list[tuple[str, int]] = []
        running = 0
        for bound, n in zip(BUCKET_BOUNDS, self.buckets):
            running += n
            out.append((str(bound), running))
        out.append(("+Inf", self.count))
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return self.snapshot() == other.snapshot()

    def __repr__(self) -> str:
        if not self.count:
            return "Histogram(empty)"
        return (
            f"Histogram(n={self.count}, min={self.min}, "
            f"p50={self.percentile(0.5)}, p99={self.percentile(0.99)}, "
            f"max={self.max})"
        )


def _bucket_index(value: int) -> int:
    """Index of the smallest bucket whose bound covers ``value``."""
    if value <= 1:
        return 0
    index = (value - 1).bit_length()
    return min(index, len(BUCKET_BOUNDS))
