"""Pluggable telemetry exporters: JSON-lines event logs and Prometheus.

An exporter is anything with the :class:`TelemetryExporter` interface:
``on_event`` receives every :class:`~repro.obs.trace.TraceEvent` of a
run as it happens, ``export`` receives the finished
:class:`~repro.exec.executor.RunResult`, and ``close`` releases any
file handles.  :class:`~repro.engine.StreamEngine` accepts an exporter
instance — or a ``"jsonl:PATH"`` / ``"prometheus:PATH"`` spec string
resolved by :func:`make_exporter` — via its ``telemetry=`` argument and
wires it into every query execution, serial or sharded.

Two exporters ship in the box:

* :class:`JsonLinesExporter` — one JSON object per trace event, written
  as it arrives.  The log round-trips: :func:`read_events` parses it
  back into :class:`TraceEvent` objects.
* :class:`PrometheusExporter` — renders the run's
  :class:`~repro.obs.metrics.MetricsReport` (counters, gauges, and the
  latency histograms) in Prometheus text exposition format under the
  stable metric names documented in docs/OBSERVABILITY.md.

:func:`parse_exposition` is a dependency-free parser/validator for the
exposition format, used by the golden tests and the CI smoke check.
"""

from __future__ import annotations

import json
import threading
from typing import IO, Optional, Union

from ..core.times import MAX_TIMESTAMP, MIN_TIMESTAMP
from .metrics import MetricsReport
from .trace import TraceEvent

__all__ = [
    "TelemetryExporter",
    "JsonLinesExporter",
    "PrometheusExporter",
    "make_exporter",
    "read_events",
    "render_exposition",
    "format_labels",
    "parse_exposition",
]


class TelemetryExporter:
    """The exporter interface; subclasses override what they need."""

    def on_event(self, event: TraceEvent) -> None:
        """Receive one trace event, in arrival order (maybe concurrently)."""

    def export(self, result) -> None:
        """Receive the finished run (a ``RunResult`` with ``metrics``)."""

    def close(self) -> None:
        """Release resources; further events are an error."""


# ---------------------------------------------------------------------------
# JSON lines
# ---------------------------------------------------------------------------


def _event_to_dict(event: TraceEvent) -> dict:
    return {
        "kind": event.kind,
        "ptime": event.ptime,
        "count": event.count,
        "value": event.value,
        "operator": event.operator,
        "shard": event.shard,
    }


def _event_from_dict(payload: dict) -> TraceEvent:
    return TraceEvent(
        kind=payload["kind"],
        ptime=payload["ptime"],
        count=payload.get("count", 0),
        value=payload.get("value"),
        operator=payload.get("operator", ""),
        shard=payload.get("shard"),
    )


class JsonLinesExporter(TelemetryExporter):
    """Append each trace event to ``target`` as one JSON object per line.

    ``target`` is a path (opened for writing) or an open text handle
    (left open on :meth:`close`).  Events may arrive from shard worker
    threads; writes are serialized under a lock so lines never
    interleave.
    """

    def __init__(self, target: Union[str, IO[str]]):
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "w")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self._lock = threading.Lock()
        self.events_written = 0

    def on_event(self, event: TraceEvent) -> None:
        line = json.dumps(_event_to_dict(event), separators=(",", ":"))
        with self._lock:
            self._handle.write(line + "\n")
            self.events_written += 1

    def export(self, result) -> None:
        with self._lock:
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            self._handle.flush()
            if self._owns_handle:
                self._handle.close()


def read_events(source: Union[str, IO[str]]) -> list[TraceEvent]:
    """Parse a JSON-lines event log back into trace events."""
    if isinstance(source, str):
        with open(source) as handle:
            lines = handle.readlines()
    else:
        lines = source.readlines()
    return [
        _event_from_dict(json.loads(line))
        for line in lines
        if line.strip()
    ]


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

# The stable metric-name catalogue.  Families are (name, type, help);
# renaming any of these is a breaking change for downstream scrapers.
_OPERATOR_COUNTERS = (
    ("repro_operator_rows_out_total", "rows_out", "Changes emitted by the operator"),
    ("repro_operator_retracts_out_total", "retracts_out", "Retractions emitted by the operator"),
    ("repro_operator_late_dropped_total", "late_dropped", "Rows dropped behind the watermark"),
    ("repro_operator_expired_rows_total", "expired_rows", "State rows reclaimed by watermark cleanup"),
    ("repro_operator_wm_advances_total", "wm_advances", "Output watermark advances"),
    ("repro_operator_changes_coalesced_total", "changes_coalesced",
     "Changes dropped by intra-instant compaction"),
)
_OPERATOR_GAUGES = (
    ("repro_operator_state_rows", "state_rows", "Rows currently retained in operator state"),
    ("repro_operator_peak_state_rows", "peak_state_rows", "High-water mark of retained rows"),
    ("repro_operator_watermark_lag_ms", "watermark_lag", "Output watermark trailing the inputs, ms"),
)
_HISTOGRAMS = (
    ("repro_emit_latency_ms", "emit_latency", "Root emit latency vs event-time completion, ms"),
    ("repro_root_watermark_lag_ms", "watermark_lag", "Root emission ptime minus root watermark, ms"),
)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def format_labels(pairs: dict) -> str:
    """Render a Prometheus label set, escaping values (shared helper)."""
    inner = ",".join(
        f'{key}="{_escape_label(str(value))}"' for key, value in pairs.items()
    )
    return "{" + inner + "}"


_labels = format_labels


def render_exposition(report: MetricsReport) -> str:
    """A MetricsReport as Prometheus text exposition (format 0.0.4).

    Operators are labelled by their pre-order ``index`` (which makes
    every label set unique even when a plan contains two operators of
    the same name), plus the human-readable ``operator`` and ``type``.
    """
    lines: list[str] = []

    def family(name: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    family("repro_operator_rows_in_total", "counter",
           "Changes received by the operator, per input port")
    for index, entry in enumerate(report.operators):
        base = {
            "index": index,
            "operator": entry["operator"],
            "type": entry["type"],
        }
        for port, rows in enumerate(entry["rows_in"]):
            lines.append(
                "repro_operator_rows_in_total"
                + _labels({**base, "port": port})
                + f" {rows}"
            )
    for name, key, help_text in _OPERATOR_COUNTERS:
        family(name, "counter", help_text)
        for index, entry in enumerate(report.operators):
            labels = _labels({
                "index": index,
                "operator": entry["operator"],
                "type": entry["type"],
            })
            lines.append(f"{name}{labels} {entry.get(key, 0)}")
    for name, key, help_text in _OPERATOR_GAUGES:
        family(name, "gauge", help_text)
        for index, entry in enumerate(report.operators):
            labels = _labels({
                "index": index,
                "operator": entry["operator"],
                "type": entry["type"],
            })
            lines.append(f"{name}{labels} {entry.get(key, 0)}")

    family("repro_shard_routed_rows", "gauge",
           "Rows routed to each shard's scan leaves")
    for shard, rows in enumerate(report.shard_rows or []):
        lines.append(
            "repro_shard_routed_rows" + _labels({"shard": shard}) + f" {rows}"
        )

    recovery = report.recovery
    if recovery is not None:
        for name, value, help_text in (
            ("repro_recovery_shard_restarts_total", recovery.shard_restarts,
             "Supervised shard workers restarted from a checkpoint"),
            ("repro_recovery_rows_replayed_total", recovery.rows_replayed,
             "Input rows re-processed while catching restarted shards up"),
            ("repro_recovery_dedup_drops_total", recovery.dedup_drops,
             "Re-emitted output changes dropped by sequence-number dedup"),
            ("repro_recovery_wm_regressions_total", recovery.wm_regressions,
             "Restored shard watermarks clamped to already-observed values"),
        ):
            family(name, "counter", help_text)
            lines.append(f"{name} {value}")

    telemetry = report.telemetry
    if telemetry is not None:
        for name, attr, help_text in _HISTOGRAMS:
            histogram = getattr(telemetry, attr)
            family(name, "histogram", help_text)
            for le, cumulative in histogram.cumulative_buckets():
                lines.append(
                    f"{name}_bucket" + _labels({"le": le}) + f" {cumulative}"
                )
            lines.append(f"{name}_sum {histogram.sum}")
            lines.append(f"{name}_count {histogram.count}")
        family("repro_early_emits_total", "counter",
               "Root changes emitted before their completion time")
        lines.append(f"repro_early_emits_total {telemetry.early_emits}")
    return "\n".join(lines) + "\n"


class PrometheusExporter(TelemetryExporter):
    """Render the finished run's metrics as Prometheus text exposition.

    Trace events are ignored (Prometheus scrapes state, not events).
    ``export`` stores the rendered text in :attr:`last_text` and, when
    a ``path`` was given, rewrites the file — the usual node-exporter
    "textfile collector" handoff.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.last_text: Optional[str] = None

    def export(self, result) -> None:
        report = result.metrics if hasattr(result, "metrics") else result
        if report is None:
            return
        self.last_text = render_exposition(report)
        if self.path is not None:
            with open(self.path, "w") as handle:
                handle.write(self.last_text)


def make_exporter(spec) -> Optional[TelemetryExporter]:
    """Resolve the engine's ``telemetry=`` argument into an exporter.

    Accepts ``None`` (telemetry recording stays on; nothing is
    exported), an exporter instance, or a spec string:
    ``"jsonl:PATH"`` or ``"prometheus:PATH"`` (``"prom:PATH"`` for
    short).
    """
    if spec is None:
        return None
    if isinstance(spec, TelemetryExporter):
        return spec
    if callable(getattr(spec, "on_event", None)) and callable(
        getattr(spec, "export", None)
    ):
        return spec  # duck-typed exporter
    if not isinstance(spec, str):
        raise ValueError(
            f"telemetry must be an exporter or a spec string, got {spec!r}"
        )
    scheme, _, path = spec.partition(":")
    if not path:
        raise ValueError(
            f"telemetry spec {spec!r} has no path; expected "
            "'jsonl:PATH' or 'prometheus:PATH'"
        )
    if scheme == "jsonl":
        return JsonLinesExporter(path)
    if scheme in ("prometheus", "prom"):
        return PrometheusExporter(path)
    raise ValueError(
        f"unknown telemetry scheme {scheme!r}; expected 'jsonl' or 'prometheus'"
    )


# ---------------------------------------------------------------------------
# a tiny exposition parser (for tests and the CI smoke check)
# ---------------------------------------------------------------------------


def parse_exposition(text: str) -> dict:
    """Parse and validate Prometheus text exposition, no deps needed.

    Returns ``{family: {"type": ..., "help": ..., "samples":
    [(metric_name, labels_dict, value), ...]}}``.  Raises
    ``ValueError`` on malformed lines, samples without a declared
    family, non-monotone histogram buckets, or histograms missing
    their ``_sum``/``_count`` series.
    """
    families: dict[str, dict] = {}

    def family_of(metric: str) -> Optional[str]:
        for suffix in ("_bucket", "_sum", "_count"):
            base = metric[: -len(suffix)] if metric.endswith(suffix) else None
            if base and base in families and families[base]["type"] == "histogram":
                return base
        return metric if metric in families else None

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 4 and parts[1] == "TYPE":
                raise ValueError(f"malformed comment line: {raw!r}")
            name = parts[2]
            entry = families.setdefault(
                name, {"type": None, "help": "", "samples": []}
            )
            if parts[1] == "TYPE":
                if entry["type"] is not None:
                    raise ValueError(f"duplicate TYPE for {name}")
                kind = parts[3]
                if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    raise ValueError(f"unknown metric type {kind!r} for {name}")
                entry["type"] = kind
            else:
                entry["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("#"):
            continue
        metric, labels, value = _parse_sample(raw)
        base = family_of(metric)
        if base is None:
            raise ValueError(f"sample for undeclared family: {raw!r}")
        families[base]["samples"].append((metric, labels, value))

    for name, entry in families.items():
        if entry["type"] is None:
            raise ValueError(f"family {name} has samples but no TYPE")
        if entry["type"] == "histogram":
            _validate_histogram(name, entry["samples"])
    return families


def _parse_sample(raw: str) -> tuple[str, dict, float]:
    line = raw.strip()
    labels: dict[str, str] = {}
    if "{" in line:
        metric, rest = line.split("{", 1)
        body, _, tail = rest.partition("}")
        value_text = tail.strip()
        for item in _split_labels(body):
            if not item:
                continue
            key, _, quoted = item.partition("=")
            if not (quoted.startswith('"') and quoted.endswith('"')):
                raise ValueError(f"unquoted label value in {raw!r}")
            labels[key.strip()] = (
                quoted[1:-1]
                .replace("\\n", "\n")
                .replace('\\"', '"')
                .replace("\\\\", "\\")
            )
    else:
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(f"malformed sample line: {raw!r}")
        metric, value_text = parts
    metric = metric.strip()
    if not metric or not metric.replace("_", "").replace(":", "").isalnum():
        raise ValueError(f"malformed metric name in {raw!r}")
    try:
        value = float(value_text)
    except ValueError as exc:
        raise ValueError(f"malformed sample value in {raw!r}") from exc
    return metric, labels, value


def _split_labels(body: str) -> list[str]:
    """Split a label body on commas outside quoted values."""
    items: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            items.append("".join(current).strip())
            current = []
            continue
        current.append(char)
    if current:
        items.append("".join(current).strip())
    return items


def _validate_histogram(name: str, samples: list) -> None:
    """Validate one histogram family, per label set.

    A family may carry many series distinguished by labels other than
    ``le`` (e.g. per-query histograms labelled ``tenant``/``query``);
    each such series must independently have cumulative buckets, an
    ``+Inf`` bucket, and matching ``_sum``/``_count`` samples.
    """
    def series_key(labels: dict) -> tuple:
        return tuple(sorted((k, v) for k, v in labels.items() if k != "le"))

    buckets: dict[tuple, list] = {}
    counts: dict[tuple, float] = {}
    sums: dict[tuple, float] = {}
    for metric, labels, value in samples:
        key = series_key(labels)
        if metric == f"{name}_bucket":
            buckets.setdefault(key, []).append((labels, value))
        elif metric == f"{name}_count":
            counts[key] = value
        elif metric == f"{name}_sum":
            sums[key] = value
    if not buckets:
        raise ValueError(f"histogram {name} is missing bucket/sum/count series")
    for key, series in buckets.items():
        if key not in counts or key not in sums:
            raise ValueError(
                f"histogram {name}{dict(key)} is missing bucket/sum/count series"
            )
        last = -1.0
        saw_inf = False
        for labels, value in series:
            le = labels.get("le")
            if le is None:
                raise ValueError(f"histogram {name} bucket without le label")
            if value < last:
                raise ValueError(f"histogram {name} buckets are not cumulative")
            last = value
            saw_inf = saw_inf or le == "+Inf"
        if not saw_inf:
            raise ValueError(f"histogram {name} has no +Inf bucket")
        if series[-1][1] != counts[key]:
            raise ValueError(f"histogram {name} +Inf bucket disagrees with _count")
    for key in list(counts) + list(sums):
        if key not in buckets:
            raise ValueError(
                f"histogram {name}{dict(key)} is missing bucket/sum/count series"
            )
