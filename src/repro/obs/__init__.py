"""Observability: operator metrics, latency telemetry, traces, lineage.

See :mod:`repro.obs.metrics` for the counter/report layer,
:mod:`repro.obs.histogram` / :mod:`repro.obs.telemetry` for the
latency-distribution layer, :mod:`repro.obs.trace` for the
event-callback API, :mod:`repro.obs.lineage` for sampled delta
provenance, and :mod:`repro.obs.export` for the JSONL and
Prometheus exporters; docs/OBSERVABILITY.md has the user-facing
catalogue (including the stable Prometheus metric names).
"""

from .histogram import BUCKET_BOUNDS, Histogram
from .lineage import LineageRecorder
from .metrics import (
    MetricsRegistry,
    MetricsReport,
    OperatorCounters,
    RecoveryStats,
    merge_shard_reports,
    watermark_lag,
)
from .telemetry import RunTelemetry, render_dashboard
from .trace import TraceCollector, TraceEvent

__all__ = [
    "OperatorCounters",
    "MetricsRegistry",
    "MetricsReport",
    "RecoveryStats",
    "merge_shard_reports",
    "watermark_lag",
    "Histogram",
    "BUCKET_BOUNDS",
    "RunTelemetry",
    "render_dashboard",
    "TraceCollector",
    "TraceEvent",
    "LineageRecorder",
]
