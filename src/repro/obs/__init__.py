"""Observability: uniform operator metrics, reports, and trace hooks.

See :mod:`repro.obs.metrics` for the counter/report layer and
:mod:`repro.obs.trace` for the event-callback API; docs/OBSERVABILITY.md
has the user-facing catalogue.
"""

from .metrics import (
    MetricsRegistry,
    MetricsReport,
    OperatorCounters,
    merge_shard_reports,
    watermark_lag,
)
from .trace import TraceCollector, TraceEvent

__all__ = [
    "OperatorCounters",
    "MetricsRegistry",
    "MetricsReport",
    "merge_shard_reports",
    "watermark_lag",
    "TraceCollector",
    "TraceEvent",
]
