"""Uniform per-operator metrics.

Section 5 of the paper asks engines to "give the user feedback about
the state being consumed, relating the physical computation back to
their query"; the operational follow-ups (*Lessons Learned from Efforts
to Standardize Streaming In SQL*, arXiv:2311.03476) sharpen that into a
rule: a streaming engine you cannot observe is an engine you cannot
tune.  This module is the engine's observability spine:

* :class:`OperatorCounters` — the mutable counter block every physical
  operator carries.  Counting happens in the ``process_*`` wrappers of
  :class:`~repro.exec.operators.base.Operator`, so no operator can opt
  out and no executor-side ``isinstance`` allowlist can lose a counter
  (the bug that motivated this layer: OVER and MATCH_RECOGNIZE late
  drops silently vanished from ``RunResult.late_dropped``).
* :class:`MetricsRegistry` — the executor-side view over one dataflow's
  operators; snapshotted per ``process()`` step to keep per-operator
  state peaks current.
* :class:`MetricsReport` — the assembled, renderable report attached to
  every :class:`~repro.exec.executor.RunResult`; sharded runs merge the
  per-shard reports into per-operator totals plus a per-shard breakdown
  that surfaces routing skew.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from ..core.changelog import ChangeKind
from ..core.times import MAX_TIMESTAMP, MIN_TIMESTAMP
from .telemetry import RunTelemetry

if TYPE_CHECKING:  # pragma: no cover
    from ..core.changelog import Change
    from ..exec.operators.base import Operator

_RETRACT = ChangeKind.RETRACT

__all__ = [
    "OperatorCounters",
    "MetricsRegistry",
    "MetricsReport",
    "RecoveryStats",
    "merge_shard_reports",
    "watermark_lag",
]


@dataclass
class RecoveryStats:
    """What fault recovery cost one run: restarts, replay, dedup.

    Attached to the :class:`MetricsReport` of supervised sharded runs
    (zero-valued when no fault fired, ``None`` for serial runs):

    * ``shard_restarts`` — shard workers restarted by the supervisor;
    * ``rows_replayed`` — row events re-processed after restoring from
      a checkpoint (the replay tail a tighter checkpoint interval
      shrinks);
    * ``dedup_drops`` — re-emitted output changes dropped by the
      sequence-number dedup before the merge stage;
    * ``wm_regressions`` — restarted-shard watermark values the
      frontier clamped instead of letting the merged minimum regress.
    """

    shard_restarts: int = 0
    rows_replayed: int = 0
    dedup_drops: int = 0
    wm_regressions: int = 0

    @property
    def any(self) -> bool:
        return bool(
            self.shard_restarts
            or self.rows_replayed
            or self.dedup_drops
            or self.wm_regressions
        )

    def merge(self, other: "RecoveryStats") -> "RecoveryStats":
        self.shard_restarts += other.shard_restarts
        self.rows_replayed += other.rows_replayed
        self.dedup_drops += other.dedup_drops
        self.wm_regressions += other.wm_regressions
        return self

    def as_dict(self) -> dict:
        return {
            "shard_restarts": self.shard_restarts,
            "rows_replayed": self.rows_replayed,
            "dedup_drops": self.dedup_drops,
            "wm_regressions": self.wm_regressions,
        }

    def render(self) -> str:
        return (
            f"recovery: shard_restarts={self.shard_restarts} "
            f"rows_replayed={self.rows_replayed} "
            f"dedup_drops={self.dedup_drops} "
            f"wm_regressions={self.wm_regressions}"
        )


class OperatorCounters:
    """Rows-in/out bookkeeping for one operator.

    ``rows_in``/``retracts_in`` are per input port (inserts are
    ``rows_in - retracts_in``); outputs are single totals because an
    operator has one output.  ``peak_state_rows`` is refreshed by the
    executor's per-step registry sweep rather than per change, keeping
    the data path free of repeated ``state_size()`` scans.
    """

    __slots__ = ("rows_in", "retracts_in", "rows_out", "retracts_out",
                 "peak_state_rows", "wm_advances", "changes_coalesced")

    def __init__(self, arity: int):
        self.rows_in = [0] * arity
        self.retracts_in = [0] * arity
        self.rows_out = 0
        self.retracts_out = 0
        self.peak_state_rows = 0
        self.wm_advances = 0
        self.changes_coalesced = 0

    # -- recording (hot path) ------------------------------------------------

    def record_in(self, port: int, change: "Change") -> None:
        self.rows_in[port] += 1
        if change.is_retract:
            self.retracts_in[port] += 1

    def record_in_batch(self, port: int, changes: Sequence["Change"]) -> None:
        self.rows_in[port] += len(changes)
        retracts = sum(1 for c in changes if c.kind is _RETRACT)
        if retracts:
            self.retracts_in[port] += retracts

    def record_out(self, changes: Sequence["Change"]) -> None:
        if not changes:
            return
        self.rows_out += len(changes)
        retracts = sum(1 for c in changes if c.kind is _RETRACT)
        if retracts:
            self.retracts_out += retracts

    def record_in_cols(self, port: int, batch) -> None:
        """Columnar twin of :meth:`record_in_batch`; counts from the
        kinds vector so the totals match the row path exactly."""
        self.rows_in[port] += len(batch)
        retracts = batch.retract_count()
        if retracts:
            self.retracts_in[port] += retracts

    def record_out_cols(self, batch) -> None:
        if not len(batch):
            return
        self.rows_out += len(batch)
        retracts = batch.retract_count()
        if retracts:
            self.retracts_out += retracts

    def note_state(self, size: int) -> None:
        if size > self.peak_state_rows:
            self.peak_state_rows = size

    def record_wm_advance(self) -> None:
        self.wm_advances += 1

    def record_coalesced(self, dropped: int) -> None:
        """Account for intra-instant compaction of this operator's output.

        ``dropped`` changes (always insert/retract pairs, so half are
        retracts) were produced but cancelled before propagating, and
        the out-counters are walked back so ``rows_out`` keeps meaning
        "changes this operator sent downstream".
        """
        self.changes_coalesced += dropped
        self.rows_out -= dropped
        self.retracts_out -= dropped // 2

    # -- checkpointing -------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "rows_in": list(self.rows_in),
            "retracts_in": list(self.retracts_in),
            "rows_out": self.rows_out,
            "retracts_out": self.retracts_out,
            "peak_state_rows": self.peak_state_rows,
            "wm_advances": self.wm_advances,
            "changes_coalesced": self.changes_coalesced,
        }

    def restore(self, snapshot: dict) -> None:
        self.rows_in = list(snapshot["rows_in"])
        self.retracts_in = list(snapshot["retracts_in"])
        self.rows_out = snapshot["rows_out"]
        self.retracts_out = snapshot["retracts_out"]
        self.peak_state_rows = snapshot["peak_state_rows"]
        # Absent in pre-telemetry checkpoints; start the count fresh.
        self.wm_advances = snapshot.get("wm_advances", 0)
        # Absent in pre-batching checkpoints; start the count fresh.
        self.changes_coalesced = snapshot.get("changes_coalesced", 0)


def watermark_lag(input_wm: int, output_wm: int) -> int:
    """How far an operator's output watermark trails its inputs.

    Only meaningful between the sentinels: an input that never advanced
    (or is already complete) has no lag to report.
    """
    if input_wm <= MIN_TIMESTAMP or input_wm >= MAX_TIMESTAMP:
        return 0
    if output_wm <= MIN_TIMESTAMP:
        return 0
    return max(0, input_wm - output_wm)


class MetricsRegistry:
    """The executor's handle on its operators' counters.

    The executor calls :meth:`observe_state` once per ``process()``
    step: one sweep refreshes every operator's state peak *and* yields
    the dataflow-wide total the executor tracks for
    ``RunResult.peak_state_rows`` — the same O(operators) cost the old
    per-step ``total_state_rows()`` scan already paid.
    """

    def __init__(self, operators: Iterable["Operator"]):
        self._operators = list(operators)

    @property
    def operators(self) -> list["Operator"]:
        return list(self._operators)

    def observe_state(self) -> int:
        """Refresh per-operator state peaks; returns the current total."""
        total = 0
        for op in self._operators:
            size = op.state_size()
            op.counters.note_state(size)
            total += size
        return total

    def snapshot(self) -> list[dict]:
        """Every operator's ``metrics()`` dict, in compile (post-) order."""
        return [op.metrics() for op in self._operators]


# Keys that are identity, not quantity: kept from the first shard when
# merging instead of summed.
_IDENTITY_KEYS = frozenset({"operator", "type", "depth", "leaf", "shared_by"})
# Keys merged by maximum: a gauge over time, not a flow total.
_MAX_KEYS = frozenset({"watermark_lag", "peak_state_rows"})


@dataclass
class MetricsReport:
    """A rendered-or-renderable snapshot of one run's operator metrics.

    ``operators`` holds one dict per physical operator in *pre-order*
    (root first, children indented by ``depth``), so :meth:`render`
    reads like the ``EXPLAIN`` plan annotated with counters.  For
    sharded runs ``shard_count > 1``, each entry carries a ``"shards"``
    per-shard ``rows_in`` breakdown and ``shard_rows`` records rows
    routed per shard (the skew signal).  ``telemetry`` is the run's
    latency telemetry (emit-latency and watermark-lag histograms),
    merged over shards for sharded runs.
    """

    operators: list[dict]
    shard_count: int = 1
    shard_rows: list[int] = field(default_factory=list)
    telemetry: Optional[RunTelemetry] = None
    #: recovery accounting for supervised sharded runs (``None`` serial).
    recovery: Optional[RecoveryStats] = None

    # -- lookups ---------------------------------------------------------------

    def find(self, name_fragment: str) -> dict:
        """The first operator entry whose name contains ``name_fragment``."""
        for entry in self.operators:
            if name_fragment in entry["operator"] or name_fragment in entry["type"]:
                return entry
        raise KeyError(f"no operator metrics match {name_fragment!r}")

    # -- aggregates -------------------------------------------------------------

    @property
    def totals(self) -> dict:
        """Flow totals summed over every operator."""
        keys = ("rows_out", "retracts_out", "late_dropped", "expired_rows",
                "state_rows", "peak_state_rows", "changes_coalesced")
        out = {key: sum(entry[key] for entry in self.operators) for key in keys}
        out["rows_in"] = sum(
            sum(entry["rows_in"]) for entry in self.operators
        )
        out["retracts_in"] = sum(
            sum(entry["retracts_in"]) for entry in self.operators
        )
        return out

    @property
    def skew(self) -> Optional[dict]:
        """Max/min rows routed per shard, or ``None`` for serial runs."""
        if self.shard_count <= 1 or not self.shard_rows:
            return None
        most, least = max(self.shard_rows), min(self.shard_rows)
        return {
            "max": most,
            "min": least,
            "ratio": (most / least) if least else float("inf"),
        }

    # -- rendering ---------------------------------------------------------------

    def render(self) -> str:
        """The EXPLAIN ANALYZE text: the operator tree with counters."""
        header = (
            "operator metrics"
            if self.shard_count <= 1
            else f"operator metrics (summed over {self.shard_count} shards)"
        )
        lines = [header]
        for entry in self.operators:
            lines.append("  " * (entry["depth"] + 1) + _describe(entry))
        totals = self.totals
        lines.append(
            "totals: rows_in={rows_in} rows_out={rows_out} "
            "late_dropped={late_dropped} expired_rows={expired_rows} "
            "peak_state={peak_state_rows}".format(**totals)
        )
        skew = self.skew
        if skew is not None:
            lines.append(
                f"shard skew: rows routed per shard {self.shard_rows} "
                f"(max={skew['max']}, min={skew['min']})"
            )
        if self.recovery is not None and self.recovery.any:
            lines.append(self.recovery.render())
        if self.telemetry is not None and not self.telemetry.empty:
            lines.append(self.telemetry.render())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _describe(entry: dict) -> str:
    ins = sum(entry["rows_in"])
    parts = [
        entry["operator"],
        f"rows: in={ins} out={entry['rows_out']}",
    ]
    retracts = sum(entry["retracts_in"]) + entry["retracts_out"]
    if retracts:
        parts.append(
            f"retracts: in={sum(entry['retracts_in'])} "
            f"out={entry['retracts_out']}"
        )
    if entry["late_dropped"]:
        parts.append(f"late_dropped={entry['late_dropped']}")
    if entry["expired_rows"]:
        parts.append(f"expired_rows={entry['expired_rows']}")
    if entry["state_rows"] or entry["peak_state_rows"]:
        parts.append(
            f"state={entry['state_rows']} peak={entry['peak_state_rows']}"
        )
    if entry["watermark_lag"]:
        parts.append(f"wm_lag={entry['watermark_lag']}ms")
    if entry.get("wm_advances"):
        parts.append(f"wm_advances={entry['wm_advances']}")
    if entry.get("changes_coalesced"):
        parts.append(f"coalesced={entry['changes_coalesced']}")
    if entry.get("shared_by", 1) >= 2:
        parts.append(f"[shared ×{entry['shared_by']}]")
    for key, value in entry.items():
        if key in _IDENTITY_KEYS or key in _MAX_KEYS or key in (
            "rows_in", "retracts_in", "rows_out", "retracts_out",
            "late_dropped", "expired_rows", "state_rows", "shards",
            "wm_advances", "changes_coalesced",
        ):
            continue
        parts.append(f"{key}={value}")
    return "  ".join(parts)


def _merge_values(key: str, values: list):
    if key in _MAX_KEYS:
        return max(values)
    first = values[0]
    if isinstance(first, list):
        return [sum(column) for column in zip(*values)]
    if isinstance(first, (int, float)):
        return sum(values)
    return first


def merge_shard_reports(reports: Sequence[MetricsReport]) -> MetricsReport:
    """Aggregate per-shard reports into per-operator totals + breakdowns.

    Every shard compiles the same plan, so reports align index by
    index.  Flow counters sum, gauges (peaks, watermark lag) take the
    maximum, and each merged entry keeps a ``"shards"`` list of rows-in
    totals so skew is visible per operator, not just per run.  Rows
    routed per shard are measured at the scan leaves — exactly what the
    hash router distributed.
    """
    if not reports:
        return MetricsReport(operators=[])
    telemetry = RunTelemetry.merged(
        report.telemetry for report in reports if report.telemetry is not None
    )
    if len(reports) == 1:
        only = reports[0]
        return MetricsReport(
            operators=[dict(entry) for entry in only.operators],
            shard_count=1,
            shard_rows=[_routed_rows(only)],
            telemetry=telemetry,
        )
    merged: list[dict] = []
    for entries in zip(*(report.operators for report in reports)):
        entry: dict = {}
        for key in entries[0]:
            if key in _IDENTITY_KEYS:
                entry[key] = entries[0][key]
            else:
                entry[key] = _merge_values(key, [e[key] for e in entries])
        entry["shards"] = [sum(e["rows_in"]) for e in entries]
        merged.append(entry)
    return MetricsReport(
        operators=merged,
        shard_count=len(reports),
        shard_rows=[_routed_rows(report) for report in reports],
        telemetry=telemetry,
    )


def _routed_rows(report: MetricsReport) -> int:
    """Rows delivered to one shard's scan leaves (its routed share)."""
    return sum(
        sum(entry["rows_in"])
        for entry in report.operators
        if entry.get("leaf")
    )
