"""Run-level latency telemetry: when did results arrive, and how late.

The counters in :mod:`repro.obs.metrics` answer *how much* flowed; this
module answers *when*.  Two distributions are recorded at the dataflow
root, where a change's processing time is final:

* **emit latency** — the change's ``ptime`` minus the row's event-time
  completion timestamp (the window end for windowed queries).  Under
  the paper's materialization extensions this is exactly the
  latency-for-completeness knob: ``EMIT STREAM`` emits speculatively
  (early, counted in ``early_emits``), ``EMIT AFTER WATERMARK`` waits
  out the watermark and pays the latency measured here.
* **watermark lag** — the change's ``ptime`` minus the root output
  watermark at the instant of emission: how far completeness trails
  the data.

Both are :class:`~repro.obs.histogram.Histogram`\\ s, so per-shard
telemetry merges into exactly the serial distribution (watermarks are
broadcast and each root change is produced by exactly one shard).

:func:`render_dashboard` is the one-screen live view behind the
shell's ``\\watch`` command.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..core.times import MAX_TIMESTAMP, MIN_TIMESTAMP, Timestamp, fmt_duration, fmt_time
from .histogram import Histogram

__all__ = ["RunTelemetry", "render_dashboard"]


class RunTelemetry:
    """The latency histograms of one dataflow run (or shard thereof)."""

    __slots__ = ("emit_latency", "watermark_lag", "early_emits")

    def __init__(self) -> None:
        self.emit_latency = Histogram()
        self.watermark_lag = Histogram()
        self.early_emits = 0

    # -- recording (called by the executor at the dataflow root) --------------

    def record_emit(
        self,
        ptime: Timestamp,
        completion_time: Optional[Timestamp],
        root_watermark: Timestamp,
    ) -> None:
        """Record one root change emitted at ``ptime``.

        ``completion_time`` is the row's event-time completion bound
        (max over the plan's completion columns) or ``None`` when the
        plan has none; ``root_watermark`` is the root output watermark
        at the moment of emission.
        """
        if completion_time is not None and _is_finite(completion_time):
            latency = ptime - completion_time
            if latency < 0:
                self.early_emits += 1
            self.emit_latency.observe(latency)
        if _is_finite(root_watermark):
            self.watermark_lag.observe(ptime - root_watermark)

    def record_emit_run(
        self,
        changes: Sequence,
        completion: Optional[Sequence[int]],
        root_watermark: Timestamp,
    ) -> None:
        """Record a run of root changes emitted at one watermark state.

        Produces exactly the histograms that calling :meth:`record_emit`
        once per change would (histograms are order-insensitive), with
        the per-sample bookkeeping batched.  ``completion`` is the
        plan's completion column indices, applied to each change's row.
        """
        if completion is not None:
            latencies = []
            early = 0
            if len(completion) == 1:
                (ci,) = completion
                lo, hi = MIN_TIMESTAMP, MAX_TIMESTAMP
                lat_append = latencies.append
                for change in changes:
                    bound = change.values[ci]
                    if isinstance(bound, int) and lo < bound < hi:
                        latency = change.ptime - bound
                        if latency < 0:
                            early += 1
                        lat_append(latency)
            else:
                for change in changes:
                    values = change.values
                    bound = None
                    for i in completion:
                        v = values[i]
                        if isinstance(v, int) and (bound is None or v > bound):
                            bound = v
                    if bound is not None and _is_finite(bound):
                        latency = change.ptime - bound
                        if latency < 0:
                            early += 1
                        latencies.append(latency)
            if latencies:
                self.emit_latency.observe_many(latencies)
                self.early_emits += early
        if changes and _is_finite(root_watermark):
            first = changes[0].ptime
            if changes[-1].ptime == first:
                # a scheduler run holds one instant, so every lag sample
                # in it is the same number — one bulk increment
                self.watermark_lag.observe_run(
                    first - root_watermark, len(changes)
                )
            else:
                self.watermark_lag.observe_many(
                    [c.ptime - root_watermark for c in changes]
                )

    # -- merging ---------------------------------------------------------------

    def merge(self, other: "RunTelemetry") -> "RunTelemetry":
        self.emit_latency.merge(other.emit_latency)
        self.watermark_lag.merge(other.watermark_lag)
        self.early_emits += other.early_emits
        return self

    @classmethod
    def merged(cls, parts: Iterable["RunTelemetry"]) -> "RunTelemetry":
        out = cls()
        for part in parts:
            out.merge(part)
        return out

    @property
    def empty(self) -> bool:
        return not (self.emit_latency.count or self.watermark_lag.count)

    def summary(self) -> dict:
        """JSON-ready summary: both histograms plus the early-emit count."""
        return {
            "emit_latency": self.emit_latency.summary(),
            "watermark_lag": self.watermark_lag.summary(),
            "early_emits": self.early_emits,
        }

    def render(self) -> str:
        """The EXPLAIN ANALYZE latency section (empty string if no samples)."""
        lines = []
        if self.emit_latency.count:
            line = f"emit latency: {_hist_line(self.emit_latency)}"
            if self.early_emits:
                line += f"  early={self.early_emits}"
            lines.append(line)
        if self.watermark_lag.count:
            lines.append(f"watermark lag: {_hist_line(self.watermark_lag)}")
        return "\n".join(lines)

    # -- checkpointing -----------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "emit_latency": self.emit_latency.snapshot(),
            "watermark_lag": self.watermark_lag.snapshot(),
            "early_emits": self.early_emits,
        }

    def restore(self, snapshot: dict) -> None:
        self.emit_latency.restore(snapshot["emit_latency"])
        self.watermark_lag.restore(snapshot["watermark_lag"])
        self.early_emits = snapshot["early_emits"]

    def __repr__(self) -> str:
        return (
            f"RunTelemetry(emit={self.emit_latency!r}, "
            f"lag={self.watermark_lag!r}, early={self.early_emits})"
        )


def _is_finite(ts: Timestamp) -> bool:
    return MIN_TIMESTAMP < ts < MAX_TIMESTAMP


def _hist_line(histogram: Histogram) -> str:
    return (
        f"n={histogram.count} "
        f"p50={fmt_duration(histogram.percentile(0.50))} "
        f"p95={fmt_duration(histogram.percentile(0.95))} "
        f"p99={fmt_duration(histogram.percentile(0.99))} "
        f"max={fmt_duration(histogram.max)}"
    )


# ---------------------------------------------------------------------------
# the live dashboard (\watch)
# ---------------------------------------------------------------------------

_BAR_WIDTH = 24


def render_dashboard(
    *,
    title: str,
    events_done: int,
    events_total: int,
    rows_emitted: int,
    elapsed: float,
    watermark: Timestamp,
    telemetry: RunTelemetry,
    shard_rows: Optional[Sequence[int]] = None,
    recovery=None,
    coalesced: int = 0,
    tenants: Optional[Sequence[dict]] = None,
    final: bool = False,
) -> str:
    """One refreshing screen of a running query, as plain text.

    Used by the shell's ``\\watch`` command: every frame is a full
    render, so a terminal redraw is "clear + print" and a test is just
    a substring assertion on the returned string.  ``recovery`` — a
    :class:`~repro.obs.metrics.RecoveryStats` — adds a restart line
    when any shard worker recovered during the run.  ``coalesced`` — the
    dataflow's ``changes_coalesced()`` total — adds a compaction line
    when intra-instant coalescing dropped any changes.  ``tenants`` —
    rows of ``{"tenant", "queries", "deltas", "p99_emit_ms"}`` — adds a
    per-tenant service section when a standing-query service shares the
    engine (built from the per-query labeled histograms).
    """
    width = 62
    rule = "=" * width
    state = "done" if final else "running"
    lines = [rule, f"watch [{state}]  {_truncate(title, width - 18)}", rule]

    frac = (events_done / events_total) if events_total else 1.0
    bar = _bar(frac, _BAR_WIDTH)
    lines.append(
        f"events    [{bar}] {events_done}/{events_total} ({frac * 100:.0f}%)"
    )
    rate = (events_done / elapsed) if elapsed > 0 else 0.0
    out_rate = (rows_emitted / elapsed) if elapsed > 0 else 0.0
    lines.append(
        f"rows      {rows_emitted} emitted   "
        f"{rate:,.0f} events/sec   {out_rate:,.0f} rows/sec"
    )
    lines.append(f"watermark {fmt_time(watermark)}")
    lag = telemetry.watermark_lag
    if lag.count:
        lines.append(f"lag       {_hist_line(lag)}")
    emit = telemetry.emit_latency
    if emit.count:
        line = f"emit lat  {_hist_line(emit)}"
        if telemetry.early_emits:
            line += f"  early={telemetry.early_emits}"
        lines.append(line)
    if shard_rows:
        most = max(shard_rows) or 1
        lines.append(f"shards    {len(shard_rows)} (rows routed per shard)")
        for index, rows in enumerate(shard_rows):
            bar = "#" * max(1 if rows else 0, round(_BAR_WIDTH * rows / most))
            lines.append(f"  s{index:<3} {bar:<{_BAR_WIDTH}} {rows}")
    if tenants:
        lines.append(f"tenants   {len(tenants)} with standing queries")
        for row in tenants:
            p99 = row.get("p99_emit_ms")
            p99_text = fmt_duration(p99) if p99 is not None else "-"
            lines.append(
                f"  {_truncate(str(row['tenant']), 12):<12} "
                f"{row['queries']} queries   {row['deltas']} deltas   "
                f"p99 emit {p99_text}"
            )
    if coalesced:
        lines.append(f"coalesce  {coalesced} changes compacted away")
    if recovery is not None and recovery.any:
        lines.append(
            f"recovery  {recovery.shard_restarts} restart(s)   "
            f"{recovery.rows_replayed} rows replayed   "
            f"{recovery.dedup_drops} dedup drops"
        )
    lines.append(rule)
    return "\n".join(lines)


def _bar(fraction: float, width: int) -> str:
    filled = round(max(0.0, min(1.0, fraction)) * width)
    return "#" * filled + "." * (width - filled)


def _truncate(text: str, limit: int) -> str:
    flat = " ".join(text.split())
    if len(flat) <= limit:
        return flat
    return flat[: limit - 3] + "..."
