"""Trace hooks: a callback stream of dataflow progress events.

Metrics answer "how much"; traces answer "when".  A trace callback
attached to a :class:`~repro.exec.executor.Dataflow` (or a
:class:`~repro.runtime.sharded.ShardedDataflow`) fires on the events
that define a streaming run's shape:

* ``"batch"`` — a batch of output changes reached the root (one routed
  input event's worth of output);
* ``"watermark"`` — the root output watermark advanced, i.e. the result
  became complete up to a new event-time boundary;
* ``"frontier"`` — one *shard's* root watermark advanced (sharded runs
  only).  The merged minimum advancing is reported as a ``"watermark"``
  event; the per-shard ``"frontier"`` events in between are the
  propagation timeline that makes skewed and straggler shards visible.
* ``"recovery"`` — a supervised shard worker failed and restarted from
  its last checkpoint (sharded batch runs only).  ``shard`` is the
  restarted worker, ``count`` the restart attempt number (1-based), and
  ``operator`` is ``"supervisor:<failure>"`` naming what the supervisor
  caught (``crash``, ``hang``, or an exception class name).

Every event carries provenance: ``operator`` names the operator the
event was observed at (the root operator for batch/watermark events)
and ``shard`` is the shard index, or ``None`` on a serial run.  Both
are defaulted, so pre-existing callbacks and constructors keep working.

The bench harness attaches a :class:`TraceCollector` and turns the
event stream into the ``BENCH_metrics.json`` artifact; the exporters in
:mod:`repro.obs.export` write the same stream as JSON lines; anything
else — progress bars, backpressure monitors, debuggers — can attach its
own callable instead.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Optional

from ..core.times import Timestamp

__all__ = ["TraceEvent", "TraceCollector"]


@dataclass(frozen=True)
class TraceEvent:
    """One observed dataflow event.

    ``kind`` is ``"batch"`` (``count`` output changes reached the root),
    ``"watermark"`` (the root watermark advanced to ``value``),
    ``"frontier"`` (shard ``shard``'s root watermark advanced to
    ``value``), or ``"recovery"`` (shard ``shard``'s worker restarted;
    ``count`` is the attempt number); ``ptime`` is the processing time
    of the event.
    ``operator`` and ``shard`` attribute the event to its source; both
    are defaulted so events constructed by older code stay valid.
    """

    kind: str
    ptime: Timestamp
    count: int = 0
    value: Optional[Timestamp] = None
    operator: str = ""
    shard: Optional[int] = None

    def at_shard(self, shard: int) -> "TraceEvent":
        """This event re-attributed to ``shard`` (sharded-run tagging)."""
        return replace(self, shard=shard)


class TraceCollector:
    """A trace callback that accumulates events and summary counts.

    Retention is bounded: at most ``max_events`` events are kept in a
    ring buffer (a standing-query service runs indefinitely, so an
    unbounded list would grow without limit).  When the ring wraps, the
    oldest events are discarded and counted in :attr:`dropped` — but the
    summary counts stay *exact*, because they are running tallies
    incremented on arrival, not scans of the retained window.  Pass
    ``max_events=None`` for the old keep-everything behaviour.
    """

    DEFAULT_MAX_EVENTS = 65536

    def __init__(self, max_events: Optional[int] = DEFAULT_MAX_EVENTS) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be >= 1 (or None for unbounded)")
        self.max_events = max_events
        self._ring: deque[TraceEvent] = deque(maxlen=max_events)
        self.dropped = 0
        self._batches = 0
        self._changes = 0
        self._watermark_advances = 0
        self._frontier_advances = 0
        self._recoveries = 0

    def __call__(self, event: TraceEvent) -> None:
        if self._ring.maxlen is not None and len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(event)
        if event.kind == "batch":
            self._batches += 1
            self._changes += event.count
        elif event.kind == "watermark":
            self._watermark_advances += 1
        elif event.kind == "frontier":
            self._frontier_advances += 1
        elif event.kind == "recovery":
            self._recoveries += 1

    @property
    def events(self) -> list[TraceEvent]:
        """The retained events (the newest ``max_events``), oldest first."""
        return list(self._ring)

    @property
    def batches(self) -> int:
        return self._batches

    @property
    def changes(self) -> int:
        return self._changes

    @property
    def watermark_advances(self) -> int:
        return self._watermark_advances

    @property
    def frontier_advances(self) -> int:
        return self._frontier_advances

    @property
    def recoveries(self) -> int:
        return self._recoveries

    def shard_timeline(self, shard: int) -> list[TraceEvent]:
        """Retained events attributed to one shard, in arrival order."""
        return [e for e in self._ring if e.shard == shard]

    def summary(self) -> dict:
        return {
            "batches": self.batches,
            "changes": self.changes,
            "watermark_advances": self.watermark_advances,
            "frontier_advances": self.frontier_advances,
            "recoveries": self.recoveries,
            "dropped": self.dropped,
        }
