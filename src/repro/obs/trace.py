"""Trace hooks: a callback stream of dataflow progress events.

Metrics answer "how much"; traces answer "when".  A trace callback
attached to a :class:`~repro.exec.executor.Dataflow` (or a
:class:`~repro.runtime.sharded.ShardedDataflow`) fires on the events
that define a streaming run's shape:

* ``"batch"`` — a batch of output changes reached the root (one routed
  input event's worth of output);
* ``"watermark"`` — the root output watermark advanced, i.e. the result
  became complete up to a new event-time boundary;
* ``"frontier"`` — one *shard's* root watermark advanced (sharded runs
  only).  The merged minimum advancing is reported as a ``"watermark"``
  event; the per-shard ``"frontier"`` events in between are the
  propagation timeline that makes skewed and straggler shards visible.
* ``"recovery"`` — a supervised shard worker failed and restarted from
  its last checkpoint (sharded batch runs only).  ``shard`` is the
  restarted worker, ``count`` the restart attempt number (1-based), and
  ``operator`` is ``"supervisor:<failure>"`` naming what the supervisor
  caught (``crash``, ``hang``, or an exception class name).

Every event carries provenance: ``operator`` names the operator the
event was observed at (the root operator for batch/watermark events)
and ``shard`` is the shard index, or ``None`` on a serial run.  Both
are defaulted, so pre-existing callbacks and constructors keep working.

The bench harness attaches a :class:`TraceCollector` and turns the
event stream into the ``BENCH_metrics.json`` artifact; the exporters in
:mod:`repro.obs.export` write the same stream as JSON lines; anything
else — progress bars, backpressure monitors, debuggers — can attach its
own callable instead.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..core.times import Timestamp

__all__ = ["TraceEvent", "TraceCollector"]


@dataclass(frozen=True)
class TraceEvent:
    """One observed dataflow event.

    ``kind`` is ``"batch"`` (``count`` output changes reached the root),
    ``"watermark"`` (the root watermark advanced to ``value``),
    ``"frontier"`` (shard ``shard``'s root watermark advanced to
    ``value``), or ``"recovery"`` (shard ``shard``'s worker restarted;
    ``count`` is the attempt number); ``ptime`` is the processing time
    of the event.
    ``operator`` and ``shard`` attribute the event to its source; both
    are defaulted so events constructed by older code stay valid.
    """

    kind: str
    ptime: Timestamp
    count: int = 0
    value: Optional[Timestamp] = None
    operator: str = ""
    shard: Optional[int] = None

    def at_shard(self, shard: int) -> "TraceEvent":
        """This event re-attributed to ``shard`` (sharded-run tagging)."""
        return replace(self, shard=shard)


class TraceCollector:
    """A trace callback that accumulates events and summary counts."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def __call__(self, event: TraceEvent) -> None:
        self.events.append(event)

    @property
    def batches(self) -> int:
        return sum(1 for e in self.events if e.kind == "batch")

    @property
    def changes(self) -> int:
        return sum(e.count for e in self.events if e.kind == "batch")

    @property
    def watermark_advances(self) -> int:
        return sum(1 for e in self.events if e.kind == "watermark")

    @property
    def frontier_advances(self) -> int:
        return sum(1 for e in self.events if e.kind == "frontier")

    @property
    def recoveries(self) -> int:
        return sum(1 for e in self.events if e.kind == "recovery")

    def shard_timeline(self, shard: int) -> list[TraceEvent]:
        """Events attributed to one shard, in arrival order."""
        return [e for e in self.events if e.shard == shard]

    def summary(self) -> dict:
        return {
            "batches": self.batches,
            "changes": self.changes,
            "watermark_advances": self.watermark_advances,
            "frontier_advances": self.frontier_advances,
            "recoveries": self.recoveries,
        }
