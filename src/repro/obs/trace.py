"""Trace hooks: a callback stream of dataflow progress events.

Metrics answer "how much"; traces answer "when".  A trace callback
attached to a :class:`~repro.exec.executor.Dataflow` fires on the two
events that define a streaming run's shape:

* ``"batch"`` — a batch of output changes reached the root (one routed
  input event's worth of output);
* ``"watermark"`` — the root output watermark advanced, i.e. the result
  became complete up to a new event-time boundary.

The bench harness attaches a :class:`TraceCollector` and turns the
event stream into the ``BENCH_metrics.json`` artifact; anything else —
progress bars, backpressure monitors, debuggers — can attach its own
callable instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.times import Timestamp

__all__ = ["TraceEvent", "TraceCollector"]


@dataclass(frozen=True)
class TraceEvent:
    """One observed dataflow event.

    ``kind`` is ``"batch"`` (``count`` output changes reached the root)
    or ``"watermark"`` (the root watermark advanced to ``value``);
    ``ptime`` is the processing time of the event.
    """

    kind: str
    ptime: Timestamp
    count: int = 0
    value: Optional[Timestamp] = None


class TraceCollector:
    """A trace callback that accumulates events and summary counts."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def __call__(self, event: TraceEvent) -> None:
        self.events.append(event)

    @property
    def batches(self) -> int:
        return sum(1 for e in self.events if e.kind == "batch")

    @property
    def changes(self) -> int:
        return sum(e.count for e in self.events if e.kind == "batch")

    @property
    def watermark_advances(self) -> int:
        return sum(1 for e in self.events if e.kind == "watermark")

    def summary(self) -> dict:
        return {
            "batches": self.batches,
            "changes": self.changes,
            "watermark_advances": self.watermark_advances,
        }
