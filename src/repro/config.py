"""The one execution-configuration object: :class:`ExecutionConfig`.

The standardization retrospective the roadmap leans on (*Lessons
Learned from Efforts to Standardize Streaming In SQL*) argues that a
small, stable public configuration surface is what lets query semantics
survive engine evolution.  Before this module, execution knobs were
scattered: ``StreamEngine(parallelism=..., backend=..., telemetry=...)``,
``engine.query(sql, allowed_lateness=...)``, and a parallel set of CLI
flags.  Now every way of running a query accepts the same frozen
:class:`ExecutionConfig`::

    from repro import ExecutionConfig, StreamEngine

    config = ExecutionConfig(parallelism=4, backend="processes")
    engine = StreamEngine(config=config)
    query = engine.query(sql)
    query.run()                                        # engine config
    query.run(config=ExecutionConfig(parallelism=1))   # call-site override

**Precedence** is *call-site > engine > defaults*, merged field by
field: every field defaults to ``None`` meaning "inherit from the next
layer down", and :meth:`ExecutionConfig.resolved` fills whatever is
still unset from :data:`EXECUTION_DEFAULTS`.  (``python -m repro``
flags build the engine-layer config.)

The old keyword arguments keep working through shims that emit one
:class:`DeprecationWarning` per keyword per process; see ``docs/API.md``
for the deprecation policy.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields
from typing import Any, Optional

from .core.errors import ValidationError
from .runtime.backends import BACKENDS
from .runtime.faults import FaultPlan
from .runtime.supervisor import RetryPolicy

__all__ = ["ExecutionConfig", "EXECUTION_DEFAULTS", "RetryPolicy", "FaultPlan"]


#: The bottom layer of the precedence chain: what an unset field means.
EXECUTION_DEFAULTS: dict[str, Any] = {
    "parallelism": 1,
    "backend": "threads",
    "telemetry": None,
    "allowed_lateness": 0,
    "retry": RetryPolicy(),
    "fault_plan": None,
    "batch_size": 1,
    "coalesce_updates": False,
    "two_phase": "auto",
    "columnar": "auto",
    "queue_capacity": 1024,
    "subscriber_capacity": 256,
    "checkpoint_dir": "",
    "share_plans": True,
    "lineage_sample": 0,
    "lineage_max_traces": 4096,
    "slow_query_p99_ms": 0,
    "slow_query_depth": 0,
}


@dataclass(frozen=True)
class ExecutionConfig:
    """How a query executes: parallelism, backend, telemetry, recovery.

    Fields (``None`` = inherit from the next precedence layer):

    * ``parallelism`` — shard count for key-partitionable queries
      (default 1: serial).
    * ``backend`` — shard worker pool: ``"threads"``, ``"processes"``,
      or ``"sync"``.
    * ``telemetry`` — a :class:`~repro.obs.export.TelemetryExporter`
      instance or a ``"jsonl:PATH"`` / ``"prometheus:PATH"`` spec
      string (default: record latency telemetry, export nowhere).
    * ``allowed_lateness`` — milliseconds of per-group state retention
      past the watermark, so late rows update results instead of being
      dropped.
    * ``retry`` — the :class:`~repro.runtime.supervisor.RetryPolicy`
      governing supervised shard restarts (budget, backoff, checkpoint
      interval).
    * ``fault_plan`` — a :class:`~repro.runtime.faults.FaultPlan` (or
      its spec string, e.g. ``"crash-after-checkpoint"``) injected into
      sharded batch runs; testing/CI only.
    * ``batch_size`` — maximum row events delivered through the operator
      tree per micro-batch (default 1: per-change execution).  Batches
      never span processing-time instants or watermark events, so the
      output changelog is byte-identical to per-change execution at any
      value; larger values only trade latency granularity for throughput.
    * ``coalesce_updates`` — opt-in intra-instant compaction: drop
      insert/retract pairs that cancel within one processing-time
      instant.  Per-instant snapshots are preserved, but the changelog
      row count shrinks, so ``EMIT STREAM`` renderings see fewer rows
      (see docs/API.md).
    * ``columnar`` — columnar micro-batch execution: ``"auto"`` (the
      default) runs micro-batches columnar whenever ``batch_size > 1``,
      ``"on"`` forces it, ``"off"`` keeps row-at-a-time batches.
      Batches flow between operators as per-column vectors, adjacent
      filters/projections are fused into one generated loop, and
      operators without a columnar path receive rows at their boundary;
      the changelog is byte-identical in every mode (see
      docs/RUNTIME.md).
    * ``two_phase`` — physical aggregation shape for sharded runs:
      ``"auto"`` (the default) splits eligible grouped aggregates into
      shard-local partials plus a merge-stage combine, falling back to
      single-phase when counter feedback shows the fan-in is too small;
      ``"on"`` forces the split whenever eligible; ``"off"`` disables
      it.  See docs/RUNTIME.md.
    * ``queue_capacity`` — service mode: bounded depth of each live
      source's event queue; a full queue blocks the tailer
      (backpressure) instead of buffering without limit.
    * ``subscriber_capacity`` — service mode: undrained deltas a
      subscriber may buffer before it is evicted as a slow consumer.
    * ``checkpoint_dir`` — service mode: directory for session
      checkpoints (taken every ``retry.checkpoint_interval`` ingested
      events); empty string (the default) disables durability.
    * ``share_plans`` — service mode: multi-query optimization.  When
      on (the default), a newly admitted standing query whose plan
      shares canonical subplan fingerprints with a resident query is
      grafted onto the resident dataflow, computing the shared prefix
      once and multicasting its changelog; subscriber deltas are
      byte-identical either way (see docs/MQO.md).
    * ``lineage_sample`` — delta provenance tracing: ``0`` (the
      default) disables lineage, ``1`` traces every source event, and
      ``N > 1`` traces a deterministic 1-in-N sample picked by hashing
      ``(source, sequence)`` — no wall clock, no RNG, so reruns sample
      identical events.  The output changelog is byte-identical with
      tracing on, off, or sampled (see docs/OBSERVABILITY.md).
    * ``lineage_max_traces`` — bound on retained lineage traces; the
      oldest whole traces are evicted (and counted as dropped) past it.
    * ``slow_query_p99_ms`` — service mode: a standing query whose
      p99 emit latency crosses this many milliseconds is recorded in
      the structured slow-query log; ``0`` (the default) disables the
      check.
    * ``slow_query_depth`` — service mode: a standing query whose
      subscriber buffer depth crosses this many undrained deltas is
      recorded in the slow-query log; ``0`` disables the check.

    Instances are frozen and hashable; derive variants with
    :meth:`dataclasses.replace` or by merging layers via
    :meth:`merged_over`.
    """

    parallelism: Optional[int] = None
    backend: Optional[str] = None
    telemetry: Any = None
    allowed_lateness: Optional[int] = None
    retry: Optional[RetryPolicy] = None
    fault_plan: Optional[FaultPlan] = None
    batch_size: Optional[int] = None
    coalesce_updates: Optional[bool] = None
    two_phase: Optional[str] = None
    columnar: Optional[str] = None
    queue_capacity: Optional[int] = None
    subscriber_capacity: Optional[int] = None
    checkpoint_dir: Optional[str] = None
    share_plans: Optional[bool] = None
    lineage_sample: Optional[int] = None
    lineage_max_traces: Optional[int] = None
    slow_query_p99_ms: Optional[int] = None
    slow_query_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if isinstance(self.fault_plan, str):
            object.__setattr__(self, "fault_plan", FaultPlan.parse(self.fault_plan))
        self.validate()

    # -- layering ----------------------------------------------------------------

    def merged_over(self, base: "ExecutionConfig") -> "ExecutionConfig":
        """This config with unset fields inherited from ``base``.

        The precedence combinator: ``call_site.merged_over(engine_cfg)``
        keeps every field the call site pinned and fills the rest from
        the engine layer.
        """
        values = {}
        for spec in fields(self):
            mine = getattr(self, spec.name)
            values[spec.name] = (
                mine if mine is not None else getattr(base, spec.name)
            )
        return ExecutionConfig(**values)

    def resolved(self) -> "ExecutionConfig":
        """All fields concrete: unset ones filled from :data:`EXECUTION_DEFAULTS`."""
        values = {
            spec.name: (
                getattr(self, spec.name)
                if getattr(self, spec.name) is not None
                else EXECUTION_DEFAULTS[spec.name]
            )
            for spec in fields(self)
        }
        return ExecutionConfig(**values)

    # -- validation --------------------------------------------------------------

    def validate(self) -> None:
        """Reject impossible settings; unset (``None``) fields pass."""
        if self.parallelism is not None and self.parallelism < 1:
            raise ValidationError("parallelism must be at least 1")
        if self.backend is not None and self.backend not in BACKENDS:
            raise ValidationError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.allowed_lateness is not None and self.allowed_lateness < 0:
            raise ValidationError("allowed_lateness must be >= 0 milliseconds")
        if self.retry is not None and not isinstance(self.retry, RetryPolicy):
            raise ValidationError(
                f"retry must be a RetryPolicy, got {self.retry!r}"
            )
        if self.fault_plan is not None and not isinstance(
            self.fault_plan, FaultPlan
        ):
            raise ValidationError(
                f"fault_plan must be a FaultPlan or spec string, "
                f"got {self.fault_plan!r}"
            )
        if self.batch_size is not None and self.batch_size < 1:
            raise ValidationError("batch_size must be at least 1")
        if self.two_phase is not None and self.two_phase not in (
            "auto",
            "on",
            "off",
        ):
            raise ValidationError(
                f"two_phase must be 'auto', 'on', or 'off', got "
                f"{self.two_phase!r}"
            )
        if self.columnar is not None and self.columnar not in (
            "auto",
            "on",
            "off",
        ):
            raise ValidationError(
                f"columnar must be 'auto', 'on', or 'off', got "
                f"{self.columnar!r}"
            )
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValidationError("queue_capacity must be at least 1")
        if self.subscriber_capacity is not None and self.subscriber_capacity < 1:
            raise ValidationError("subscriber_capacity must be at least 1")
        if self.checkpoint_dir is not None and not isinstance(
            self.checkpoint_dir, str
        ):
            raise ValidationError(
                f"checkpoint_dir must be a path string, got {self.checkpoint_dir!r}"
            )
        if self.share_plans is not None and not isinstance(
            self.share_plans, bool
        ):
            raise ValidationError(
                f"share_plans must be a bool, got {self.share_plans!r}"
            )
        if self.lineage_sample is not None and self.lineage_sample < 0:
            raise ValidationError(
                "lineage_sample must be >= 0 (0 = off, 1 = all, N = 1-in-N)"
            )
        if self.lineage_max_traces is not None and self.lineage_max_traces < 1:
            raise ValidationError("lineage_max_traces must be at least 1")
        if self.slow_query_p99_ms is not None and self.slow_query_p99_ms < 0:
            raise ValidationError("slow_query_p99_ms must be >= 0 (0 = off)")
        if self.slow_query_depth is not None and self.slow_query_depth < 0:
            raise ValidationError("slow_query_depth must be >= 0 (0 = off)")


# ---------------------------------------------------------------------------
# deprecation shims
# ---------------------------------------------------------------------------

_WARNED: set[str] = set()


def warn_deprecated_kwarg(name: str, instead: str) -> None:
    """Emit one ``DeprecationWarning`` per deprecated keyword per process.

    The test suite runs with ``-W error::DeprecationWarning`` (outside
    the dedicated shim tests), so any internal use of a deprecated
    keyword fails CI loudly instead of lingering.
    """
    if name in _WARNED:
        return
    _WARNED.add(name)
    warnings.warn(
        f"the {name!r} keyword is deprecated; pass "
        f"ExecutionConfig({instead}) via config= instead (see docs/API.md)",
        DeprecationWarning,
        stacklevel=3,
    )


def warn_deprecated_api(name: str, instead: str) -> None:
    """Emit one ``DeprecationWarning`` per deprecated entry point.

    Same once-per-process discipline as :func:`warn_deprecated_kwarg`
    but for whole methods (e.g. ``explain_analyze``): the engine and
    query shims share one key, so migrating callers see exactly one
    warning however they reached the old name.
    """
    if name in _WARNED:
        return
    _WARNED.add(name)
    warnings.warn(
        f"{name} is deprecated; use {instead} instead (see docs/API.md)",
        DeprecationWarning,
        stacklevel=3,
    )


def warn_coalesce_emit_stream() -> None:
    """Warn once per process that compaction thins EMIT STREAM output.

    ``coalesce_updates=True`` preserves every per-instant snapshot but
    drops intra-instant insert/retract churn, so a materialization that
    explicitly renders the changelog (``EMIT STREAM``, with its
    ``undo``/``ver`` metadata columns) sees fewer rows and renumbered
    ``ver`` values than a per-change run.  A ``UserWarning`` (not a
    ``DeprecationWarning`` — the combination is supported, just
    semantics-bending) flags the first such query per process; see
    docs/API.md for the semantics note.
    """
    if "coalesce_updates+emit_stream" in _WARNED:
        return
    _WARNED.add("coalesce_updates+emit_stream")
    warnings.warn(
        "coalesce_updates=True compacts intra-instant changes, so this "
        "EMIT STREAM query renders fewer changelog rows (and different "
        "ver numbering) than per-change execution; per-instant snapshots "
        "are unchanged (see docs/API.md)",
        UserWarning,
        stacklevel=3,
    )
