"""The admission gateway: reject bad or unauthorized SQL before planning.

A standing-query service is only as robust as its front door.  Every
submitted query passes four gates, cheapest first, and a rejection at
any gate carries a machine-readable :class:`AdmissionError` with a
stable ``code`` — the structured contract clients and the smoke tests
key on:

1. **parse** — the SQL must lex and parse (``code="parse_error"``).
2. **structure** — every referenced relation must exist in the catalog
   (``unknown_table``) and be readable by the tenant's ACL
   (``acl_denied``).  These checks walk the raw AST
   (:func:`~repro.plan.planner.referenced_tables`), so no planner, no
   scopes, and no type derivation ever run for a query that names a
   table it should not see.
3. **quota** — the tenant must have headroom: standing queries below
   ``max_standing_queries`` and resident state rows below
   ``max_state_rows`` (``quota_queries`` / ``quota_state``).
4. **semantics** — names and types must validate.  This gate reuses the
   engine's own validator (invoked through the planner machinery — one
   type system, not two); a failure is translated into
   ``unknown_column`` / ``type_mismatch`` / ``invalid_query`` and the
   partial plan is discarded, so nothing semantically wrong is ever
   registered, executed, or retained.

Only a query that clears all four gates yields a
:class:`~repro.plan.planner.QueryPlan`, built exactly once.
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass, field
from typing import Optional

from ..core.errors import ReproError, SqlError, ValidationError
from ..plan.planner import Catalog, Planner, QueryPlan, referenced_tables
from ..sql.functions import FunctionRegistry, default_registry
from ..sql.parser import parse

__all__ = ["AdmissionError", "TenantPolicy", "AdmissionGateway"]


#: Stable rejection codes, in gate order.  ``auth_denied`` fires before
#: every other gate: a connection that cannot prove its tenant identity
#: never reaches parse.
REJECT_CODES = (
    "auth_denied",
    "parse_error",
    "unknown_table",
    "acl_denied",
    "quota_queries",
    "quota_state",
    "unknown_column",
    "type_mismatch",
    "invalid_query",
)


class AdmissionError(ReproError):
    """A query was rejected before planning, with a structured reason.

    ``code`` is one of :data:`REJECT_CODES`; ``tenant`` names who asked;
    ``detail`` is the human-readable diagnostic.  :meth:`as_dict` is the
    wire shape the service protocol returns.
    """

    def __init__(self, code: str, tenant: str, detail: str):
        if code not in REJECT_CODES:
            raise ValueError(f"unknown admission code {code!r}")
        super().__init__(f"[{code}] tenant {tenant!r}: {detail}")
        self.code = code
        self.tenant = tenant
        self.detail = detail

    def as_dict(self) -> dict:
        return {"code": self.code, "tenant": self.tenant, "detail": self.detail}


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant access control and resource quotas.

    * ``allowed_tables`` — relations the tenant may reference, checked
      against every base table and view (and the views' underlying
      tables) a query names.  ``None`` means unrestricted.
    * ``max_standing_queries`` — resident queries the tenant may hold.
    * ``max_state_rows`` — total operator-state rows across the
      tenant's resident queries; admission of new queries stops once
      the tenant's state footprint reaches the cap.
    * ``token`` — shared-secret the tenant must present to
      authenticate a connection.  The moment *any* provisioned policy
      carries a token the whole gateway runs in authenticated mode:
      unauthenticated submissions are ``auth_denied`` instead of
      silently falling back to the default policy, which closes the
      tenant-spoofing hole of trusting the request's ``tenant`` field.
    """

    name: str
    allowed_tables: Optional[frozenset[str]] = None
    max_standing_queries: int = 8
    max_state_rows: int = 100_000
    token: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_standing_queries < 0:
            raise ValueError("max_standing_queries must be >= 0")
        if self.max_state_rows < 0:
            raise ValueError("max_state_rows must be >= 0")
        if self.allowed_tables is not None:
            object.__setattr__(
                self,
                "allowed_tables",
                frozenset(name.lower() for name in self.allowed_tables),
            )

    def may_read(self, table: str) -> bool:
        return self.allowed_tables is None or table.lower() in self.allowed_tables

    @classmethod
    def from_dict(cls, payload: dict) -> "TenantPolicy":
        """Build a policy from the JSON shape ``--policy`` files use."""
        allowed = payload.get("allowed_tables")
        return cls(
            name=payload["name"],
            allowed_tables=None if allowed is None else frozenset(allowed),
            max_standing_queries=payload.get("max_standing_queries", 8),
            max_state_rows=payload.get("max_state_rows", 100_000),
            token=payload.get("token"),
        )


# ValidationError message prefixes → structured codes.  The validator
# owns the wording (tests pin these against it); everything else is the
# catch-all "invalid_query".
_COLUMN_MARKERS = ("unknown column", "ambiguous column", "unknown table alias")
_TYPE_MARKERS = (
    "cannot apply",
    "cannot compare",
    "cannot negate",
    "requires boolean",
    "requires string operands",
    "case condition must be",
    "in cast",
)


def _classify_validation(message: str) -> str:
    lowered = message.lower()
    if lowered.startswith("unknown table "):
        return "unknown_table"
    if any(marker in lowered for marker in _COLUMN_MARKERS):
        return "unknown_column"
    if any(marker in lowered for marker in _TYPE_MARKERS):
        return "type_mismatch"
    return "invalid_query"


@dataclass
class AdmissionGateway:
    """The four-gate front door over one catalog.

    ``policies`` maps tenant name → :class:`TenantPolicy`; unknown
    tenants fall back to ``default_policy`` (set it to ``None`` to make
    unknown tenants an ``acl_denied`` rejection outright).
    ``plans_built`` counts successful plan constructions — rejected
    queries never increment it, the invariant the admission tests pin.
    """

    catalog: Catalog
    registry: FunctionRegistry = field(default_factory=default_registry)
    policies: dict[str, TenantPolicy] = field(default_factory=dict)
    default_policy: Optional[TenantPolicy] = field(
        default_factory=lambda: TenantPolicy(name="*")
    )
    plans_built: int = 0

    def set_policy(self, policy: TenantPolicy) -> None:
        self.policies[policy.name] = policy

    @property
    def tokens_configured(self) -> bool:
        """Whether any provisioned policy carries a shared-secret token.

        One token flips the whole gateway into authenticated mode —
        mixed deployments where some tenants authenticate and others
        are trusted on their say-so would leave the spoofing hole open.
        """
        return any(p.token is not None for p in self.policies.values())

    def authenticate(self, tenant: str, token: Optional[str]) -> TenantPolicy:
        """Check a tenant's shared secret; raise ``auth_denied`` on mismatch.

        Comparison is constant-time (:func:`hmac.compare_digest`).  A
        tenant without a token in an authenticated deployment cannot
        log in at all — absence of a secret is not a blank password.
        """
        policy = self.policy_for(tenant)
        if policy.token is None:
            raise AdmissionError(
                "auth_denied",
                tenant,
                f"tenant {tenant!r} has no token configured",
            )
        if not hmac.compare_digest(policy.token, token or ""):
            raise AdmissionError("auth_denied", tenant, "invalid token")
        return policy

    def policy_for(self, tenant: str) -> TenantPolicy:
        policy = self.policies.get(tenant, self.default_policy)
        if policy is None:
            raise AdmissionError(
                "acl_denied", tenant, "tenant is not provisioned"
            )
        return policy

    def admit(
        self,
        tenant: str,
        sql: str,
        *,
        active_queries: int = 0,
        state_rows: int = 0,
    ) -> QueryPlan:
        """Run all gates; return the plan or raise :class:`AdmissionError`.

        ``active_queries`` and ``state_rows`` are the tenant's current
        resource usage, supplied by the session manager.
        """
        policy = self.policy_for(tenant)
        # gate 1: parse
        try:
            statement = parse(sql)
        except SqlError as exc:
            raise AdmissionError("parse_error", tenant, str(exc)) from exc
        # gate 2: structure — existence and ACL, straight off the AST
        for table in sorted(referenced_tables(statement, self.catalog)):
            if table.startswith("$values"):
                continue
            if (
                self.catalog.lookup(table) is None
                and self.catalog.lookup_view(table) is None
            ):
                raise AdmissionError(
                    "unknown_table",
                    tenant,
                    f"relation {table!r} is not registered",
                )
            if not policy.may_read(table):
                raise AdmissionError(
                    "acl_denied",
                    tenant,
                    f"policy for {tenant!r} does not allow reading {table!r}",
                )
        # gate 3: quotas
        if active_queries >= policy.max_standing_queries:
            raise AdmissionError(
                "quota_queries",
                tenant,
                f"tenant already holds {active_queries} standing queries "
                f"(max {policy.max_standing_queries})",
            )
        if state_rows >= policy.max_state_rows:
            raise AdmissionError(
                "quota_state",
                tenant,
                f"tenant state footprint {state_rows} rows is at the cap "
                f"({policy.max_state_rows})",
            )
        # gate 4: semantics — the engine's own validator, one type system
        try:
            plan = Planner(self.catalog, self.registry).plan(statement, sql=sql)
        except ValidationError as exc:
            raise AdmissionError(
                _classify_validation(exc.message), tenant, str(exc)
            ) from exc
        except ReproError as exc:
            raise AdmissionError("invalid_query", tenant, str(exc)) from exc
        self.plans_built += 1
        return plan
