"""Subscription fan-out: one resident query, many cheap consumers.

The "millions of users" story of the roadmap is not millions of plans —
it is few resident dataflows whose changelogs fan out to many
subscribers.  A :class:`SubscriptionRegistry` hangs off each standing
query and multicasts every published delta:

* each :class:`Subscriber` holds a bounded buffer and a **cursor** (the
  global sequence number of the next delta it will read), so consumers
  drain at their own pace and a reconnecting consumer can state where
  it left off;
* a subscriber whose buffer overflows is **evicted** — marked, counted,
  and detached — rather than allowed to hold the query's memory
  hostage (the slow-consumer policy every production pub/sub layer
  ends up with).

Deltas are :class:`~repro.core.changelog.Change` objects wrapped with
their per-query sequence number; the wire rendering lives in
:mod:`repro.service.server`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from ..core.changelog import Change

__all__ = ["Delta", "Subscriber", "SubscriptionRegistry"]


@dataclass(frozen=True)
class Delta:
    """One changelog change of a standing query, as delivered.

    ``seq`` is the query's global delta sequence number (0-based,
    gap-free); subscribers admitted mid-stream start at the current
    sequence, so ``seq`` doubles as the resumption cursor.
    """

    seq: int
    change: Change

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "ptime": self.change.ptime,
            "kind": "insert" if self.change.is_insert else "retract",
            "values": list(self.change.values),
        }


class Subscriber:
    """One consumer of a standing query's changelog.

    ``capacity`` bounds the undrained buffer; publishing past it evicts
    the subscriber (``evicted`` flips, the buffer is released).  The
    cursor advances on :meth:`take`, not on publish, so it always names
    the next sequence the consumer has *not* seen.
    """

    def __init__(self, subscriber_id: str, capacity: int, cursor: int = 0):
        if capacity < 1:
            raise ValueError("subscriber capacity must be >= 1")
        self.id = subscriber_id
        self.capacity = capacity
        self.cursor = cursor
        self.evicted = False
        self._buffer: deque[Delta] = deque()

    @property
    def depth(self) -> int:
        """Deltas buffered and not yet taken."""
        return len(self._buffer)

    def offer(self, delta: Delta) -> bool:
        """Buffer one delta; False (and eviction) when over capacity."""
        if self.evicted:
            return False
        if len(self._buffer) >= self.capacity:
            self.evicted = True
            self._buffer.clear()
            return False
        self._buffer.append(delta)
        return True

    def take(self, limit: Optional[int] = None) -> list[Delta]:
        """Drain up to ``limit`` buffered deltas, advancing the cursor."""
        count = len(self._buffer) if limit is None else min(limit, len(self._buffer))
        out = [self._buffer.popleft() for _ in range(count)]
        if out:
            self.cursor = out[-1].seq + 1
        return out


class SubscriptionRegistry:
    """The subscribers of one standing query, plus delivery accounting."""

    def __init__(self, default_capacity: int = 256):
        self.default_capacity = default_capacity
        self._subscribers: dict[str, Subscriber] = {}
        self._next_seq = 0
        #: deltas successfully buffered to subscribers, summed over all.
        self.delivered = 0
        #: subscribers evicted for falling behind.
        self.evictions = 0

    @property
    def next_seq(self) -> int:
        """The sequence number the next published delta will carry."""
        return self._next_seq

    def seek(self, seq: int) -> None:
        """Pin the next sequence number (catch-up and restore paths)."""
        self._next_seq = seq

    def subscribe(
        self, subscriber_id: str, capacity: Optional[int] = None
    ) -> Subscriber:
        """Attach (or re-attach) a subscriber starting at the live edge."""
        subscriber = Subscriber(
            subscriber_id,
            capacity if capacity is not None else self.default_capacity,
            cursor=self._next_seq,
        )
        self._subscribers[subscriber_id] = subscriber
        return subscriber

    def unsubscribe(self, subscriber_id: str) -> bool:
        return self._subscribers.pop(subscriber_id, None) is not None

    def get(self, subscriber_id: str) -> Optional[Subscriber]:
        return self._subscribers.get(subscriber_id)

    def subscribers(self) -> list[Subscriber]:
        return list(self._subscribers.values())

    @property
    def live_count(self) -> int:
        return sum(1 for s in self._subscribers.values() if not s.evicted)

    def queue_depth(self) -> int:
        """Deltas buffered across all live subscribers (backpressure gauge)."""
        return sum(s.depth for s in self._subscribers.values() if not s.evicted)

    def publish(self, changes: list[Change]) -> list[Delta]:
        """Sequence ``changes`` and multicast them to every live subscriber.

        Returns the sequenced deltas (for checkpointing / the caller's
        own bookkeeping).  Eviction happens here: a full subscriber is
        dropped and counted, and delivery to the others continues.
        """
        deltas = []
        for change in changes:
            deltas.append(Delta(self._next_seq, change))
            self._next_seq += 1
        if not deltas:
            return deltas
        for subscriber in self._subscribers.values():
            if subscriber.evicted:
                continue
            for delta in deltas:
                if subscriber.offer(delta):
                    self.delivered += 1
                else:
                    self.evictions += 1
                    break
        return deltas
