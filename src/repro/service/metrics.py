"""Service-level observability: the ``repro_service_*`` metric families.

The per-run metrics layer (:mod:`repro.obs`) describes *one execution*;
a long-lived service needs the complementary view — how many queries
are resident, how many consumers hang off them, how fast deltas flow,
and what admission is turning away.  :class:`ServiceMetrics` is that
ledger, and :func:`render_service_exposition` renders it (plus live
gauges read off the session manager) in Prometheus text format, ready
to be concatenated with the per-query expositions the existing
:class:`~repro.obs.export.PrometheusExporter` produces.

Families (stable names — renaming is a breaking change for scrapers):

* ``repro_service_active_queries`` (gauge) — resident standing queries.
* ``repro_service_subscribers`` (gauge) — live subscribers, per query.
* ``repro_service_delivered_deltas_total`` (counter) — deltas buffered
  to subscribers, per query.
* ``repro_service_admission_rejects_total`` (counter) — rejections,
  labelled by structured ``code``.
* ``repro_service_admitted_total`` (counter) — queries admitted.
* ``repro_service_events_ingested_total`` (counter) — source events
  pushed through the resident flows.
* ``repro_service_queue_depth`` (gauge) — undrained subscriber deltas
  (the fan-out backpressure signal).
* ``repro_service_source_queue_depth`` (gauge) — events waiting in the
  live sources' bounded queues, per source.
* ``repro_service_slow_evictions_total`` (counter) — subscribers
  evicted for falling behind.
* ``repro_service_checkpoints_total`` (counter) — session checkpoints
  taken.
* ``repro_service_shared_subplans`` (gauge) — resident operators
  multicast to two or more standing queries (multi-query optimization).
* ``repro_service_sharing_ratio`` (gauge) — logical operators attached
  ÷ physical operators resident; 1.0 means no sharing.
* ``repro_service_emit_latency_ms`` (histogram) — root emit latency vs
  event-time completion, per standing query (``tenant``/``query``
  labels).
* ``repro_service_ingest_to_push_us`` (histogram) — microseconds from
  an event entering :meth:`SessionManager.ingest` to the query's new
  deltas being buffered to subscribers, per standing query.
* ``repro_service_slow_queries_total`` (counter) — slow-query-log
  entries recorded (threshold-crossing episodes, not per-event spam).
* ``repro_service_lineage_sampled_total`` / ``_dropped_total``
  (counters) and ``repro_service_lineage_traces`` (gauge) — delta
  provenance tracing volume, when lineage is enabled.

The **slow-query log** (:class:`SlowQueryLog`) is the structured
companion to the histograms: whenever a standing query's p99 emit
latency or undrained subscriber depth crosses its configured threshold
(``slow_query_p99_ms`` / ``slow_query_depth``), one JSON-ready entry
``{"query", "tenant", "reason", "value", "threshold", "at_event"}`` is
recorded — once per *episode* (the crossing edge), so a persistently
slow query produces one entry, not one per ingested event.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from ..obs.export import format_labels
from ..obs.histogram import Histogram
from .admission import REJECT_CODES

if TYPE_CHECKING:
    from .session import SessionManager

__all__ = ["ServiceMetrics", "SlowQueryLog", "render_service_exposition"]


class SlowQueryLog:
    """A bounded, structured log of standing-query threshold crossings.

    Entries are recorded on the *rising edge*: a query enters an
    episode when ``value`` reaches ``threshold`` and leaves it when the
    value drops back below, so the log records incidents rather than
    repeating one slow query every event.  ``at_event`` is the
    session's ingested-event count — a logical clock, so tests and
    replays are deterministic.  At most ``max_entries`` entries are
    retained (oldest evicted); :attr:`total` counts all entries ever
    recorded.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self._ring: deque[dict] = deque(maxlen=max_entries)
        self.total = 0
        self._active: set[tuple[str, str]] = set()

    def update(
        self,
        query_id: str,
        tenant: str,
        reason: str,
        value: int,
        threshold: int,
        at_event: int,
    ) -> Optional[dict]:
        """Fold one observation in; returns the new entry on a rising edge."""
        key = (query_id, reason)
        if value < threshold:
            self._active.discard(key)
            return None
        if key in self._active:
            return None
        self._active.add(key)
        entry = {
            "query": query_id,
            "tenant": tenant,
            "reason": reason,
            "value": value,
            "threshold": threshold,
            "at_event": at_event,
        }
        self._ring.append(entry)
        self.total += 1
        return entry

    def forget(self, query_id: str) -> None:
        """Close any open episodes of a withdrawn query."""
        self._active = {k for k in self._active if k[0] != query_id}

    def entries(self) -> list[dict]:
        """The retained entries, oldest first (JSON-ready dicts)."""
        return [dict(entry) for entry in self._ring]


class ServiceMetrics:
    """Monotonic counters of one service's lifetime."""

    def __init__(self) -> None:
        self.admitted = 0
        self.rejects: dict[str, int] = {code: 0 for code in REJECT_CODES}
        self.subscribes = 0

    def record_admitted(self) -> None:
        self.admitted += 1

    def record_reject(self, code: str) -> None:
        self.rejects[code] = self.rejects.get(code, 0) + 1

    def record_subscribe(self) -> None:
        self.subscribes += 1

    @property
    def rejected_total(self) -> int:
        return sum(self.rejects.values())


def render_service_exposition(
    metrics: ServiceMetrics,
    session: "SessionManager",
    source_depths: Optional[dict[str, int]] = None,
) -> str:
    """The service's Prometheus exposition (format 0.0.4).

    Validates with :func:`repro.obs.export.parse_exposition`; the CI
    smoke job uploads exactly this text as its scrape artifact.
    """
    lines: list[str] = []

    def family(name: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    queries = session.queries()
    family("repro_service_active_queries", "gauge",
           "Standing queries currently resident")
    lines.append(f"repro_service_active_queries {len(queries)}")

    family("repro_service_subscribers", "gauge",
           "Live subscribers attached to each standing query")
    for query in queries:
        labels = format_labels(
            {"query": query.query_id, "tenant": query.tenant}
        )
        lines.append(
            f"repro_service_subscribers{labels} "
            f"{query.subscriptions.live_count}"
        )

    family("repro_service_delivered_deltas_total", "counter",
           "Changelog deltas buffered to subscribers, per standing query")
    for query in queries:
        labels = format_labels(
            {"query": query.query_id, "tenant": query.tenant}
        )
        lines.append(
            f"repro_service_delivered_deltas_total{labels} "
            f"{query.subscriptions.delivered}"
        )

    family("repro_service_admitted_total", "counter",
           "Queries admitted through the gateway")
    lines.append(f"repro_service_admitted_total {metrics.admitted}")

    family("repro_service_admission_rejects_total", "counter",
           "Queries rejected by the admission gateway, by structured code")
    for code in sorted(metrics.rejects):
        labels = format_labels({"code": code})
        lines.append(
            f"repro_service_admission_rejects_total{labels} "
            f"{metrics.rejects[code]}"
        )

    family("repro_service_events_ingested_total", "counter",
           "Source events pushed through the resident dataflows")
    lines.append(
        f"repro_service_events_ingested_total {session.events_ingested}"
    )

    family("repro_service_queue_depth", "gauge",
           "Undrained subscriber deltas across all standing queries")
    lines.append(f"repro_service_queue_depth {session.queue_depth()}")

    family("repro_service_source_queue_depth", "gauge",
           "Events waiting in each live source's bounded queue")
    for name, depth in sorted((source_depths or {}).items()):
        labels = format_labels({"source": name})
        lines.append(f"repro_service_source_queue_depth{labels} {depth}")

    family("repro_service_slow_evictions_total", "counter",
           "Subscribers evicted for falling behind their buffer capacity")
    evictions = sum(q.subscriptions.evictions for q in queries)
    lines.append(f"repro_service_slow_evictions_total {evictions}")

    family("repro_service_state_rows", "gauge",
           "Operator-state rows resident per standing query")
    for query in queries:
        labels = format_labels(
            {"query": query.query_id, "tenant": query.tenant}
        )
        lines.append(f"repro_service_state_rows{labels} {query.state_rows()}")

    family("repro_service_checkpoints_total", "counter",
           "Session checkpoints written to the checkpoint directory")
    lines.append(
        f"repro_service_checkpoints_total {session.checkpoints_taken}"
    )

    family("repro_service_shared_subplans", "gauge",
           "Resident operators multicast to two or more standing queries")
    lines.append(
        f"repro_service_shared_subplans {session.shared_subplans()}"
    )

    family("repro_service_sharing_ratio", "gauge",
           "Logical operators attached over physical operators resident")
    lines.append(
        f"repro_service_sharing_ratio {session.sharing_ratio():.6f}"
    )

    def histogram_series(name: str, base: dict, histogram: Histogram) -> None:
        for le, cumulative in histogram.cumulative_buckets():
            lines.append(
                f"{name}_bucket"
                + format_labels({**base, "le": le})
                + f" {cumulative}"
            )
        lines.append(f"{name}_sum{format_labels(base)} {histogram.sum}")
        lines.append(f"{name}_count{format_labels(base)} {histogram.count}")

    # Histogram families are only declared when a series exists: the
    # exposition validator (rightly) rejects a histogram TYPE comment
    # with no bucket/sum/count samples.
    if queries:
        family("repro_service_emit_latency_ms", "histogram",
               "Root emit latency vs event-time completion, per standing query")
        for query in queries:
            histogram_series(
                "repro_service_emit_latency_ms",
                {"query": query.query_id, "tenant": query.tenant},
                query.flow.telemetry_of(query.output_id).emit_latency,
            )
        family("repro_service_ingest_to_push_us", "histogram",
               "Microseconds from event ingest to subscriber delta push")
        for query in queries:
            histogram_series(
                "repro_service_ingest_to_push_us",
                {"query": query.query_id, "tenant": query.tenant},
                query.ingest_push,
            )

    family("repro_service_slow_queries_total", "counter",
           "Slow-query log entries recorded (threshold-crossing episodes)")
    lines.append(f"repro_service_slow_queries_total {session.slow_log.total}")

    lineage = session.lineage_summary()
    if lineage is not None:
        family("repro_service_lineage_sampled_total", "counter",
               "Source events opened as lineage traces")
        lines.append(
            f"repro_service_lineage_sampled_total {lineage['sampled']}"
        )
        family("repro_service_lineage_dropped_total", "counter",
               "Lineage traces evicted past the retention bound")
        lines.append(
            f"repro_service_lineage_dropped_total {lineage['dropped']}"
        )
        family("repro_service_lineage_traces", "gauge",
               "Lineage traces currently retained")
        lines.append(f"repro_service_lineage_traces {lineage['retained']}")
    return "\n".join(lines) + "\n"
