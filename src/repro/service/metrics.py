"""Service-level observability: the ``repro_service_*`` metric families.

The per-run metrics layer (:mod:`repro.obs`) describes *one execution*;
a long-lived service needs the complementary view — how many queries
are resident, how many consumers hang off them, how fast deltas flow,
and what admission is turning away.  :class:`ServiceMetrics` is that
ledger, and :func:`render_service_exposition` renders it (plus live
gauges read off the session manager) in Prometheus text format, ready
to be concatenated with the per-query expositions the existing
:class:`~repro.obs.export.PrometheusExporter` produces.

Families (stable names — renaming is a breaking change for scrapers):

* ``repro_service_active_queries`` (gauge) — resident standing queries.
* ``repro_service_subscribers`` (gauge) — live subscribers, per query.
* ``repro_service_delivered_deltas_total`` (counter) — deltas buffered
  to subscribers, per query.
* ``repro_service_admission_rejects_total`` (counter) — rejections,
  labelled by structured ``code``.
* ``repro_service_admitted_total`` (counter) — queries admitted.
* ``repro_service_events_ingested_total`` (counter) — source events
  pushed through the resident flows.
* ``repro_service_queue_depth`` (gauge) — undrained subscriber deltas
  (the fan-out backpressure signal).
* ``repro_service_source_queue_depth`` (gauge) — events waiting in the
  live sources' bounded queues, per source.
* ``repro_service_slow_evictions_total`` (counter) — subscribers
  evicted for falling behind.
* ``repro_service_checkpoints_total`` (counter) — session checkpoints
  taken.
* ``repro_service_shared_subplans`` (gauge) — resident operators
  multicast to two or more standing queries (multi-query optimization).
* ``repro_service_sharing_ratio`` (gauge) — logical operators attached
  ÷ physical operators resident; 1.0 means no sharing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..obs.export import format_labels
from .admission import REJECT_CODES

if TYPE_CHECKING:
    from .session import SessionManager

__all__ = ["ServiceMetrics", "render_service_exposition"]


class ServiceMetrics:
    """Monotonic counters of one service's lifetime."""

    def __init__(self) -> None:
        self.admitted = 0
        self.rejects: dict[str, int] = {code: 0 for code in REJECT_CODES}
        self.subscribes = 0

    def record_admitted(self) -> None:
        self.admitted += 1

    def record_reject(self, code: str) -> None:
        self.rejects[code] = self.rejects.get(code, 0) + 1

    def record_subscribe(self) -> None:
        self.subscribes += 1

    @property
    def rejected_total(self) -> int:
        return sum(self.rejects.values())


def render_service_exposition(
    metrics: ServiceMetrics,
    session: "SessionManager",
    source_depths: Optional[dict[str, int]] = None,
) -> str:
    """The service's Prometheus exposition (format 0.0.4).

    Validates with :func:`repro.obs.export.parse_exposition`; the CI
    smoke job uploads exactly this text as its scrape artifact.
    """
    lines: list[str] = []

    def family(name: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    queries = session.queries()
    family("repro_service_active_queries", "gauge",
           "Standing queries currently resident")
    lines.append(f"repro_service_active_queries {len(queries)}")

    family("repro_service_subscribers", "gauge",
           "Live subscribers attached to each standing query")
    for query in queries:
        labels = format_labels(
            {"query": query.query_id, "tenant": query.tenant}
        )
        lines.append(
            f"repro_service_subscribers{labels} "
            f"{query.subscriptions.live_count}"
        )

    family("repro_service_delivered_deltas_total", "counter",
           "Changelog deltas buffered to subscribers, per standing query")
    for query in queries:
        labels = format_labels(
            {"query": query.query_id, "tenant": query.tenant}
        )
        lines.append(
            f"repro_service_delivered_deltas_total{labels} "
            f"{query.subscriptions.delivered}"
        )

    family("repro_service_admitted_total", "counter",
           "Queries admitted through the gateway")
    lines.append(f"repro_service_admitted_total {metrics.admitted}")

    family("repro_service_admission_rejects_total", "counter",
           "Queries rejected by the admission gateway, by structured code")
    for code in sorted(metrics.rejects):
        labels = format_labels({"code": code})
        lines.append(
            f"repro_service_admission_rejects_total{labels} "
            f"{metrics.rejects[code]}"
        )

    family("repro_service_events_ingested_total", "counter",
           "Source events pushed through the resident dataflows")
    lines.append(
        f"repro_service_events_ingested_total {session.events_ingested}"
    )

    family("repro_service_queue_depth", "gauge",
           "Undrained subscriber deltas across all standing queries")
    lines.append(f"repro_service_queue_depth {session.queue_depth()}")

    family("repro_service_source_queue_depth", "gauge",
           "Events waiting in each live source's bounded queue")
    for name, depth in sorted((source_depths or {}).items()):
        labels = format_labels({"source": name})
        lines.append(f"repro_service_source_queue_depth{labels} {depth}")

    family("repro_service_slow_evictions_total", "counter",
           "Subscribers evicted for falling behind their buffer capacity")
    evictions = sum(q.subscriptions.evictions for q in queries)
    lines.append(f"repro_service_slow_evictions_total {evictions}")

    family("repro_service_state_rows", "gauge",
           "Operator-state rows resident per standing query")
    for query in queries:
        labels = format_labels(
            {"query": query.query_id, "tenant": query.tenant}
        )
        lines.append(f"repro_service_state_rows{labels} {query.state_rows()}")

    family("repro_service_checkpoints_total", "counter",
           "Session checkpoints written to the checkpoint directory")
    lines.append(
        f"repro_service_checkpoints_total {session.checkpoints_taken}"
    )

    family("repro_service_shared_subplans", "gauge",
           "Resident operators multicast to two or more standing queries")
    lines.append(
        f"repro_service_shared_subplans {session.shared_subplans()}"
    )

    family("repro_service_sharing_ratio", "gauge",
           "Logical operators attached over physical operators resident")
    lines.append(
        f"repro_service_sharing_ratio {session.sharing_ratio():.6f}"
    )
    return "\n".join(lines) + "\n"
