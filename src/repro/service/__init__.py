"""``repro.service`` — continuous standing queries over live sources.

Batch mode (:meth:`repro.engine.PreparedQuery.run`) replays a recorded
time-varying relation and exits; service mode keeps admitted queries
*resident* and pushes changelog deltas to subscribers as sources
advance, with the changelog guaranteed byte-identical to a one-shot
replay of the same events.  The pieces:

* :mod:`~repro.service.admission` — the four-gate front door
  (parse / structure+ACL / quota / semantics) with structured
  rejection codes.
* :mod:`~repro.service.session` — resident dataflows, catch-up,
  checkpoint/restore.
* :mod:`~repro.service.subscriptions` — per-query fan-out with
  bounded buffers and slow-consumer eviction.
* :mod:`~repro.service.sources` — file tailing and socket feeds with
  bounded-queue backpressure.
* :mod:`~repro.service.server` — the composed service core and the
  line-JSON TCP server behind ``python -m repro serve``.
* :mod:`~repro.service.metrics` — the ``repro_service_*`` Prometheus
  families.

See ``docs/SERVICE.md`` for the architecture tour.
"""

from .admission import AdmissionError, AdmissionGateway, TenantPolicy
from .metrics import ServiceMetrics, render_service_exposition
from .server import ServiceServer, StandingQueryService, run_service
from .session import SessionManager, StandingQuery
from .sources import LiveSource, TailReader, pump, serve_socket_lines, tail_file
from .subscriptions import Delta, Subscriber, SubscriptionRegistry

__all__ = [
    "AdmissionError",
    "AdmissionGateway",
    "TenantPolicy",
    "ServiceMetrics",
    "render_service_exposition",
    "ServiceServer",
    "StandingQueryService",
    "run_service",
    "SessionManager",
    "StandingQuery",
    "LiveSource",
    "TailReader",
    "pump",
    "serve_socket_lines",
    "tail_file",
    "Delta",
    "Subscriber",
    "SubscriptionRegistry",
]
