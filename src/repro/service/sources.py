"""Live sources: tail files and sockets into resident dataflows.

Replay mode reads a complete recorded TVR; service mode reads a feed
that is still being written.  Two layers:

* :class:`TailReader` — synchronous, incremental file tailing built on
  :class:`repro.io.TailParser`: every :meth:`poll` picks up bytes
  appended since the last one and returns the newly completed events.
  A record caught mid-write stays buffered (the parser never sees an
  unterminated line), so tailing a file as a producer appends to it is
  safe by construction.  ``skip`` replays past the events a restored
  session already consumed (its ``source_offsets``).
* :class:`LiveSource` — the asyncio binding: a reader task feeds a
  **bounded** ``asyncio.Queue`` (``ExecutionConfig.queue_capacity``),
  so a slow consumer blocks the tailer instead of buffering without
  limit — backpressure, not OOM.  :func:`tail_file` and
  :func:`serve_socket_lines` are the two reader tasks that ship in the
  box (JSONL or script notation, decided per line by the parser).

:func:`pump` is the consumer side: it drains a set of live sources into
a :class:`~repro.service.session.SessionManager`, merging available
events in processing-time order.  Feeds must respect each source's own
processing-time order (the recorded-TVR contract); an event that would
regress the *merged* clock is dropped and counted rather than allowed
to poison every resident flow.
"""

from __future__ import annotations

import asyncio
import os
from typing import Awaitable, Callable, Optional

from ..core.schema import Schema
from ..core.tvr import StreamEvent
from ..io import TailParser

__all__ = ["TailReader", "LiveSource", "tail_file", "serve_socket_lines", "pump"]


class TailReader:
    """Incrementally read a growing feed file into stream events."""

    def __init__(
        self,
        path: str,
        schema: Optional[Schema] = None,
        skip: int = 0,
    ):
        self.path = path
        self._parser = TailParser(schema)
        self._position = 0
        self._skip = skip
        #: events returned so far (offset for session bookkeeping).
        self.events_read = 0

    @property
    def schema(self) -> Optional[Schema]:
        return self._parser.schema

    def poll(self) -> list[StreamEvent]:
        """Events completed by bytes appended since the last poll."""
        if not os.path.exists(self.path):
            return []
        with open(self.path, "r") as handle:
            handle.seek(self._position)
            chunk = handle.read()
            self._position = handle.tell()
        if not chunk:
            return []
        events = self._parser.feed(chunk)
        if self._skip:
            taken = min(self._skip, len(events))
            events = events[taken:]
            self._skip -= taken
        self.events_read += len(events)
        return events

    def close(self) -> list[StreamEvent]:
        """Flush a final unterminated line (end of feed, no newline coming)."""
        events = self._parser.close()
        if self._skip:
            taken = min(self._skip, len(events))
            events = events[taken:]
            self._skip -= taken
        self.events_read += len(events)
        return events


class LiveSource:
    """One named live feed behind a bounded event queue.

    The queue holds ``(source_name, event)`` pairs; ``None`` is the
    reader's end-of-feed sentinel.  ``depth`` is the backpressure gauge
    exported as ``repro_service_source_queue_depth``.
    """

    def __init__(self, name: str, queue_capacity: int = 1024):
        self.name = name
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_capacity)
        self.finished = False
        #: feeds writing into this queue; the end sentinel posts only
        #: when the last one ends (a tail and a socket listener may
        #: legitimately share one source).
        self._producers = 1

    @property
    def depth(self) -> int:
        return self.queue.qsize()

    def add_producer(self) -> None:
        self._producers += 1

    async def put(self, event: StreamEvent) -> None:
        await self.queue.put(event)

    async def end(self) -> None:
        self._producers -= 1
        if self._producers > 0:
            return
        self.finished = True
        await self.queue.put(None)


async def tail_file(
    source: LiveSource,
    path: str,
    *,
    schema: Optional[Schema] = None,
    skip: int = 0,
    poll_interval: float = 0.05,
    follow: Callable[[], bool] = lambda: True,
) -> None:
    """Reader task: tail ``path`` into ``source``'s queue.

    Polls for appended bytes every ``poll_interval`` seconds while
    ``follow()`` is true; when following stops, flushes any final
    unterminated line and posts the end sentinel.  Puts block when the
    queue is full — that is the backpressure.
    """
    reader = TailReader(path, schema=schema, skip=skip)
    while True:
        keep_going = follow()
        for event in reader.poll():
            await source.put(event)
        if not keep_going:
            break
        await asyncio.sleep(poll_interval)
    for event in reader.close():
        await source.put(event)
    await source.end()


async def serve_socket_lines(
    source: LiveSource,
    host: str,
    port: int,
    *,
    schema: Optional[Schema] = None,
) -> asyncio.AbstractServer:
    """Reader task: accept line-oriented feed connections into a queue.

    Each connection gets its own :class:`~repro.io.TailParser` (so a
    producer can open with its own ``schema:`` line); all connections
    funnel into the one bounded queue.  Returns the listening server;
    close it to stop accepting.
    """

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        parser = TailParser(schema if schema is not None else source_schema())
        try:
            while True:
                data = await reader.readline()
                if not data:
                    break
                for event in parser.feed(data.decode("utf-8")):
                    await source.put(event)
            for event in parser.close():
                await source.put(event)
        finally:
            writer.close()

    def source_schema() -> Optional[Schema]:
        return schema

    return await asyncio.start_server(handle, host, port)


async def pump(
    sources: list[LiveSource],
    ingest: Callable[[StreamEvent, str], object],
    *,
    on_ingest: Optional[Callable[[str, StreamEvent, object], Awaitable[None]]] = None,
) -> int:
    """Drain live sources into ``ingest`` in merged processing-time order.

    Waits on every source's queue concurrently, holds at most one
    pending event per source, and always ingests the earliest-ptime
    head available — the live analogue of the executor's deterministic
    k-way replay merge.  Events that would regress the merged clock are
    dropped and counted in the returned total (the feed broke the
    recorded-TVR ordering contract; resident flows must not see it).
    Returns the number of dropped events once every source has ended.
    """
    heads: dict[str, StreamEvent] = {}
    pending: dict[str, asyncio.Task] = {}
    live = {source.name: source for source in sources}
    last_ptime: Optional[int] = None
    dropped = 0

    def ensure_tasks() -> None:
        for name, source in list(live.items()):
            if name not in heads and name not in pending:
                pending[name] = asyncio.ensure_future(source.queue.get())

    while live or heads:
        ensure_tasks()
        if pending:
            done, _ = await asyncio.wait(
                pending.values(), return_when=asyncio.FIRST_COMPLETED
            )
            for name in [n for n, task in pending.items() if task in done]:
                event = pending.pop(name).result()
                if event is None:
                    live.pop(name, None)
                else:
                    heads[name] = event
        if not heads:
            continue
        # Ingest the earliest available head; ties break by source name
        # so the merge is deterministic.
        name = min(heads, key=lambda n: (heads[n].ptime, n))
        event = heads.pop(name)
        if last_ptime is not None and event.ptime < last_ptime:
            dropped += 1
            continue
        last_ptime = event.ptime
        result = ingest(event, name)
        if on_ingest is not None:
            await on_ingest(name, event, result)
    return dropped
