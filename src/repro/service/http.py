"""A dependency-free HTTP scrape plane: ``GET /metrics`` + ``GET /healthz``.

The line-JSON protocol in :mod:`repro.service.server` already exposes a
``metrics`` op, but ops require speaking the protocol; fleet tooling
(Prometheus, load balancers, ``curl`` in CI) wants plain HTTP.  This
module is that adapter: a minimal HTTP/1.1 listener over asyncio —
no frameworks, no dependencies — serving exactly two read-only routes
next to the service port:

* ``GET /metrics`` — the ``repro_service_*`` Prometheus exposition
  (text format 0.0.4), byte-identical to the ``metrics`` op's
  ``exposition`` field and validated by
  :func:`repro.obs.export.parse_exposition` in CI.
* ``GET /healthz`` — a JSON liveness document: resident query count,
  events ingested, live subscribers, undrained queue depth, slow-query
  log size, and checkpoints taken.

Anything else is a 404; non-GET methods are a 405.  Requests are
handled one per connection (``Connection: close``) — scrapes are
infrequent and the simplicity is worth more than keep-alive.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from .server import StandingQueryService

__all__ = ["MetricsHttpServer", "health_document"]


def health_document(service: "StandingQueryService") -> dict:
    """The ``/healthz`` body: one JSON-ready liveness snapshot."""
    session = service.session
    queries = session.queries()
    return {
        "status": "ok",
        "queries": len(queries),
        "events_ingested": session.events_ingested,
        "subscribers": sum(q.subscriptions.live_count for q in queries),
        "queue_depth": session.queue_depth(),
        "slow_queries": session.slow_log.total,
        "checkpoints": session.checkpoints_taken,
    }


class MetricsHttpServer:
    """Serve ``/metrics`` and ``/healthz`` for one standing-query service."""

    def __init__(
        self,
        service: "StandingQueryService",
        host: str = "127.0.0.1",
        port: int = 0,
        scrape=None,
    ):
        self.service = service
        self.host = host
        self.port = port
        #: exposition producer; override to refresh gauges per scrape.
        self.scrape = scrape if scrape is not None else service.scrape
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )

    @property
    def address(self) -> tuple[str, int]:
        assert self._server is not None
        return self._server.sockets[0].getsockname()[:2]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- one request per connection ------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, path = parts[0], parts[1].split("?", 1)[0]
            # Drain headers; none of them change the response.
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            status, content_type, body = self._route(method, path)
            payload = body.encode("utf-8")
            head = (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    def _route(self, method: str, path: str) -> tuple[str, str, str]:
        if method != "GET":
            return (
                "405 Method Not Allowed",
                "text/plain; charset=utf-8",
                "only GET is supported\n",
            )
        if path == "/metrics":
            return (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                self.scrape(),
            )
        if path == "/healthz":
            return (
                "200 OK",
                "application/json; charset=utf-8",
                json.dumps(health_document(self.service)) + "\n",
            )
        return (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "routes: /metrics /healthz\n",
        )
